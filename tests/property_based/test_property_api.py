"""Property tests: the api schema round-trips losslessly through JSON."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.requests import (
    AssessmentRequest,
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
    request_from_dict,
)
from repro.api.results import (
    AlgorithmRun,
    RecoveryResult,
    jsonify_plan,
    plan_from_payload,
    plan_payload,
)
from repro.heuristics.registry import available_algorithms
from repro.network.plan import RecoveryPlan

# ---------------------------------------------------------------------- #
# Request strategies
# ---------------------------------------------------------------------- #

scalars = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(min_size=0, max_size=12),
    st.booleans(),
    st.none(),
)

kwarg_keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10
)

kwargs_dicts = st.dictionaries(kwarg_keys, scalars, max_size=4)

topology_specs = st.builds(
    TopologySpec,
    name=st.sampled_from(["bell-canada", "grid", "ring", "star", "erdos-renyi", "caida-like"]),
    kwargs=kwargs_dicts,
)

# Disruption kwargs are validated eagerly against the model's signature,
# so each kind draws from its own (possibly empty) parameter-name pool;
# values stay arbitrary scalars — only names are validated.
_DISRUPTION_KWARG_NAMES = {
    "complete": (),
    "none": (),
    "gaussian": ("variance", "intensity"),
    "random": ("node_probability", "edge_probability"),
    "cascading": ("num_triggers", "propagation_factor", "tolerance", "max_rounds"),
    "multi-gaussian": ("variance", "num_epicenters", "intensity"),
    "targeted": ("node_budget", "edge_budget", "metric", "adaptive"),
}


def _disruption_spec_strategy(kind):
    names = _DISRUPTION_KWARG_NAMES[kind]
    kwargs = (
        st.dictionaries(st.sampled_from(names), scalars, max_size=len(names))
        if names
        else st.just({})
    )
    return st.builds(DisruptionSpec, kind=st.just(kind), kwargs=kwargs)


disruption_specs = st.sampled_from(sorted(_DISRUPTION_KWARG_NAMES)).flatmap(
    _disruption_spec_strategy
)

demand_specs = st.builds(
    DemandSpec,
    builder=st.sampled_from(["routable-far-apart", "far-apart", "random", "explicit"]),
    num_pairs=st.integers(min_value=1, max_value=16),
    flow_per_pair=st.floats(min_value=0.25, max_value=100.0, allow_nan=False, width=32),
    kwargs=kwargs_dicts,
)

algorithm_lists = st.lists(
    st.sampled_from(available_algorithms()), min_size=1, max_size=4, unique=True
).map(tuple)

algorithm_kwargs_maps = st.dictionaries(
    st.sampled_from(available_algorithms()), kwargs_dicts, max_size=2
)

recovery_requests = st.builds(
    RecoveryRequest,
    topology=topology_specs,
    disruption=disruption_specs,
    demand=demand_specs,
    algorithms=algorithm_lists,
    algorithm_kwargs=algorithm_kwargs_maps,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    opt_time_limit=st.one_of(
        st.none(), st.floats(min_value=0.1, max_value=3600.0, allow_nan=False)
    ),
)

assessment_requests = st.builds(
    AssessmentRequest,
    topology=topology_specs,
    disruption=disruption_specs,
    demand=demand_specs,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


@settings(max_examples=60, deadline=None)
@given(request=recovery_requests)
def test_recovery_request_round_trips_losslessly(request):
    payload = json.loads(json.dumps(request.to_dict()))
    assert RecoveryRequest.from_dict(payload) == request
    assert request_from_dict(payload) == request


@settings(max_examples=60, deadline=None)
@given(request=recovery_requests)
def test_recovery_request_digest_is_stable(request):
    clone = RecoveryRequest.from_dict(json.loads(json.dumps(request.to_dict())))
    assert clone.digest() == request.digest()


@settings(max_examples=40, deadline=None)
@given(request=assessment_requests)
def test_assessment_request_round_trips_losslessly(request):
    payload = json.loads(json.dumps(request.to_dict()))
    assert AssessmentRequest.from_dict(payload) == request
    assert request_from_dict(payload) == request


# ---------------------------------------------------------------------- #
# Result strategies
# ---------------------------------------------------------------------- #

node_ids = st.one_of(
    st.integers(min_value=0, max_value=50),
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    st.tuples(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)),
)


@st.composite
def recovery_plans(draw):
    plan = RecoveryPlan(algorithm=draw(st.sampled_from(available_algorithms())))
    for node in draw(st.lists(node_ids, max_size=6, unique=True)):
        plan.add_node_repair(node)
    for u, v in draw(
        st.lists(st.tuples(node_ids, node_ids), max_size=6, unique=True)
    ):
        if u != v:
            plan.add_edge_repair(u, v)
    plan.iterations = draw(st.integers(min_value=0, max_value=100))
    return plan


metric_dicts = st.fixed_dictionaries(
    {
        "node_repairs": st.integers(min_value=0, max_value=50).map(float),
        "edge_repairs": st.integers(min_value=0, max_value=50).map(float),
        "total_repairs": st.integers(min_value=0, max_value=100).map(float),
        "repair_cost": st.floats(min_value=0, max_value=1000, allow_nan=False, width=32),
        "satisfied_pct": st.floats(min_value=0, max_value=100, allow_nan=False, width=32),
        "elapsed_seconds": st.floats(min_value=0, max_value=60, allow_nan=False, width=32),
    }
)

solver_dicts = st.dictionaries(
    st.sampled_from(
        ["lp_solves", "milp_solves", "solve_seconds", "structure_hits", "warm_start_hits"]
    ),
    st.floats(min_value=0, max_value=1e6, allow_nan=False, width=32),
    max_size=5,
)


@st.composite
def algorithm_runs(draw):
    plan = draw(recovery_plans())
    return AlgorithmRun(
        algorithm=plan.algorithm,
        metrics=draw(metric_dicts),
        plan=plan_payload(plan),
        solver=draw(solver_dicts),
        cached=draw(st.booleans()),
    )


recovery_results = st.builds(
    RecoveryResult,
    request=st.builds(lambda r: r.to_dict(), recovery_requests),
    results=st.lists(algorithm_runs(), max_size=3),
    broken_elements=st.integers(min_value=0, max_value=500),
    wall_seconds=st.floats(min_value=0, max_value=600, allow_nan=False, width=32),
)


@settings(max_examples=60, deadline=None)
@given(result=recovery_results)
def test_recovery_result_round_trips_losslessly(result):
    payload = json.loads(json.dumps(result.to_dict()))
    assert RecoveryResult.from_dict(payload) == result


@settings(max_examples=30, deadline=None)
@given(plan=recovery_plans())
def test_plan_payload_reconstruction_preserves_repairs(plan):
    payload = json.loads(json.dumps(jsonify_plan(plan_payload(plan))))
    rebuilt = plan_from_payload(payload, algorithm=plan.algorithm)
    assert set(rebuilt.repaired_nodes) == set(plan.repaired_nodes)
    assert set(rebuilt.repaired_edges) == set(plan.repaired_edges)
    assert rebuilt.iterations == plan.iterations
