"""Property-based tests for the network substrate (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.network.demand import DemandGraph
from repro.network.supply import SupplyGraph, canonical_edge

NODE_NAMES = ["n0", "n1", "n2", "n3", "n4", "n5"]


@st.composite
def demand_operations(draw):
    """A random sequence of (add / reduce / split) operations on a DemandGraph."""
    operations = []
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.sampled_from(["add", "reduce", "split"]))
        u, v = draw(
            st.tuples(st.sampled_from(NODE_NAMES), st.sampled_from(NODE_NAMES)).filter(
                lambda pair: pair[0] != pair[1]
            )
        )
        amount = draw(st.floats(min_value=0.1, max_value=20.0, allow_nan=False))
        via = draw(st.sampled_from(NODE_NAMES))
        operations.append((kind, u, v, amount, via))
    return operations


class TestDemandGraphProperties:
    @given(demand_operations())
    @settings(max_examples=60, deadline=None)
    def test_demands_stay_positive_and_consistent(self, operations):
        demand = DemandGraph()
        for kind, u, v, amount, via in operations:
            if kind == "add":
                demand.add(u, v, amount)
            elif kind == "reduce":
                current = demand.demand(u, v)
                if current > 0:
                    demand.reduce(u, v, min(amount, current))
            elif kind == "split":
                current = demand.demand(u, v)
                if current > 0 and via not in (u, v):
                    demand.split(u, v, via, min(amount, current))
        # Invariants: every stored pair has positive demand, endpoints are
        # exactly the nodes of stored pairs, total equals the sum of pairs.
        pairs = demand.pairs()
        assert all(pair.demand > 0 for pair in pairs)
        assert demand.total_demand == pytest.approx(sum(p.demand for p in pairs))
        endpoint_union = set()
        for pair in pairs:
            endpoint_union.update((pair.source, pair.target))
        assert demand.endpoints == endpoint_union

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_split_conserves_leg_symmetry(self, total, fraction):
        demand = DemandGraph()
        demand.add("s", "t", total)
        amount = total * fraction
        demand.split("s", "t", "v", amount)
        assert demand.demand("s", "v") == pytest.approx(amount)
        assert demand.demand("v", "t") == pytest.approx(amount)
        assert demand.demand("s", "t") == pytest.approx(total - amount, abs=1e-7)

    @given(st.floats(min_value=0.1, max_value=50.0), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_repeated_reduce_terminates_at_zero(self, total, chunks):
        demand = DemandGraph()
        demand.add("a", "b", total)
        step = total / chunks
        for _ in range(chunks):
            if demand.has_pair("a", "b"):
                demand.reduce("a", "b", min(step, demand.demand("a", "b")))
        assert demand.demand("a", "b") == pytest.approx(0.0, abs=1e-6)


@st.composite
def capacity_operations(draw):
    operations = []
    for _ in range(draw(st.integers(min_value=1, max_value=15))):
        kind = draw(st.sampled_from(["consume", "release"]))
        amount = draw(st.floats(min_value=0.0, max_value=8.0, allow_nan=False))
        operations.append((kind, amount))
    return operations


class TestSupplyGraphProperties:
    @given(capacity_operations())
    @settings(max_examples=60, deadline=None)
    def test_residual_stays_within_bounds(self, operations):
        supply = SupplyGraph()
        supply.add_edge("a", "b", capacity=10.0)
        for kind, amount in operations:
            if kind == "consume":
                available = supply.residual("a", "b")
                supply.consume_capacity("a", "b", min(amount, available))
            else:
                supply.release_capacity("a", "b", amount)
            residual = supply.residual("a", "b")
            assert -1e-9 <= residual <= 10.0 + 1e-9

    @given(st.lists(st.sampled_from(NODE_NAMES), min_size=2, max_size=6, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_break_all_then_repair_all_restores(self, nodes):
        supply = SupplyGraph()
        for node in nodes:
            supply.add_node(node)
        for u, v in zip(nodes, nodes[1:]):
            supply.add_edge(u, v, capacity=5.0)
        supply.break_all()
        assert len(supply.broken_nodes) == len(nodes)
        for node in list(supply.broken_nodes):
            supply.repair_node(node)
        for u, v in list(supply.broken_edges):
            supply.repair_edge(u, v)
        assert not supply.broken_nodes and not supply.broken_edges
        working = supply.working_graph()
        assert working.number_of_nodes() == len(nodes)
        assert working.number_of_edges() == len(nodes) - 1

    @given(
        st.sampled_from(NODE_NAMES),
        st.sampled_from(NODE_NAMES),
    )
    @settings(max_examples=30, deadline=None)
    def test_canonical_edge_symmetry(self, u, v):
        if u == v:
            return
        assert canonical_edge(u, v) == canonical_edge(v, u)
