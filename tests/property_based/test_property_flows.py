"""Property-based tests for the flow substrate."""

import hypothesis.strategies as st
import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings

from repro.flows.decomposition import decompose_flows, total_decomposed_flow
from repro.flows.demand_satisfaction import max_satisfiable_flow
from repro.flows.maxflow import max_flow_value
from repro.flows.routability import is_routable
from repro.network.demand import DemandGraph
from repro.network.paths import path_edges, shortest_path_cover
from repro.network.supply import SupplyGraph


def build_ladder(capacities):
    """A 2xN ladder graph whose rung/rail capacities come from the strategy."""
    supply = SupplyGraph()
    n = len(capacities)
    for i in range(n):
        supply.add_node(("top", i), pos=(float(i), 1.0))
        supply.add_node(("bot", i), pos=(float(i), 0.0))
    index = 0
    for i in range(n - 1):
        supply.add_edge(("top", i), ("top", i + 1), capacity=capacities[i])
        supply.add_edge(("bot", i), ("bot", i + 1), capacity=capacities[(i + 1) % n])
    for i in range(n):
        supply.add_edge(("top", i), ("bot", i), capacity=capacities[i])
    return supply


capacity_lists = st.lists(
    st.floats(min_value=1.0, max_value=20.0, allow_nan=False), min_size=3, max_size=5
)


class TestRoutabilityProperties:
    @given(capacity_lists, st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_routable_demand_scales_down(self, capacities, shrink):
        """If a demand is routable, any smaller demand is routable too."""
        supply = build_ladder(capacities)
        graph = supply.working_graph()
        source, target = ("top", 0), ("bot", len(capacities) - 1)
        limit = max_flow_value(graph, source, target)
        demand = DemandGraph()
        demand.add(source, target, max(limit, 1e-3))
        assert is_routable(graph, demand)
        smaller = DemandGraph()
        smaller.add(source, target, max(limit * shrink, 1e-4))
        assert is_routable(graph, smaller)

    @given(capacity_lists)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_demand_above_max_flow_is_unroutable(self, capacities):
        supply = build_ladder(capacities)
        graph = supply.working_graph()
        source, target = ("top", 0), ("bot", len(capacities) - 1)
        limit = max_flow_value(graph, source, target)
        demand = DemandGraph()
        demand.add(source, target, limit * 1.2 + 1.0)
        assert not is_routable(graph, demand)

    @given(capacity_lists)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_max_satisfiable_single_pair_equals_max_flow(self, capacities):
        supply = build_ladder(capacities)
        graph = supply.working_graph()
        source, target = ("top", 0), ("bot", len(capacities) - 1)
        limit = max_flow_value(graph, source, target)
        demand = DemandGraph()
        demand.add(source, target, limit * 3.0)
        result = max_satisfiable_flow(graph, demand)
        assert result.total_satisfied == pytest.approx(limit, rel=1e-4)


class TestDecompositionProperties:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=5.0, allow_nan=False), min_size=1, max_size=4)
    )
    @settings(max_examples=40, deadline=None)
    def test_decomposition_recovers_injected_path_flows(self, flows):
        """Injecting flow along known paths and decomposing gives the same total."""
        graph = nx.Graph()
        nodes = ["s", "x", "y", "z", "t"]
        for u, v in zip(nodes, nodes[1:]):
            graph.add_edge(u, v)
        graph.add_edge("s", "t")
        paths = [("s", "x", "y", "z", "t"), ("s", "t")]
        arc_flows = {}
        total = 0.0
        for index, amount in enumerate(flows):
            path = paths[index % len(paths)]
            total += amount
            for u, v in path_edges(list(path)):
                arc_flows[(u, v)] = arc_flows.get((u, v), 0.0) + amount
        decomposition = decompose_flows(arc_flows, "s", "t")
        assert total_decomposed_flow(decomposition) == pytest.approx(total, rel=1e-6)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=5.0, allow_nan=False), min_size=1, max_size=4)
    )
    @settings(max_examples=40, deadline=None)
    def test_decomposed_paths_are_simple_source_target_paths(self, flows):
        arc_flows = {}
        for index, amount in enumerate(flows):
            arc_flows[("s", f"m{index}")] = amount
            arc_flows[(f"m{index}", "t")] = amount
        decomposition = decompose_flows(arc_flows, "s", "t")
        for path, flow in decomposition:
            assert path[0] == "s" and path[-1] == "t"
            assert len(set(path)) == len(path)
            assert flow > 0


class TestShortestPathCoverProperties:
    @given(capacity_lists, st.floats(min_value=0.5, max_value=40.0))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_cover_paths_connect_endpoints_with_positive_capacity(self, capacities, demand):
        supply = build_ladder(capacities)
        graph = supply.working_graph()
        source, target = ("top", 0), ("bot", len(capacities) - 1)
        cover = shortest_path_cover(graph, source, target, demand, weight="missing")
        for path, capacity in cover:
            assert path[0] == source and path[-1] == target
            assert capacity > 0
            for u, v in path_edges(list(path)):
                assert graph.has_edge(u, v)

    @given(capacity_lists)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_cover_capacity_never_exceeds_max_flow(self, capacities):
        supply = build_ladder(capacities)
        graph = supply.working_graph()
        source, target = ("top", 0), ("bot", len(capacities) - 1)
        cover = shortest_path_cover(graph, source, target, float("inf"), weight="missing")
        covered = sum(capacity for _, capacity in cover)
        limit = max_flow_value(graph, source, target)
        assert covered <= limit + 1e-6
