"""Property-based tests for the recovery algorithms themselves."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.centrality import demand_based_centrality
from repro.core.isp import iterative_split_prune
from repro.evaluation.metrics import evaluate_plan
from repro.failures.geographic import GaussianDisruption
from repro.flows.maxflow import max_flow_value
from repro.heuristics.srt import shortest_path_repair
from repro.network.demand import DemandGraph
from repro.topologies.grids import grid_topology

CORNERS = [(0, 0), (0, 2), (2, 0), (2, 2)]


@st.composite
def grid_instances(draw):
    """A 3x3 grid with a random subset of broken elements and 1-2 corner demands."""
    supply = grid_topology(3, 3, capacity=10.0)
    node_mask = draw(st.lists(st.booleans(), min_size=9, max_size=9))
    edge_mask = draw(st.lists(st.booleans(), min_size=12, max_size=12))
    for broken, node in zip(node_mask, sorted(supply.nodes)):
        if broken:
            supply.break_node(node)
    for broken, edge in zip(edge_mask, sorted(supply.edges)):
        if broken:
            supply.break_edge(*edge)
    num_demands = draw(st.integers(min_value=1, max_value=2))
    demand = DemandGraph()
    pairs = [((0, 0), (2, 2)), ((0, 2), (2, 0))]
    for i in range(num_demands):
        amount = draw(st.floats(min_value=1.0, max_value=8.0, allow_nan=False))
        demand.add(pairs[i][0], pairs[i][1], amount)
    return supply, demand


class TestISPProperties:
    @given(grid_instances())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_isp_plan_is_sound(self, instance):
        supply, demand = instance
        plan = iterative_split_prune(supply, demand)
        # 1. Only broken elements are repaired.
        for node in plan.repaired_nodes:
            assert supply.is_broken_node(node)
        for edge in plan.repaired_edges:
            assert supply.is_broken_edge(*edge)
        # 2. The explicit routing never violates failures or capacities.
        assert plan.validate_routing(supply, demand) == []
        # 3. If the undamaged network could carry the demand, the recovered
        #    network can carry it too (ISP loses no demand).
        full = supply.full_graph(use_residual=False)
        from repro.flows.routability import is_routable

        if is_routable(full, demand):
            evaluation = evaluate_plan(supply, demand, plan)
            assert evaluation.satisfied_percentage == pytest.approx(100.0, abs=1e-3)

    @given(grid_instances())
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_isp_repairs_at_most_all(self, instance):
        supply, demand = instance
        plan = iterative_split_prune(supply, demand)
        assert plan.num_node_repairs <= len(supply.broken_nodes)
        assert plan.num_edge_repairs <= len(supply.broken_edges)


class TestSRTProperties:
    @given(grid_instances())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_srt_repairs_only_broken_elements(self, instance):
        supply, demand = instance
        plan = shortest_path_repair(supply, demand)
        for node in plan.repaired_nodes:
            assert supply.is_broken_node(node)
        for edge in plan.repaired_edges:
            assert supply.is_broken_edge(*edge)


class TestCentralityProperties:
    @given(grid_instances())
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_scores_are_bounded_by_total_demand(self, instance):
        supply, demand = instance
        result = demand_based_centrality(supply, demand)
        total = demand.total_demand
        for node, score in result.scores.items():
            assert -1e-9 <= score <= total + 1e-6

    @given(
        st.floats(min_value=0.5, max_value=400.0),
        st.floats(min_value=0.0, max_value=30.0),
        st.floats(min_value=0.0, max_value=30.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_gaussian_failure_probability_in_unit_interval(self, variance, dx, dy):
        model = GaussianDisruption(variance=variance)
        probability = model.failure_probability((dx, dy), (0.0, 0.0))
        assert 0.0 <= probability <= 1.0
        closer = model.failure_probability((dx / 2.0, dy / 2.0), (0.0, 0.0))
        assert closer >= probability - 1e-12
