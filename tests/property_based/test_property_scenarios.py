"""Property tests for the scenario zoo: generators, failures, sampling.

Three families of properties keep the zoo honest:

* **seed determinism** — every stochastic generator (topologies, failure
  models, the scenario generator itself) reproduces its output exactly for
  the same seed;
* **non-mutation** — ``FailureModel.applied`` never touches the pristine
  graph it is given;
* **damage monotonicity** — turning a severity knob up (cascade
  propagation factor, number of epicentres, attack budget) never shrinks
  the failure set.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.requests import DisruptionSpec
from repro.failures.cascading import CascadingFailure
from repro.failures.geographic import MultiEpicenterDisruption
from repro.failures.targeted import TargetedAttack
from repro.scenarios import ScenarioGenerator, ScenarioSpace
from repro.topologies.zoo import barabasi_albert, fat_tree, watts_strogatz

seeds = st.integers(min_value=0, max_value=2**20)


# --------------------------------------------------------------------- #
# Seed determinism of the zoo generators
# --------------------------------------------------------------------- #
class TestGeneratorDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, num_nodes=st.integers(min_value=5, max_value=40))
    def test_barabasi_albert(self, seed, num_nodes):
        a = barabasi_albert(num_nodes=num_nodes, seed=seed)
        b = barabasi_albert(num_nodes=num_nodes, seed=seed)
        assert set(a.edges) == set(b.edges)
        assert all(a.position(n) == b.position(n) for n in a.nodes)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=seeds,
        num_nodes=st.integers(min_value=8, max_value=30),
        probability=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_watts_strogatz(self, seed, num_nodes, probability):
        a = watts_strogatz(num_nodes=num_nodes, rewire_probability=probability, seed=seed)
        b = watts_strogatz(num_nodes=num_nodes, rewire_probability=probability, seed=seed)
        assert set(a.edges) == set(b.edges)

    @settings(max_examples=5, deadline=None)
    @given(pods=st.sampled_from([2, 4, 6]))
    def test_fat_tree_needs_no_seed(self, pods):
        a, b = fat_tree(pods=pods), fat_tree(pods=pods)
        assert set(a.edges) == set(b.edges)
        assert a.stats()["connected"]


# --------------------------------------------------------------------- #
# `applied` never mutates the pristine graph
# --------------------------------------------------------------------- #
def _models(seed):
    return [
        CascadingFailure(num_triggers=2, propagation_factor=1.5),
        MultiEpicenterDisruption(variance=200.0, num_epicenters=2),
        TargetedAttack(node_budget=2, edge_budget=2),
        TargetedAttack(node_budget=1, metric="betweenness", adaptive=True),
    ]


class TestAppliedNonMutation:
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_applied_leaves_pristine_graph_untouched(self, seed):
        pristine = barabasi_albert(num_nodes=20, seed=3)
        edges_before = set(pristine.edges)
        for model in _models(seed):
            disrupted, report = model.applied(pristine, seed=seed)
            assert not pristine.broken_nodes
            assert not pristine.broken_edges
            assert set(pristine.edges) == edges_before
            assert disrupted.broken_nodes == set(report.broken_nodes)
            assert disrupted.broken_edges == set(report.broken_edges)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_applied_matches_apply_for_same_seed(self, seed):
        pristine = watts_strogatz(num_nodes=16, seed=5)
        for model in _models(seed):
            disrupted, applied_report = model.applied(pristine, seed=seed)
            mutable = pristine.copy()
            apply_report = model.apply(mutable, seed=seed)
            assert applied_report == apply_report
            assert disrupted.broken_nodes == mutable.broken_nodes
            assert disrupted.broken_edges == mutable.broken_edges


# --------------------------------------------------------------------- #
# Damage monotonicity in the severity knobs
# --------------------------------------------------------------------- #
class TestDamageMonotonicity:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.sampled_from(range(20)))
    def test_cascade_damage_grows_with_propagation_factor(self, seed):
        # Multi-round cascade dynamics are NOT provably monotone in the
        # propagation factor (a bigger first wave can shelter an element in
        # a later round — e.g. trigger seed 41 on this fixture dips by one
        # element), so this is a regression property over pinned trigger
        # seeds verified to be monotone, plus the two provable endpoint
        # facts: factor 0 is exactly the trigger set, and every cascade
        # contains it.
        supply = barabasi_albert(num_nodes=25, seed=7)
        totals = []
        trigger_only = CascadingFailure(
            num_triggers=2, propagation_factor=0.0, tolerance=0.2
        ).sample(supply, seed=seed)
        assert len(trigger_only.broken_nodes) == 2 and not trigger_only.broken_edges
        for factor in (0.0, 0.75, 1.5, 2.25, 3.0):
            model = CascadingFailure(
                num_triggers=2, propagation_factor=factor, tolerance=0.2
            )
            report = model.sample(supply, seed=seed)
            assert trigger_only.broken_nodes <= report.broken_nodes
            totals.append(report.total_broken)
        assert totals == sorted(totals)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_damage_grows_with_epicenter_count(self, seed):
        supply = watts_strogatz(num_nodes=20, seed=9)
        epicenters = ((10.0, 50.0), (90.0, 50.0), (50.0, 95.0), (50.0, 5.0))
        previous = frozenset()
        for count in range(1, len(epicenters) + 1):
            model = MultiEpicenterDisruption(
                variance=300.0, epicenters=epicenters[:count], intensity=0.9
            )
            report = model.sample(supply, seed=seed)
            broken = report.broken_nodes | report.broken_edges
            assert previous <= broken
            previous = broken

    @settings(max_examples=10, deadline=None)
    @given(
        metric=st.sampled_from(["degree", "betweenness"]),
        budgets=st.lists(
            st.integers(min_value=1, max_value=8), min_size=2, max_size=4
        ),
    )
    def test_static_attack_damage_grows_with_budget(self, metric, budgets):
        supply = barabasi_albert(num_nodes=18, seed=13)
        previous_nodes = frozenset()
        previous_edges = frozenset()
        for budget in sorted(budgets):
            report = TargetedAttack(
                node_budget=budget, edge_budget=budget, metric=metric
            ).sample(supply)
            assert previous_nodes <= report.broken_nodes
            assert previous_edges <= report.broken_edges
            previous_nodes = report.broken_nodes
            previous_edges = report.broken_edges

    @settings(max_examples=10, deadline=None)
    @given(
        metric=st.sampled_from(["degree", "betweenness"]),
        budgets=st.lists(
            st.integers(min_value=1, max_value=8), min_size=2, max_size=4
        ),
    )
    def test_adaptive_attack_is_prefix_monotone_per_knob(self, metric, budgets):
        # The adaptive removal *sequence* is budget-independent per element
        # type, so monotonicity holds when one budget varies and the other
        # is pinned (the edge phase starts from the post-node-attack graph).
        supply = barabasi_albert(num_nodes=18, seed=13)
        previous_nodes = frozenset()
        previous_edges = frozenset()
        for budget in sorted(budgets):
            nodes = TargetedAttack(
                node_budget=budget, metric=metric, adaptive=True
            ).sample(supply).broken_nodes
            edges = TargetedAttack(
                node_budget=1, edge_budget=budget, metric=metric, adaptive=True
            ).sample(supply).broken_edges
            assert previous_nodes <= nodes
            assert previous_edges <= edges
            previous_nodes, previous_edges = nodes, edges


# --------------------------------------------------------------------- #
# The scenario generator itself
# --------------------------------------------------------------------- #
class TestScenarioGenerator:
    @settings(max_examples=5, deadline=None)
    @given(seed=seeds)
    def test_request_stream_is_seed_deterministic(self, seed):
        space = ScenarioSpace(algorithms=("SRT",))
        a = ScenarioGenerator(space=space, seed=seed).requests(4)
        b = ScenarioGenerator(space=space, seed=seed).requests(4)
        assert a == b
        assert [r.digest() for r in a] == [r.digest() for r in b]

    @settings(max_examples=5, deadline=None)
    @given(seed=seeds)
    def test_sampled_requests_round_trip_and_materialise(self, seed):
        import json

        from repro.api.requests import RecoveryRequest

        generator = ScenarioGenerator(space=ScenarioSpace(algorithms=("SRT",)), seed=seed)
        for request in generator.requests(3):
            payload = json.loads(json.dumps(request.to_dict()))
            assert RecoveryRequest.from_dict(payload) == request
            assert generator._materialises(request)

    def test_sampled_disruptions_are_valid_specs(self):
        generator = ScenarioGenerator(seed=123)
        kinds = {request.disruption.kind for request in generator.requests(12)}
        # The default space mixes paper-era and zoo disruptions.
        assert kinds <= set(
            ("complete", "gaussian", "random", "cascading", "multi-gaussian", "targeted")
        )
        assert all(isinstance(DisruptionSpec(kind), DisruptionSpec) for kind in kinds)
