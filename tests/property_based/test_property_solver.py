"""Property-based tests for the incremental solver substrate.

The central invariant: after an arbitrary sequence of deltas — capacity
updates, demand-amount changes, commodity additions/removals, edge
deactivation — an :class:`IncrementalFlowProblem` assembled from cached
structure is indistinguishable from a from-scratch
:class:`~repro.flows.lp_backend.FlowProblem`: identical constraint
matrices, identical RHS vectors, and identical routability verdicts.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.flows.lp_backend import Commodity, FlowProblem
from repro.flows.routability import routability_test
from repro.flows.solver.incremental import IncrementalFlowProblem, StructureCache
from repro.network.demand import DemandGraph
from repro.topologies.grids import grid_topology

#: The node grid the deltas operate on (3x3 keeps every LP tiny).
ROWS, COLS = 3, 3
NODES = [(r, c) for r in range(ROWS) for c in range(COLS)]


def fresh_graph():
    return grid_topology(ROWS, COLS, capacity=10.0).full_graph(use_residual=False)


# One delta = (kind, payload); interpreted against the current state.
deltas = st.lists(
    st.one_of(
        st.tuples(
            st.just("capacity"),
            st.integers(min_value=0, max_value=10_000),
            st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
        ),
        st.tuples(
            st.just("demand"),
            st.integers(min_value=0, max_value=10_000),
            st.floats(min_value=0.5, max_value=12.0, allow_nan=False),
        ),
        st.tuples(st.just("add-commodity"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("drop-commodity"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("remove-edge"), st.integers(min_value=0, max_value=10_000)),
    ),
    min_size=1,
    max_size=8,
)

#: Candidate commodities (distinct endpoint pairs on the grid).
CANDIDATE_PAIRS = [
    ((0, 0), (2, 2)),
    ((0, 2), (2, 0)),
    ((1, 0), (1, 2)),
    ((0, 1), (2, 1)),
    ((0, 0), (0, 2)),
]


def apply_delta(graph, commodities, delta):
    kind = delta[0]
    if kind == "capacity":
        _, index, value = delta
        edges = sorted(graph.edges, key=repr)
        if edges:
            u, v = edges[index % len(edges)]
            graph.edges[u, v]["capacity"] = value
    elif kind == "demand":
        _, index, value = delta
        if commodities:
            slot = index % len(commodities)
            old = commodities[slot]
            commodities[slot] = Commodity(old.source, old.target, value)
    elif kind == "add-commodity":
        _, index = delta
        source, target = CANDIDATE_PAIRS[index % len(CANDIDATE_PAIRS)]
        commodities.append(Commodity(source, target, 1.0 + index % 5))
    elif kind == "drop-commodity":
        _, index = delta
        if len(commodities) > 1:
            commodities.pop(index % len(commodities))
    elif kind == "remove-edge":
        _, index = delta
        edges = sorted(graph.edges, key=repr)
        if len(edges) > 1:
            graph.remove_edge(*edges[index % len(edges)])


class TestIncrementalMatchesFromScratch:
    @given(deltas)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_matrices_survive_random_delta_sequences(self, delta_sequence):
        graph = fresh_graph()
        commodities = [Commodity((0, 0), (2, 2), 5.0)]
        cache = StructureCache()  # shared across the whole sequence
        for delta in delta_sequence:
            apply_delta(graph, commodities, delta)
            reference = FlowProblem(graph, commodities)
            incremental = IncrementalFlowProblem(
                graph, commodities, cache.structure_for(graph)
            )
            a_ub_ref, b_ub_ref = reference.capacity_matrix()
            a_ub_inc, b_ub_inc = incremental.capacity_matrix()
            assert (a_ub_ref != a_ub_inc).nnz == 0
            assert np.allclose(b_ub_ref, b_ub_inc)
            a_eq_ref, b_eq_ref = reference.conservation_matrix()
            a_eq_inc, b_eq_inc = incremental.conservation_matrix()
            assert (a_eq_ref != a_eq_inc).nnz == 0
            assert np.allclose(b_eq_ref, b_eq_inc)

    @given(deltas)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_routability_verdict_matches_after_deltas(self, delta_sequence):
        """The substrate's verdict equals a from-scratch LP feasibility check."""
        from scipy.optimize import linprog

        graph = fresh_graph()
        commodities = [Commodity((0, 0), (2, 2), 5.0)]
        for delta in delta_sequence:
            apply_delta(graph, commodities, delta)
        demand = DemandGraph()
        for commodity in commodities:
            existing = demand.demand(commodity.source, commodity.target)
            if existing:
                continue  # duplicate pair: DemandGraph merges, skip re-adds
            demand.add(commodity.source, commodity.target, commodity.demand)

        verdict = routability_test(graph, demand)

        merged = [
            Commodity(p.source, p.target, p.demand) for p in demand.pairs()
        ]
        reference = FlowProblem(graph, merged)
        import networkx as nx

        connected = all(
            c.source in graph and c.target in graph and nx.has_path(graph, c.source, c.target)
            for c in merged
        )
        if not connected or reference.infeasible_commodities:
            assert not verdict.routable
            return
        a_ub, b_ub = reference.capacity_matrix()
        a_eq, b_eq = reference.conservation_matrix()
        result = linprog(
            c=np.ones(reference.num_flow_variables),
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=(0, None),
            method="highs",
        )
        assert verdict.routable == bool(result.success)
