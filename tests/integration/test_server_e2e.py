"""End-to-end tests of the recovery daemon.

These boot the real thing — ``repro.cli serve`` as a subprocess with worker
processes attached — and drive it through the public HTTP protocol, so
they cover exactly the deployment shape of the CI smoke job:

* a served solve returns the same envelope the in-process service returns;
* restarting the daemon mid-queue loses no accepted job (durability);
* ``kill -9`` on a worker mid-job leaves a requeueable ``running`` row
  which the next startup returns to the queue (crash recovery);
* the load harness completes against a live daemon with zero failures and
  writes a well-formed ``BENCH_server.json``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api.requests import (
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
)
from repro.api.service import RecoveryService
from repro.server.client import ServiceClient
from repro.server.loadtest import run_loadtest
from repro.server.store import JobStore
from repro.server.workers import HOLD_ENV_VAR, worker_loop

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def grid_request(seed: int = 1) -> RecoveryRequest:
    return RecoveryRequest(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(num_pairs=1, flow_per_pair=5.0),
        algorithms=("ISP",),
        seed=seed,
    )


def subprocess_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(extra)
    return env


class Daemon:
    """A ``repro.cli serve`` subprocess bound to a temp store."""

    def __init__(self, db: Path, workers: int = 1, port: int = 0) -> None:
        self.db = db
        self.port = port or free_port()
        self.workers = workers
        self.process: subprocess.Popen = None
        self.client = ServiceClient(f"http://127.0.0.1:{self.port}", timeout=10.0)

    def __enter__(self) -> "Daemon":
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--db",
                str(self.db),
                "--port",
                str(self.port),
                "--workers",
                str(self.workers),
                "--poll-interval",
                "0.05",
            ],
            env=subprocess_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"daemon exited early: {self.process.stderr.read().decode()}"
                )
            try:
                self.client.healthz()
                return self
            except OSError:
                time.sleep(0.2)
        raise RuntimeError("daemon did not become healthy in 60s")

    def __exit__(self, *_: object) -> None:
        self.stop()

    def stop(self, timeout: float = 30.0) -> None:
        if self.process is None or self.process.poll() is not None:
            return
        self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=5)


class TestServedSolve:
    def test_served_envelope_matches_in_process_service(self, tmp_path):
        request = grid_request(seed=11)
        with Daemon(tmp_path / "jobs.db") as daemon:
            submitted = daemon.client.solve(request)
            assert submitted["deduplicated"] is False
            view = daemon.client.wait(submitted["job"]["digest"], timeout=60)
        assert view["state"] == "done"
        served = view["result"]

        direct = RecoveryService().solve(request).to_dict()
        assert served["kind"] == "recovery-result"
        assert served["request"] == direct["request"]
        assert served["broken_elements"] == direct["broken_elements"]
        served_runs = {run["algorithm"]: run for run in served["results"]}
        direct_runs = {run["algorithm"]: run for run in direct["results"]}
        assert served_runs.keys() == direct_runs.keys()
        for name, run in direct_runs.items():
            assert served_runs[name]["plan"] == run["plan"]
            for key, value in run["metrics"].items():
                if key == "elapsed_seconds":
                    continue  # wall clock differs between processes
                assert served_runs[name]["metrics"][key] == pytest.approx(value)

    def test_healthz_and_metrics_reflect_the_served_job(self, tmp_path):
        with Daemon(tmp_path / "jobs.db") as daemon:
            submitted = daemon.client.solve(grid_request(seed=3))
            daemon.client.wait(submitted["job"]["digest"], timeout=60)
            health = daemon.client.healthz()
            assert health["jobs"]["done"] == 1
            assert health["workers_alive"] == 1
            metrics = daemon.client.metrics()
        assert 'repro_jobs_total{state="done"} 1' in metrics
        assert "repro_fleet_jobs_done_total 1" in metrics
        assert "repro_topology_cache_misses_total 1" in metrics


class TestDurability:
    def test_restart_mid_queue_loses_no_accepted_job(self, tmp_path):
        """Accepted jobs survive a daemon stop/start cycle and all finish."""
        db = tmp_path / "jobs.db"
        requests = [grid_request(seed=seed) for seed in range(1, 6)]
        with Daemon(db, workers=1) as daemon:
            for request in requests:
                daemon.client.solve(request)
            # stop immediately: most of the queue is still pending
        with JobStore(db) as store:
            assert sum(store.counts().values()) == len(requests)
            assert store.counts()["done"] < len(requests)
        with Daemon(db, workers=2) as daemon:
            for request in requests:
                view = daemon.client.wait(request.digest(), timeout=90)
                assert view["state"] == "done"
        with JobStore(db) as store:
            assert store.counts()["done"] == len(requests)
            assert store.counts()["failed"] == 0


class TestWorkerCrashRecovery:
    def test_kill9_mid_job_leaves_a_requeueable_running_row(self, tmp_path):
        """SIGKILL a worker holding a job; the row must requeue and finish."""
        db = tmp_path / "jobs.db"
        request = grid_request(seed=21)
        with JobStore(db) as store:
            store.submit(request)

        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server.workers",
                "--db",
                str(db),
                "--worker-id",
                "doomed",
                "--poll-interval",
                "0.05",
            ],
            env=subprocess_env(**{HOLD_ENV_VAR: "60"}),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            with JobStore(db) as store:
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    record = store.get(request.digest())
                    if record.state == "running":
                        break
                    time.sleep(0.05)
                assert record.state == "running", "worker never claimed the job"

                os.kill(worker.pid, signal.SIGKILL)
                worker.wait(timeout=10)

                # the kill-9'd worker left a requeueable running row
                orphan = store.get(request.digest())
                assert orphan.state == "running"
                assert orphan.worker == "doomed"
                assert store.requeue_orphans() == 1
                requeued = store.get(request.digest())
                assert requeued.state == "queued"
                assert requeued.attempts == 1
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait(timeout=10)

        # a fresh worker executes the requeued job to completion
        handled = worker_loop(str(db), "rescuer", max_jobs=2)
        assert handled == 1
        with JobStore(db) as store:
            final = store.get(request.digest())
            assert final.state == "done"
            assert final.worker == "rescuer"
            assert final.attempts == 2


class TestLoadtest:
    def test_loadtest_round_trip_produces_a_wellformed_bench(self, tmp_path):
        out = tmp_path / "BENCH_server.json"
        with Daemon(tmp_path / "jobs.db", workers=2) as daemon:
            report = run_loadtest(
                daemon.client.base_url,
                rps=8.0,
                duration=2.0,
                distinct=4,
                seed=7,
                out=str(out),
                wait_timeout=90.0,
            )
        assert report.ok, report.failures
        assert report.failed_jobs == 0
        assert report.errors == 0
        assert report.completed_jobs == report.unique_jobs > 0
        assert report.dedup_hits > 0  # 16 submissions cycled over 4 requests
        assert report.dedup_hit_rate > 0.5

        payload = json.loads(out.read_text())
        assert payload["kind"] == "server-bench"
        assert payload["ok"] is True
        assert payload["achieved_rps"] > 0
        for population in ("submit_latency", "job_latency"):
            assert set(payload[population]) == {"p50", "p95", "p99"}
            assert payload[population]["p50"] <= payload[population]["p99"]

    def test_loadtest_rejects_a_bad_space_and_rates(self, tmp_path):
        with pytest.raises(KeyError, match="unknown scenario space"):
            run_loadtest("http://127.0.0.1:1", rps=1, duration=1, space="galaxy")
        with pytest.raises(ValueError, match="--rps"):
            run_loadtest("http://127.0.0.1:1", rps=0, duration=1)
        with pytest.raises(ValueError, match="--duration"):
            run_loadtest("http://127.0.0.1:1", rps=1, duration=0)
