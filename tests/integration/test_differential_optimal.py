"""Differential tests: every heuristic against the exact MILP optimum.

The scenario zoo multiplies the instances recovery algorithms see; this
suite keeps the heuristics honest on a grid of *small* instances — old
(grid, ring) and new (scale-free, small-world, fat-tree) topologies crossed
with old (complete, gaussian) and new (cascading, multi-epicentre,
targeted) failures — where the MILP solves to proven optimality in well
under a second.  For every instance and every registered algorithm:

* the full invariant battery of :mod:`repro.verification` passes (plan
  feasibility, repairs within damage, flow conservation, satisfaction
  monotonicity);
* a fully-satisfying heuristic never beats the proven optimum on repair
  cost (ratio >= 1).
"""

import numpy as np
import pytest

from repro.api.requests import DemandSpec, DisruptionSpec, TopologySpec, materialise_instance
from repro.evaluation.metrics import evaluate_plan
from repro.heuristics.registry import available_algorithms, get_algorithm
from repro.verification import FULL_SATISFACTION, check_plan_invariants

HEURISTICS = [name for name in available_algorithms() if name != "OPT"]

#: (topology spec, disruption spec) grid mixing paper-era and zoo scenarios.
INSTANCES = [
    pytest.param(
        TopologySpec("grid", kwargs={"rows": 3, "cols": 3, "capacity": 20.0}),
        DisruptionSpec("complete"),
        id="grid-complete",
    ),
    pytest.param(
        TopologySpec("ring", kwargs={"num_nodes": 8}),
        DisruptionSpec("gaussian", kwargs={"variance": 1.5, "intensity": 0.9}),
        id="ring-gaussian",
    ),
    pytest.param(
        TopologySpec("barabasi-albert", kwargs={"num_nodes": 14, "attachment": 2, "capacity": 30.0}),
        DisruptionSpec("targeted", kwargs={"node_budget": 3, "edge_budget": 2}),
        id="scalefree-targeted",
    ),
    pytest.param(
        TopologySpec("watts-strogatz", kwargs={"num_nodes": 12, "nearest_neighbors": 4, "rewire_probability": 0.2}),
        DisruptionSpec("cascading", kwargs={"num_triggers": 2, "propagation_factor": 1.5, "tolerance": 0.1}),
        id="smallworld-cascade",
    ),
    pytest.param(
        TopologySpec("fat-tree", kwargs={"pods": 4}),
        DisruptionSpec("multi-gaussian", kwargs={"variance": 400.0, "num_epicenters": 2, "intensity": 0.9}),
        id="fattree-multigaussian",
    ),
    pytest.param(
        TopologySpec("fat-tree", kwargs={"pods": 4}),
        DisruptionSpec("complete"),
        id="fattree-complete",
    ),
]

SEEDS = (3, 11)


def _instance(topology, disruption, seed):
    supply, demand, _ = materialise_instance(
        topology,
        disruption,
        DemandSpec("routable-far-apart", num_pairs=2, flow_per_pair=4.0),
        np.random.default_rng(seed),
    )
    return supply, demand


def _optimal(supply, demand):
    plan = get_algorithm("OPT", time_limit=60.0).solve(supply, demand)
    assert plan.metadata.get("status") == "optimal", (
        "the differential baseline requires a proven optimum"
    )
    return plan


@pytest.mark.parametrize("topology,disruption", INSTANCES)
@pytest.mark.parametrize("seed", SEEDS)
class TestDifferentialOptimal:
    def test_every_heuristic_respects_invariants_and_opt_cost(
        self, topology, disruption, seed
    ):
        supply, demand = _instance(topology, disruption, seed)
        optimal = _optimal(supply, demand)
        optimal_cost = optimal.repair_cost(supply)

        for name in HEURISTICS:
            plan = get_algorithm(name).solve(supply.copy(), demand)
            violations = check_plan_invariants(supply, demand, plan, optimal=optimal)
            assert not violations, (
                f"{name} violated invariants: " + "; ".join(map(str, violations))
            )
            evaluation = evaluate_plan(supply, demand, plan)
            assert evaluation.routing_violations == 0
            if evaluation.satisfied_fraction >= FULL_SATISFACTION and optimal_cost > 0:
                ratio = evaluation.repair_cost / optimal_cost
                assert ratio >= 1.0 - 1e-9, (
                    f"{name} beat the optimum: cost ratio {ratio:.6f} < 1"
                )

    def test_optimal_fully_satisfies_the_demand(self, topology, disruption, seed):
        supply, demand = _instance(topology, disruption, seed)
        optimal = _optimal(supply, demand)
        evaluation = evaluate_plan(supply, demand, optimal)
        assert evaluation.satisfied_fraction == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("topology,disruption", INSTANCES)
@pytest.mark.parametrize("seed", SEEDS)
class TestStrategyDifferential:
    """Decomposed-vs-monolithic parity on the same instance matrix.

    The decomposition attack (and its ``auto`` dispatch) must return a
    proven optimum with the exact objective of the monolithic Eq. 1 model
    on every instance — acceleration is never allowed to change the answer
    (see docs/solver.md).
    """

    def test_every_strategy_proves_the_same_objective(self, topology, disruption, seed):
        from repro.flows.milp import solve_minimum_recovery

        supply, demand = _instance(topology, disruption, seed)
        monolithic = solve_minimum_recovery(supply, demand, strategy="monolithic")
        assert monolithic.status == "optimal"
        for strategy in ("decomposed", "auto"):
            accelerated = solve_minimum_recovery(supply, demand, strategy=strategy)
            assert accelerated.status == "optimal", (
                f"{strategy} failed to prove optimality on this instance"
            )
            assert accelerated.objective == pytest.approx(
                monolithic.objective, abs=1e-9
            ), (
                f"{strategy} objective {accelerated.objective} != monolithic "
                f"{monolithic.objective}"
            )
