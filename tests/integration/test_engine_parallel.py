"""Parallel-vs-serial determinism of the experiment engine.

The engine's core guarantee: the same spec and root seed yield identical
metric rows whatever the ``jobs`` value, because every task cell derives its
random stream from its own ``SeedSequence`` spawn key rather than from a
shared generator whose state depends on execution order.  Timing columns
(``elapsed_seconds``, the ``solver_*_seconds`` effort telemetry) are
measured wall clock, and the solver structure-cache hit/miss counters
depend on worker-process reuse; those environmental columns are the
legitimate differences, so comparisons strip them.  Solver *solve counts*
are deterministic and stay in the comparison.
"""

import pytest

from repro.api.requests import DemandSpec, DisruptionSpec, TopologySpec
from repro.engine.experiment import run_experiment
from repro.engine.spec import ExperimentSpec, SweepAxis
from repro.evaluation.scenarios import figure4_demand_pairs

#: Row keys that legitimately differ between runs of the same cells:
#: wall-clock measurements and process-environment cache counters.
ENVIRONMENTAL_KEYS = frozenset(
    {
        "elapsed_seconds",
        "solver_build_seconds",
        "solver_solve_seconds",
        "solver_structure_hits",
        "solver_structure_misses",
    }
)


def strip_timing(rows):
    return [
        {key: value for key, value in row.items() if key not in ENVIRONMENTAL_KEYS}
        for row in rows
    ]


def stochastic_spec():
    """A spec whose every stage is random: topology, disruption and demand."""
    return ExperimentSpec(
        name="parallel-erdos",
        figure="Integration",
        topology=TopologySpec(
            "erdos-renyi",
            kwargs={"num_nodes": 20, "edge_probability": 0.25, "capacity": 100.0},
        ),
        disruption=DisruptionSpec("random", kwargs={"node_probability": 0.4, "edge_probability": 0.4}),
        demand=DemandSpec("random", num_pairs=2, flow_per_pair=1.0),
        sweep=SweepAxis(parameter="num_pairs", values=(1, 2, 3), target="demand.num_pairs"),
        algorithms=("SRT", "GRD-NC", "ALL"),
        runs=2,
    )


class TestParallelDeterminism:
    def test_jobs1_and_jobs4_produce_identical_rows(self):
        spec = stochastic_spec()
        serial = run_experiment(spec, seed=123, jobs=1)
        parallel = run_experiment(spec, seed=123, jobs=4)
        assert strip_timing(serial.rows) == strip_timing(parallel.rows)

    def test_scenario_function_parallel_matches_serial(self):
        kwargs = dict(
            pair_counts=(1, 2),
            runs=2,
            seed=11,
            algorithm_names=("SRT", "ALL"),
        )
        serial = figure4_demand_pairs(jobs=1, **kwargs)
        parallel = figure4_demand_pairs(jobs=4, **kwargs)
        assert strip_timing(serial.rows) == strip_timing(parallel.rows)

    def test_different_seeds_differ(self):
        spec = stochastic_spec()
        a = run_experiment(spec, seed=123, jobs=1)
        b = run_experiment(spec, seed=124, jobs=1)
        assert strip_timing(a.rows) != strip_timing(b.rows)

    def test_row_order_is_sweep_then_algorithm(self):
        spec = stochastic_spec()
        result = run_experiment(spec, seed=5, jobs=4)
        expected = [
            (value, algorithm)
            for value in spec.sweep.values
            for algorithm in spec.algorithms
        ]
        assert [(row["num_pairs"], row["algorithm"]) for row in result.rows] == expected

    def test_parallel_run_with_cache_round_trip(self, tmp_path):
        spec = stochastic_spec()
        first = run_experiment(spec, seed=9, jobs=4, cache_dir=tmp_path)
        again = run_experiment(spec, seed=9, jobs=4, cache_dir=tmp_path)
        assert strip_timing(first.rows) == strip_timing(again.rows)
        # Cache holds one entry per task cell.
        cells = len(spec.sweep.values) * spec.runs * len(spec.algorithms)
        assert len(list(tmp_path.glob("*.json"))) == cells

    def test_wall_clock_is_recorded(self):
        spec = stochastic_spec()
        from repro.engine.tasks import execute_task, expand_tasks

        result = execute_task(expand_tasks(spec, seed=1)[0])
        assert result.wall_seconds > 0


class TestFailurePropagation:
    def failing_spec(self):
        # 50 far-apart pairs cannot exist on a 2x2 grid, so the second sweep
        # value raises inside the worker while the first succeeds.
        return ExperimentSpec(
            name="failing-grid",
            figure="Integration",
            topology=TopologySpec("grid", kwargs={"rows": 2, "cols": 2, "capacity": 10.0}),
            disruption=DisruptionSpec("complete"),
            demand=DemandSpec("far-apart", num_pairs=1, flow_per_pair=1.0),
            sweep=SweepAxis(parameter="num_pairs", values=(1, 50), target="demand.num_pairs"),
            algorithms=("SRT",),
            runs=1,
        )

    def test_parallel_failure_raises_and_keeps_completed_cells(self, tmp_path):
        with pytest.raises(ValueError):
            run_experiment(self.failing_spec(), seed=1, jobs=2, cache_dir=tmp_path)
        # The successful cell still reached the cache, so a resume after
        # fixing the spec recomputes only what actually failed.
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_serial_failure_raises_and_keeps_completed_cells(self, tmp_path):
        with pytest.raises(ValueError):
            run_experiment(self.failing_spec(), seed=1, jobs=1, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 1
