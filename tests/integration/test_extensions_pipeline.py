"""Integration tests for the damage-assessment and progressive-recovery extensions.

These exercise the extensions on a realistic Bell-Canada disaster instance,
checking that their numbers stay consistent with the evaluation harness and
with the recovery plans they are derived from.
"""

import pytest

from repro.evaluation.demand_builder import routable_far_apart_demand
from repro.evaluation.metrics import evaluate_plan
from repro.extensions.assessment import assess_damage
from repro.extensions.progressive import schedule_progressive_recovery
from repro.failures.geographic import GaussianDisruption
from repro.flows.routability import is_routable
from repro.heuristics.registry import get_algorithm
from repro.topologies.bellcanada import bell_canada


@pytest.fixture(scope="module")
def disaster_instance():
    supply = bell_canada()
    GaussianDisruption(variance=50.0).apply(supply, seed=123)
    demand = routable_far_apart_demand(supply, num_pairs=3, flow_per_pair=10.0, seed=123)
    return supply, demand


@pytest.fixture(scope="module")
def isp_plan(disaster_instance):
    supply, demand = disaster_instance
    return get_algorithm("ISP").solve(supply, demand)


class TestAssessmentConsistency:
    def test_counts_match_supply_state(self, disaster_instance):
        supply, demand = disaster_instance
        assessment = assess_damage(supply, demand)
        assert assessment.broken_nodes == len(supply.broken_nodes)
        assert assessment.broken_edges == len(supply.broken_edges)
        assert 0.0 < assessment.broken_fraction < 1.0

    def test_pre_recovery_satisfaction_matches_noop_plan(self, disaster_instance):
        from repro.network.plan import RecoveryPlan

        supply, demand = disaster_instance
        assessment = assess_damage(supply, demand)
        noop = evaluate_plan(supply, demand, RecoveryPlan(algorithm="NOOP"))
        assert assessment.pre_recovery_satisfied_fraction == pytest.approx(
            noop.satisfied_fraction, abs=1e-6
        )

    def test_disconnected_pairs_have_zero_satisfiable_flow(self, disaster_instance):
        supply, demand = disaster_instance
        assessment = assess_damage(supply, demand)
        for pair in assessment.disconnected_pairs:
            assert assessment.per_pair_satisfiable.get(pair, 0.0) == pytest.approx(0.0)

    def test_demand_is_routable_on_undamaged_network(self, disaster_instance):
        supply, demand = disaster_instance
        assert is_routable(supply.full_graph(use_residual=False), demand)


class TestProgressiveOnRealPlan:
    def test_schedule_matches_plan_and_restores_everything(self, disaster_instance, isp_plan):
        supply, demand = disaster_instance
        schedule = schedule_progressive_recovery(supply, demand, isp_plan, budget_per_stage=5)
        assert schedule.total_repairs == isp_plan.total_repairs
        curve = schedule.restoration_curve()
        assert curve[-1] == pytest.approx(1.0, abs=1e-6)
        assert all(later >= earlier - 1e-9 for earlier, later in zip(curve, curve[1:]))

    def test_budget_one_gives_one_repair_per_stage(self, disaster_instance, isp_plan):
        supply, demand = disaster_instance
        schedule = schedule_progressive_recovery(supply, demand, isp_plan, budget_per_stage=1)
        assert schedule.num_stages == isp_plan.total_repairs
        assert all(stage.num_repairs == 1 for stage in schedule.stages)

    def test_bigger_budget_needs_no_more_stages(self, disaster_instance, isp_plan):
        supply, demand = disaster_instance
        small = schedule_progressive_recovery(supply, demand, isp_plan, budget_per_stage=2)
        large = schedule_progressive_recovery(supply, demand, isp_plan, budget_per_stage=6)
        assert large.num_stages <= small.num_stages

    def test_schedule_works_for_opt_plan_too(self, disaster_instance):
        supply, demand = disaster_instance
        opt_plan = get_algorithm("OPT", time_limit=60.0).solve(supply, demand)
        schedule = schedule_progressive_recovery(supply, demand, opt_plan, budget_per_stage=4)
        assert schedule.total_repairs == opt_plan.total_repairs
        assert schedule.restoration_curve()[-1] == pytest.approx(1.0, abs=1e-6)
