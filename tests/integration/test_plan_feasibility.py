"""Cross-algorithm feasibility checks.

Every algorithm that claims full demand satisfaction must produce a repair
set under which the original demand is actually routable (verified with the
concurrent-flow LP), and every explicit routing must respect failures and
capacities.
"""

import pytest

from repro.evaluation.metrics import evaluate_plan, recovered_graph
from repro.failures.complete import CompleteDestruction
from repro.failures.geographic import GaussianDisruption
from repro.flows.routability import is_routable
from repro.heuristics.registry import get_algorithm
from repro.network.demand import DemandGraph
from repro.topologies.grids import grid_topology
from repro.topologies.random_graphs import geometric_graph

ALGORITHMS_WITHOUT_LOSS = ["ISP", "OPT", "GRD-NC", "ALL", "MCB", "MCW"]
ALL_ALGORITHMS = ALGORITHMS_WITHOUT_LOSS + ["SRT", "GRD-COM"]


def _grid_instance():
    supply = grid_topology(4, 4, capacity=20.0)
    CompleteDestruction().apply(supply)
    demand = DemandGraph()
    demand.add((0, 0), (3, 3), 8.0)
    demand.add((0, 3), (3, 0), 8.0)
    demand.add((0, 2), (3, 1), 8.0)
    return supply, demand


def _geometric_instance():
    supply = geometric_graph(num_nodes=30, radius=0.35, capacity=15.0, seed=21)
    GaussianDisruption(variance=900.0, intensity=0.8).apply(supply, seed=22)
    demand = DemandGraph()
    nodes = sorted(supply.nodes)
    demand.add(nodes[0], nodes[-1], 6.0)
    demand.add(nodes[1], nodes[-2], 6.0)
    return supply, demand


def _solve(name, supply, demand):
    if name == "OPT":
        return get_algorithm("OPT", time_limit=60.0).solve(supply, demand)
    return get_algorithm(name).solve(supply, demand)


class TestGridInstance:
    @pytest.mark.parametrize("name", ALGORITHMS_WITHOUT_LOSS)
    def test_no_loss_algorithms_restore_routability(self, name):
        supply, demand = _grid_instance()
        plan = _solve(name, supply, demand)
        graph = recovered_graph(supply, plan)
        assert is_routable(graph, demand), f"{name} left the demand unroutable"

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_explicit_routes_are_feasible(self, name):
        supply, demand = _grid_instance()
        plan = _solve(name, supply, demand)
        assert plan.validate_routing(supply, demand) == []

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_repairs_only_broken_elements(self, name):
        supply, demand = _grid_instance()
        plan = _solve(name, supply, demand)
        for node in plan.repaired_nodes:
            assert supply.is_broken_node(node)
        for u, v in plan.repaired_edges:
            assert supply.is_broken_edge(u, v)

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_repairs_bounded_by_destruction(self, name):
        supply, demand = _grid_instance()
        plan = _solve(name, supply, demand)
        assert plan.num_node_repairs <= len(supply.broken_nodes)
        assert plan.num_edge_repairs <= len(supply.broken_edges)


class TestGeometricInstance:
    @pytest.mark.parametrize("name", ["ISP", "OPT", "SRT", "GRD-NC", "ALL"])
    def test_partial_disruption_feasibility(self, name):
        supply, demand = _geometric_instance()
        plan = _solve(name, supply, demand)
        evaluation = evaluate_plan(supply, demand, plan)
        assert evaluation.routing_violations == 0
        assert 0.0 <= evaluation.satisfied_percentage <= 100.0
        # Algorithms guaranteed lossless must reach 100% here as well.
        if name in ("ISP", "OPT", "GRD-NC", "ALL"):
            assert evaluation.satisfied_percentage == pytest.approx(100.0)

    def test_isp_not_worse_than_repair_all(self):
        supply, demand = _geometric_instance()
        isp = _solve("ISP", supply, demand)
        everything = _solve("ALL", supply, demand)
        assert isp.total_repairs <= everything.total_repairs
