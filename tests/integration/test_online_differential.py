"""Differential suite: online recovery vs the clairvoyant baseline.

Samples online scenarios from the fuzz scenario space, runs every episode
with full per-epoch verification, and checks the regret contract: an
online runner can never beat a *proven* optimal baseline that knows the
whole realized damage in advance (its standing repairs are themselves a
feasible clairvoyant solution), and when satisfaction is the differentiator
the clairvoyant side satisfies at least as much.  Together with the
determinism check this is the acceptance gate of the online subsystem.
"""

import pytest

from repro.online import REGRET_TOLERANCE, run_episode
from repro.scenarios import ScenarioGenerator


def sampled_specs():
    generator = ScenarioGenerator(seed=29)
    return [generator.sample_online_spec(epochs=3) for _ in range(4)]


SPECS = sampled_specs()


class TestDifferential:
    @pytest.mark.parametrize("index", range(len(SPECS)))
    def test_regret_non_negative_and_invariants_hold(self, index):
        result = run_episode(SPECS[index], verify=True)
        assert result.violations == [], result.violations
        regret = result.regret
        if regret["baseline_proven"]:
            assert regret["regret"] >= -REGRET_TOLERANCE
        # The clairvoyant baseline always satisfies at least as much.
        assert regret["satisfaction_regret_pct"] >= -REGRET_TOLERANCE

    def test_sampled_specs_are_deterministic(self):
        generator = ScenarioGenerator(seed=29)
        resampled = [generator.sample_online_spec(epochs=3) for _ in range(4)]
        assert [spec.digest() for spec in resampled] == [spec.digest() for spec in SPECS]

    def test_episode_replay_is_identical(self):
        spec = SPECS[0]
        assert run_episode(spec, verify=True).fingerprint() == run_episode(
            spec, verify=True
        ).fingerprint()
