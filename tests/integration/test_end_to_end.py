"""End-to-end integration tests: full pipeline on realistic instances.

These tests run the complete workflow the examples and benchmarks use
(topology → disruption → demand → several algorithms → evaluation) and check
the qualitative claims of the paper on instances small enough to solve
exactly.
"""

import pytest

from repro.evaluation.demand_builder import far_apart_demand
from repro.evaluation.metrics import evaluate_plan
from repro.evaluation.runner import compare_algorithms
from repro.failures.complete import CompleteDestruction
from repro.failures.geographic import GaussianDisruption
from repro.heuristics.registry import get_algorithm
from repro.network.demand import DemandGraph
from repro.topologies.bellcanada import bell_canada
from repro.topologies.grids import grid_topology


@pytest.fixture(scope="module")
def bellcanada_instance():
    """Bell-Canada, complete destruction, 3 far-apart pairs of 10 units."""
    supply = bell_canada()
    CompleteDestruction().apply(supply)
    demand = far_apart_demand(supply, 3, 10.0, seed=101)
    return supply, demand


@pytest.fixture(scope="module")
def bellcanada_plans(bellcanada_instance):
    supply, demand = bellcanada_instance
    names = ["ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL"]
    algorithms = [
        get_algorithm(name, time_limit=120.0) if name == "OPT" else get_algorithm(name)
        for name in names
    ]
    plans = {name: algorithm.solve(supply, demand) for name, algorithm in zip(names, algorithms)}
    evaluations = {
        name: evaluate_plan(supply, demand, plan) for name, plan in plans.items()
    }
    return plans, evaluations


class TestBellCanadaCompleteDestruction:
    def test_opt_is_lower_bound(self, bellcanada_plans):
        plans, _ = bellcanada_plans
        for name in ("ISP", "SRT", "GRD-COM", "GRD-NC", "ALL"):
            assert plans["OPT"].total_repairs <= plans[name].total_repairs + 1e-9

    def test_isp_close_to_optimal(self, bellcanada_plans):
        plans, _ = bellcanada_plans
        # The paper reports ISP within ~15% of OPT at low demand.
        assert plans["ISP"].total_repairs <= 1.35 * plans["OPT"].total_repairs

    def test_isp_beats_greedy_no_commitment(self, bellcanada_plans):
        plans, _ = bellcanada_plans
        assert plans["ISP"].total_repairs <= plans["GRD-NC"].total_repairs

    def test_all_is_upper_bound(self, bellcanada_plans):
        plans, _ = bellcanada_plans
        assert plans["ALL"].total_repairs == 48 + 64
        for name in ("ISP", "OPT", "SRT", "GRD-COM", "GRD-NC"):
            assert plans[name].total_repairs <= plans["ALL"].total_repairs

    def test_isp_and_grdnc_have_no_demand_loss(self, bellcanada_plans):
        _, evaluations = bellcanada_plans
        assert evaluations["ISP"].satisfied_percentage == pytest.approx(100.0)
        assert evaluations["GRD-NC"].satisfied_percentage == pytest.approx(100.0)
        assert evaluations["OPT"].satisfied_percentage == pytest.approx(100.0)

    def test_isp_routing_is_feasible(self, bellcanada_plans):
        plans, evaluations = bellcanada_plans
        assert evaluations["ISP"].routing_violations == 0

    def test_isp_runs_fast(self, bellcanada_plans):
        plans, _ = bellcanada_plans
        assert plans["ISP"].elapsed_seconds < 60.0


class TestGeographicDisruption:
    def test_partial_disruption_pipeline(self):
        supply = bell_canada()
        GaussianDisruption(variance=40.0).apply(supply, seed=7)
        demand = far_apart_demand(supply, 3, 10.0, seed=7)
        algorithms = [get_algorithm("ISP"), get_algorithm("SRT"), get_algorithm("ALL")]
        evaluations = compare_algorithms(supply, demand, algorithms)
        by_name = {e.algorithm: e for e in evaluations}
        assert by_name["ISP"].total_repairs <= by_name["ALL"].total_repairs
        assert by_name["ISP"].satisfied_percentage == pytest.approx(100.0)
        # Repairs never exceed what was actually destroyed.
        destroyed = len(supply.broken_nodes) + len(supply.broken_edges)
        for evaluation in evaluations:
            assert evaluation.total_repairs <= destroyed

    def test_no_disruption_means_no_repairs(self):
        supply = bell_canada()
        demand = far_apart_demand(supply, 3, 10.0, seed=9)
        for name in ("ISP", "SRT", "GRD-COM", "GRD-NC"):
            plan = get_algorithm(name).solve(supply, demand)
            assert plan.total_repairs == 0, name


class TestSharedCorridorEconomy:
    def test_isp_exploits_sharing_on_grid(self):
        # Four demands between the corners of a 5x5 grid, all of which can
        # share the central cross; ISP should repair far less than 4 disjoint
        # corner-to-corner paths (4 * 9 elements).
        supply = grid_topology(5, 5, capacity=100.0)
        CompleteDestruction().apply(supply)
        demand = DemandGraph()
        demand.add((0, 0), (4, 4), 1.0)
        demand.add((0, 4), (4, 0), 1.0)
        plan = get_algorithm("ISP").solve(supply, demand)
        evaluation = evaluate_plan(supply, demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)
        assert plan.total_repairs <= 30

    def test_opt_vs_isp_on_grid(self):
        supply = grid_topology(4, 4, capacity=50.0)
        CompleteDestruction().apply(supply)
        demand = DemandGraph()
        demand.add((0, 0), (3, 3), 5.0)
        demand.add((0, 3), (3, 0), 5.0)
        isp = get_algorithm("ISP").solve(supply, demand)
        opt = get_algorithm("OPT", time_limit=60.0).solve(supply, demand)
        assert opt.total_repairs <= isp.total_repairs
        assert isp.total_repairs <= 1.5 * opt.total_repairs
