"""Tests for max-flow helpers and flow decomposition."""

import networkx as nx
import pytest

from repro.flows.decomposition import decompose_flows, total_decomposed_flow
from repro.flows.maxflow import bottleneck_capacity, max_flow_over_path_set, max_flow_value


class TestMaxFlowValue:
    def test_line(self, line_supply):
        graph = line_supply.working_graph()
        assert max_flow_value(graph, "a", "e") == pytest.approx(10.0)

    def test_diamond(self, diamond_supply):
        graph = diamond_supply.working_graph()
        assert max_flow_value(graph, "s", "t") == pytest.approx(14.0)

    def test_same_node_is_infinite(self, line_supply):
        graph = line_supply.working_graph()
        assert max_flow_value(graph, "a", "a") == float("inf")

    def test_missing_node_is_zero(self, line_supply):
        graph = line_supply.working_graph()
        assert max_flow_value(graph, "a", "zzz") == 0.0

    def test_disconnected_is_zero(self, line_supply):
        line_supply.break_node("c")
        graph = line_supply.working_graph()
        assert max_flow_value(graph, "a", "e") == 0.0


class TestMaxFlowOverPathSet:
    def test_single_path(self, diamond_supply):
        graph = diamond_supply.full_graph()
        value = max_flow_over_path_set(graph, [("s", "a", "t")], "s", "t")
        assert value == pytest.approx(10.0)

    def test_two_paths(self, diamond_supply):
        graph = diamond_supply.full_graph()
        value = max_flow_over_path_set(graph, [("s", "a", "t"), ("s", "b", "t")], "s", "t")
        assert value == pytest.approx(14.0)

    def test_empty_path_set(self, diamond_supply):
        graph = diamond_supply.full_graph()
        assert max_flow_over_path_set(graph, [], "s", "t") == 0.0

    def test_unknown_edge_raises(self, diamond_supply):
        graph = diamond_supply.full_graph()
        with pytest.raises(KeyError):
            max_flow_over_path_set(graph, [("s", "t")], "s", "t")

    def test_bottleneck_capacity(self, diamond_supply):
        graph = diamond_supply.full_graph()
        assert bottleneck_capacity(graph, ("s", "b", "t")) == pytest.approx(4.0)


class TestDecomposeFlows:
    def test_single_path_flow(self):
        flows = {("a", "b"): 3.0, ("b", "c"): 3.0}
        decomposition = decompose_flows(flows, "a", "c")
        assert decomposition == [(("a", "b", "c"), pytest.approx(3.0))]

    def test_two_parallel_paths(self):
        flows = {("s", "a"): 2.0, ("a", "t"): 2.0, ("s", "b"): 1.0, ("b", "t"): 1.0}
        decomposition = decompose_flows(flows, "s", "t")
        assert total_decomposed_flow(decomposition) == pytest.approx(3.0)
        assert len(decomposition) == 2

    def test_cycle_is_dropped(self):
        # A cycle a->b->a carrying flow plus a genuine path.
        flows = {("s", "t"): 1.0, ("a", "b"): 5.0, ("b", "a"): 5.0}
        decomposition = decompose_flows(flows, "s", "t")
        assert total_decomposed_flow(decomposition) == pytest.approx(1.0)

    def test_unbalanced_noise_tolerated(self):
        flows = {("s", "a"): 1.0, ("a", "t"): 1.0, ("s", "b"): 1e-9}
        decomposition = decompose_flows(flows, "s", "t")
        assert total_decomposed_flow(decomposition) == pytest.approx(1.0)

    def test_no_flow(self):
        assert decompose_flows({}, "s", "t") == []

    def test_paths_are_simple(self):
        flows = {("s", "a"): 2.0, ("a", "b"): 2.0, ("b", "t"): 2.0, ("b", "a"): 1.0}
        decomposition = decompose_flows(flows, "s", "t")
        for path, _ in decomposition:
            assert len(set(path)) == len(path)

    def test_conservation_of_decomposed_flow(self):
        flows = {
            ("s", "a"): 4.0,
            ("s", "b"): 2.0,
            ("a", "t"): 3.0,
            ("a", "b"): 1.0,
            ("b", "t"): 3.0,
        }
        decomposition = decompose_flows(flows, "s", "t")
        assert total_decomposed_flow(decomposition) == pytest.approx(6.0)
