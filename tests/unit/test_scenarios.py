"""Tests for the per-figure scenario functions (reduced-scale runs)."""

import pytest

from repro.evaluation.scenarios import (
    figure3_multicommodity,
    figure4_demand_pairs,
    figure5_demand_intensity,
    figure6_disruption_extent,
    figure7_scalability,
    figure8_topology_report,
    figure9_caida,
)


class TestFigure3:
    def test_rows_and_algorithms(self):
        result = figure3_multicommodity(demand_values=(2,), runs=1, seed=1, opt_time_limit=30.0)
        assert result.figure == "Figure 3"
        algorithms = {row["algorithm"] for row in result.rows}
        assert algorithms == {"OPT", "MCW", "MCB", "ALL"}

    def test_series_pivot(self):
        result = figure3_multicommodity(
            demand_values=(2,), runs=1, seed=1, opt_time_limit=30.0,
            algorithm_names=("MCB", "ALL"),
        )
        series = result.series("total_repairs")
        assert set(series) == {"MCB", "ALL"}


class TestFigure4:
    def test_sweep_structure(self):
        result = figure4_demand_pairs(
            pair_counts=(1, 2),
            runs=1,
            seed=2,
            opt_time_limit=30.0,
            algorithm_names=("ISP", "SRT", "ALL"),
        )
        sweep_values = {row["num_pairs"] for row in result.rows}
        assert sweep_values == {1, 2}
        assert len(result.rows) == 2 * 3

    def test_isp_never_exceeds_all(self):
        result = figure4_demand_pairs(
            pair_counts=(2,), runs=1, seed=3, algorithm_names=("ISP", "ALL")
        )
        series = result.series("total_repairs")
        assert series["ISP"][2] <= series["ALL"][2]


class TestFigure5:
    def test_reduced_run(self):
        result = figure5_demand_intensity(
            demand_values=(4,), num_pairs=2, runs=1, seed=4, algorithm_names=("ISP", "SRT")
        )
        assert {row["algorithm"] for row in result.rows} == {"ISP", "SRT"}
        assert all(row["satisfied_pct"] <= 100.0 for row in result.rows)


class TestFigure6:
    def test_geographic_sweep(self):
        result = figure6_disruption_extent(
            variances=(5.0, 200.0),
            num_pairs=2,
            runs=1,
            seed=5,
            algorithm_names=("ISP", "ALL"),
        )
        series = result.series("total_repairs")
        # A wider disruption destroys (and therefore repairs) at least as much.
        assert series["ALL"][200.0] >= series["ALL"][5.0]


class TestFigure7:
    def test_scalability_rows(self):
        result = figure7_scalability(
            edge_probabilities=(0.08,),
            num_nodes=25,
            num_pairs=2,
            runs=1,
            seed=6,
            algorithm_names=("ISP", "SRT"),
        )
        assert {row["algorithm"] for row in result.rows} == {"ISP", "SRT"}
        assert all(row["elapsed_seconds"] >= 0 for row in result.rows)


class TestFigure8:
    def test_topology_report(self):
        stats = figure8_topology_report(num_nodes=200, num_edges=246, seed=7)
        assert stats["nodes"] == 200
        assert stats["edges"] == 246
        assert stats["connected"]
        assert len(stats["top_degrees"]) == 10
        assert 0.0 <= stats["degree_one_fraction"] <= 1.0


class TestFigure9:
    def test_reduced_caida_run(self):
        result = figure9_caida(
            pair_counts=(1,),
            flow_per_pair=10.0,
            num_nodes=60,
            num_edges=75,
            runs=1,
            seed=8,
            opt_time_limit=20.0,
            algorithm_names=("ISP", "SRT"),
        )
        assert {row["algorithm"] for row in result.rows} == {"ISP", "SRT"}
        for row in result.rows:
            assert row["total_repairs"] >= 0
