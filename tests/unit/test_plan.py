"""Tests for repro.network.plan.RecoveryPlan."""

import pytest

from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan, RouteAssignment


class TestRouteAssignment:
    def test_requires_positive_flow(self):
        with pytest.raises(ValueError):
            RouteAssignment(pair=("a", "b"), path=("a", "b"), flow=0.0)

    def test_requires_at_least_one_edge(self):
        with pytest.raises(ValueError):
            RouteAssignment(pair=("a", "b"), path=("a",), flow=1.0)


class TestRepairBookkeeping:
    def test_counts(self):
        plan = RecoveryPlan(algorithm="X")
        plan.add_node_repair("a")
        plan.add_node_repair("a")
        plan.add_edge_repair("a", "b")
        plan.add_edge_repair("b", "a")
        assert plan.num_node_repairs == 1
        assert plan.num_edge_repairs == 1
        assert plan.total_repairs == 2

    def test_repair_cost(self, line_supply):
        line_supply.set_node_repair_cost("a", 3.0)
        line_supply.set_edge_repair_cost("a", "b", 2.0)
        plan = RecoveryPlan(algorithm="X")
        plan.add_node_repair("a")
        plan.add_edge_repair("a", "b")
        assert plan.repair_cost(line_supply) == pytest.approx(5.0)


class TestRoutes:
    def test_add_route_accumulates_satisfied(self):
        plan = RecoveryPlan(algorithm="X")
        plan.add_route(("a", "c"), ("a", "b", "c"), 3.0)
        plan.add_route(("c", "a"), ("c", "b", "a"), 2.0)
        assert plan.total_satisfied() == pytest.approx(5.0)

    def test_routed_load_aggregates_edges(self):
        plan = RecoveryPlan(algorithm="X")
        plan.add_route(("a", "c"), ("a", "b", "c"), 3.0)
        plan.add_route(("a", "c"), ("a", "b", "c"), 2.0)
        load = plan.routed_load()
        assert load[("a", "b")] == pytest.approx(5.0)
        assert load[("b", "c")] == pytest.approx(5.0)

    def test_satisfied_fraction_caps_at_one(self):
        demand = DemandGraph()
        demand.add("a", "c", 4.0)
        plan = RecoveryPlan(algorithm="X")
        plan.record_satisfied(("a", "c"), 100.0)
        assert plan.satisfied_fraction(demand) == pytest.approx(1.0)

    def test_satisfied_fraction_partial(self):
        demand = DemandGraph()
        demand.add("a", "c", 4.0)
        demand.add("x", "y", 4.0)
        plan = RecoveryPlan(algorithm="X")
        plan.record_satisfied(("a", "c"), 4.0)
        assert plan.satisfied_fraction(demand) == pytest.approx(0.5)
        assert plan.demand_loss(demand) == pytest.approx(0.5)

    def test_empty_demand_is_fully_satisfied(self):
        plan = RecoveryPlan(algorithm="X")
        assert plan.satisfied_fraction(DemandGraph()) == 1.0


class TestValidation:
    def test_valid_routing_passes(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "c", 5.0)
        plan = RecoveryPlan(algorithm="X")
        plan.add_route(("a", "c"), ("a", "b", "c"), 5.0)
        assert plan.validate_routing(line_supply, demand) == []

    def test_route_through_unrepaired_broken_node_flagged(self, line_supply):
        line_supply.break_node("b")
        demand = DemandGraph()
        demand.add("a", "c", 5.0)
        plan = RecoveryPlan(algorithm="X")
        plan.add_route(("a", "c"), ("a", "b", "c"), 5.0)
        problems = plan.validate_routing(line_supply, demand)
        assert any("broken node" in p for p in problems)

    def test_route_through_repaired_broken_node_ok(self, line_supply):
        line_supply.break_node("b")
        demand = DemandGraph()
        demand.add("a", "c", 5.0)
        plan = RecoveryPlan(algorithm="X")
        plan.add_node_repair("b")
        plan.add_route(("a", "c"), ("a", "b", "c"), 5.0)
        assert plan.validate_routing(line_supply, demand) == []

    def test_route_through_unrepaired_broken_edge_flagged(self, line_supply):
        line_supply.break_edge("a", "b")
        demand = DemandGraph()
        demand.add("a", "c", 5.0)
        plan = RecoveryPlan(algorithm="X")
        plan.add_route(("a", "c"), ("a", "b", "c"), 5.0)
        problems = plan.validate_routing(line_supply, demand)
        assert any("broken edge" in p for p in problems)

    def test_capacity_violation_flagged(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "c", 50.0)
        plan = RecoveryPlan(algorithm="X")
        plan.add_route(("a", "c"), ("a", "b", "c"), 50.0)
        problems = plan.validate_routing(line_supply, demand)
        assert any("capacity" in p for p in problems)

    def test_nonexistent_edge_flagged(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        plan = RecoveryPlan(algorithm="X")
        plan.add_route(("a", "e"), ("a", "e"), 5.0)
        problems = plan.validate_routing(line_supply, demand)
        assert any("non-existent" in p for p in problems)

    def test_over_delivery_flagged(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "c", 1.0)
        plan = RecoveryPlan(algorithm="X")
        plan.add_route(("a", "c"), ("a", "b", "c"), 5.0)
        problems = plan.validate_routing(line_supply, demand)
        assert any("requested only" in p for p in problems)


class TestSummary:
    def test_summary_keys(self):
        plan = RecoveryPlan(algorithm="X", elapsed_seconds=1.5, iterations=3)
        summary = plan.summary()
        assert summary["algorithm"] == "X"
        assert summary["iterations"] == 3
        assert summary["total_repairs"] == 0
