"""Tests for the routability test (Section IV-A)."""

import networkx as nx
import pytest

from repro.flows.routability import (
    cut_condition_violated,
    is_routable,
    routability_test,
    vertex_surplus,
)
from repro.network.demand import DemandGraph


class TestRoutabilityBasics:
    def test_empty_demand_is_routable(self, line_supply):
        assert is_routable(line_supply.working_graph(), DemandGraph())

    def test_single_path_routable(self, line_supply, single_demand):
        assert is_routable(line_supply.working_graph(), single_demand)

    def test_demand_above_capacity_not_routable(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 11.0)
        assert not is_routable(line_supply.working_graph(), demand)

    def test_demand_exactly_at_capacity_routable(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 10.0)
        assert is_routable(line_supply.working_graph(), demand)

    def test_missing_endpoint_not_routable(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "missing", 1.0)
        result = routability_test(line_supply.working_graph(), demand)
        assert not result.routable
        assert "missing" in result.reason

    def test_disconnected_endpoints_not_routable(self, line_supply):
        line_supply.break_node("c")
        demand = DemandGraph()
        demand.add("a", "e", 1.0)
        result = routability_test(line_supply.working_graph(), demand)
        assert not result.routable
        assert "no working path" in result.reason

    def test_result_is_truthy(self, line_supply, single_demand):
        assert bool(routability_test(line_supply.working_graph(), single_demand))


class TestMultiCommodityInteraction:
    def test_two_demands_sharing_an_edge(self, diamond_supply):
        # Total 14 units fit (10 + 4); 15 do not.
        demand_ok = DemandGraph()
        demand_ok.add("s", "t", 14.0)
        demand_over = DemandGraph()
        demand_over.add("s", "t", 15.0)
        graph = diamond_supply.working_graph()
        assert is_routable(graph, demand_ok)
        assert not is_routable(graph, demand_over)

    def test_conflicting_demands(self, line_supply):
        # Two demands of 6 units both need the single capacity-10 path: infeasible.
        demand = DemandGraph()
        demand.add("a", "c", 6.0)
        demand.add("b", "e", 6.0)
        assert not is_routable(line_supply.working_graph(), demand)

    def test_flows_returned_when_requested(self, line_supply, single_demand):
        result = routability_test(line_supply.working_graph(), single_demand, want_flows=True)
        assert result.routable
        assert len(result.flows) == 1
        total_out_of_a = sum(
            flow for (u, v), flow in result.flows[0].items() if u == "a"
        )
        assert total_out_of_a == pytest.approx(5.0)

    def test_edge_loads_respect_capacity(self, diamond_supply, diamond_demand):
        graph = diamond_supply.working_graph()
        result = routability_test(graph, diamond_demand, want_flows=True)
        assert result.routable
        for (u, v), load in result.edge_loads.items():
            assert load <= graph.edges[u, v]["capacity"] + 1e-6


class TestCutCondition:
    def test_violated_cut_detected(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 20.0)
        graph = line_supply.working_graph()
        assert cut_condition_violated(graph, demand, {"a", "b"})

    def test_satisfied_cut(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        graph = line_supply.working_graph()
        assert not cut_condition_violated(graph, demand, {"a", "b"})

    def test_cut_with_no_crossing_demand(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "b", 5.0)
        graph = line_supply.working_graph()
        assert not cut_condition_violated(graph, demand, {"a", "b"})


class TestVertexSurplus:
    def test_surplus_of_intermediate_node(self, line_supply, single_demand):
        graph = line_supply.working_graph()
        # Node c has two incident capacity-10 edges and no crossing demand.
        assert vertex_surplus(graph, single_demand, "c") == pytest.approx(20.0)

    def test_surplus_of_endpoint(self, line_supply, single_demand):
        graph = line_supply.working_graph()
        # Node a has one incident edge (10) and 5 units of crossing demand.
        assert vertex_surplus(graph, single_demand, "a") == pytest.approx(5.0)

    def test_surplus_of_missing_node(self, line_supply, single_demand):
        graph = line_supply.working_graph()
        assert vertex_surplus(graph, single_demand, "zzz") == pytest.approx(0.0)
