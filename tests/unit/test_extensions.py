"""Tests for the progressive-recovery and damage-assessment extensions."""

import pytest

from repro.core.isp import iterative_split_prune
from repro.extensions.assessment import assess_damage
from repro.extensions.progressive import schedule_progressive_recovery
from repro.failures.complete import CompleteDestruction
from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.topologies.grids import grid_topology


class TestAssessDamage:
    def test_intact_network(self, line_supply, single_demand):
        assessment = assess_damage(line_supply, single_demand)
        assert assessment.broken_nodes == 0
        assert assessment.broken_fraction == 0.0
        assert assessment.disconnected_pairs == []
        assert assessment.pre_recovery_satisfied_fraction == pytest.approx(1.0)
        assert not assessment.fully_cut_off

    def test_complete_destruction(self, line_supply, single_demand):
        line_supply.break_all()
        assessment = assess_damage(line_supply, single_demand)
        assert assessment.broken_nodes == 5
        assert assessment.broken_edges == 4
        assert assessment.broken_fraction == pytest.approx(1.0)
        assert assessment.largest_working_component == 0
        assert assessment.disconnected_pairs == [("a", "e")]
        assert assessment.fully_cut_off

    def test_partial_destruction(self, line_supply):
        line_supply.break_node("c")
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        demand.add("a", "b", 2.0)
        assessment = assess_damage(line_supply, demand)
        assert assessment.working_components == 2
        assert assessment.largest_working_component == 2
        assert assessment.disconnected_pairs == [("a", "e")]
        # Only the (a, b) demand (2 of 7 units) survives without repairs.
        assert assessment.pre_recovery_satisfied_fraction == pytest.approx(2.0 / 7.0)

    def test_summary_keys(self, line_supply, single_demand):
        summary = assess_damage(line_supply, single_demand).summary()
        assert summary["broken_fraction"] == 0.0
        assert summary["pre_recovery_satisfied_pct"] == 100.0


class TestProgressiveSchedule:
    def build_instance(self):
        supply = grid_topology(3, 3, capacity=10.0)
        CompleteDestruction().apply(supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        plan = iterative_split_prune(supply, demand)
        return supply, demand, plan

    def test_schedule_covers_entire_plan(self):
        supply, demand, plan = self.build_instance()
        schedule = schedule_progressive_recovery(supply, demand, plan, budget_per_stage=3)
        assert schedule.total_repairs == plan.total_repairs
        scheduled_nodes = {n for stage in schedule.stages for n in stage.repaired_nodes}
        scheduled_edges = {e for stage in schedule.stages for e in stage.repaired_edges}
        assert scheduled_nodes == plan.repaired_nodes
        assert scheduled_edges == plan.repaired_edges

    def test_budget_respected(self):
        supply, demand, plan = self.build_instance()
        schedule = schedule_progressive_recovery(supply, demand, plan, budget_per_stage=3)
        assert all(stage.num_repairs <= 3 for stage in schedule.stages)
        # All stages except possibly the last are full.
        for stage in schedule.stages[:-1]:
            assert stage.num_repairs == 3

    def test_restoration_curve_is_monotone_and_reaches_plan_value(self):
        supply, demand, plan = self.build_instance()
        schedule = schedule_progressive_recovery(supply, demand, plan, budget_per_stage=2)
        curve = schedule.restoration_curve()
        assert curve[0] == pytest.approx(0.0)
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(1.0)

    def test_single_stage_when_budget_is_huge(self):
        supply, demand, plan = self.build_instance()
        schedule = schedule_progressive_recovery(supply, demand, plan, budget_per_stage=1000)
        assert schedule.num_stages == 1
        assert schedule.stages[0].satisfied_fraction == pytest.approx(1.0)

    def test_stage_of_lookup(self):
        supply, demand, plan = self.build_instance()
        schedule = schedule_progressive_recovery(supply, demand, plan, budget_per_stage=4)
        some_node = next(iter(plan.repaired_nodes))
        assert schedule.stage_of(some_node) is not None
        assert schedule.stage_of("not-a-repair") is None

    def test_empty_plan_gives_empty_schedule(self, line_supply, single_demand):
        plan = RecoveryPlan(algorithm="NOOP")
        schedule = schedule_progressive_recovery(line_supply, single_demand, plan, 2)
        assert schedule.num_stages == 0
        assert schedule.restoration_curve() == [pytest.approx(1.0)]

    def test_invalid_budget(self, line_supply, single_demand):
        with pytest.raises(ValueError):
            schedule_progressive_recovery(
                line_supply, single_demand, RecoveryPlan(algorithm="X"), 0
            )
