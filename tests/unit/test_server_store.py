"""Unit tests of the durable job store: lifecycle, dedup, crash safety."""

import json
import sqlite3
import threading

import pytest

from repro.api.requests import (
    AssessmentRequest,
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
)
from repro.server.store import (
    DEFAULT_MAX_ATTEMPTS,
    JobStore,
    SCHEMA_VERSION,
    StoreSchemaError,
)


def grid_request(seed: int = 1, pairs: int = 1) -> RecoveryRequest:
    return RecoveryRequest(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(num_pairs=pairs, flow_per_pair=5.0),
        algorithms=("ISP",),
        seed=seed,
    )


@pytest.fixture()
def store(tmp_path):
    with JobStore(tmp_path / "jobs.db") as handle:
        yield handle


class TestSchema:
    def test_fresh_database_gets_current_version(self, store):
        assert store.schema_version == SCHEMA_VERSION

    def test_newer_schema_is_rejected(self, tmp_path):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version={SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(StoreSchemaError, match="schema version"):
            JobStore(path)

    def test_reopening_is_idempotent(self, tmp_path):
        path = tmp_path / "jobs.db"
        JobStore(path).close()
        with JobStore(path) as again:
            assert again.schema_version == SCHEMA_VERSION


class TestSubmission:
    def test_submit_returns_queued_record(self, store):
        record, created = store.submit(grid_request())
        assert created
        assert record.state == "queued"
        assert record.kind == "recovery"
        assert record.attempts == 0
        assert record.digest == grid_request().digest()

    def test_duplicate_submission_dedups_by_digest(self, store):
        first, created_first = store.submit(grid_request())
        second, created_second = store.submit(grid_request())
        assert created_first and not created_second
        assert first.digest == second.digest
        assert store.counts()["queued"] == 1

    def test_dict_and_object_submissions_share_a_digest(self, store):
        _, created_first = store.submit(grid_request())
        _, created_second = store.submit(grid_request().to_dict())
        assert created_first and not created_second

    def test_assessment_requests_are_accepted(self, store):
        request = AssessmentRequest(
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
            disruption=DisruptionSpec("gaussian", kwargs={"variance": 2.0}),
            seed=5,
        )
        record, created = store.submit(request)
        assert created and record.kind == "assessment"

    def test_resubmitting_a_failed_job_requeues_it(self, store):
        record, _ = store.submit(grid_request())
        claimed = store.claim("w0")
        store.fail(claimed.digest, "boom")
        requeued, created = store.submit(grid_request())
        assert not created
        assert requeued.state == "queued"
        assert requeued.attempts == 0
        assert requeued.error is None

    def test_resubmitting_a_done_job_returns_the_stored_result(self, store):
        store.submit(grid_request())
        claimed = store.claim("w0")
        store.complete(claimed.digest, {"kind": "recovery-result", "results": []})
        record, created = store.submit(grid_request())
        assert not created
        assert record.state == "done"
        assert record.result == {"kind": "recovery-result", "results": []}


class TestClaim:
    def test_claim_moves_oldest_queued_to_running(self, store):
        store.submit(grid_request(seed=1))
        record = store.claim("w0")
        assert record is not None
        assert record.state == "running"
        assert record.worker == "w0"
        assert record.attempts == 1
        assert store.get(record.digest).state == "running"

    def test_claim_on_empty_queue_returns_none(self, store):
        assert store.claim("w0") is None

    def test_one_job_is_claimed_exactly_once(self, store):
        store.submit(grid_request())
        first = store.claim("w0")
        second = store.claim("w1")
        assert first is not None
        assert second is None

    def test_complete_stores_the_envelope(self, store):
        store.submit(grid_request())
        record = store.claim("w0")
        store.complete(record.digest, {"answer": 42})
        done = store.get(record.digest)
        assert done.state == "done"
        assert done.result == {"answer": 42}
        assert done.finished_at is not None

    def test_fail_stores_the_error(self, store):
        store.submit(grid_request())
        record = store.claim("w0")
        store.fail(record.digest, "solver exploded")
        failed = store.get(record.digest)
        assert failed.state == "failed"
        assert failed.error == "solver exploded"

    def test_stale_worker_cannot_overwrite_a_reassigned_job(self, store):
        """A worker that lost its claim to a requeue must not land writes."""
        store.submit(grid_request())
        stale = store.claim("stale")
        store.requeue_orphans()  # e.g. a daemon restart while 'stale' still runs
        fresh = store.claim("fresh")
        assert store.complete(fresh.digest, {"winner": "fresh"}, worker="fresh")
        # the stale worker's late outcome is a no-op, both ways
        assert not store.fail(stale.digest, "late failure", worker="stale")
        assert not store.complete(stale.digest, {"winner": "stale"}, worker="stale")
        final = store.get(stale.digest)
        assert final.state == "done"
        assert final.result == {"winner": "fresh"}

    def test_complete_without_worker_still_requires_a_running_row(self, store):
        store.submit(grid_request())
        assert not store.complete(grid_request().digest(), {})  # still queued
        store.claim("w0")
        assert store.complete(grid_request().digest(), {})

    def test_upgrade_result_replaces_a_done_envelope_in_place(self, store):
        store.submit(grid_request())
        record = store.claim("w0")
        store.complete(record.digest, {"stage": 1}, worker="w0")
        first_finished = store.get(record.digest).finished_at
        assert store.upgrade_result(record.digest, {"stage": 2}, worker="w0")
        done = store.get(record.digest)
        assert done.state == "done"
        assert done.result == {"stage": 2}
        # finished_at tracks when the envelope reached its final form
        assert done.finished_at >= first_finished

    def test_upgrade_result_requires_a_done_row(self, store):
        store.submit(grid_request())
        assert not store.upgrade_result(grid_request().digest(), {"stage": 2})
        store.claim("w0")
        assert not store.upgrade_result(grid_request().digest(), {"stage": 2})
        store.fail(grid_request().digest(), "boom", worker="w0")
        assert not store.upgrade_result(grid_request().digest(), {"stage": 2})

    def test_upgrade_result_honours_the_worker_guard(self, store):
        store.submit(grid_request())
        record = store.claim("w0")
        store.complete(record.digest, {"stage": 1}, worker="w0")
        assert not store.upgrade_result(record.digest, {"stage": 2}, worker="w1")
        assert store.get(record.digest).result == {"stage": 1}
        # without a worker the guard is only on the state
        assert store.upgrade_result(record.digest, {"stage": 2})
        assert store.get(record.digest).result == {"stage": 2}

    def test_poison_job_fails_after_attempt_budget(self, store):
        store.submit(grid_request())
        for _ in range(DEFAULT_MAX_ATTEMPTS):
            record = store.claim("w0")
            assert record is not None
            assert store.requeue_orphans() == 1  # simulate a worker crash
        assert store.claim("w0") is None
        final = store.get(grid_request().digest())
        assert final.state == "failed"
        assert "gave up" in final.error


class TestCrashRecovery:
    def test_requeue_orphans_returns_running_jobs_to_the_queue(self, store):
        store.submit(grid_request(seed=1))
        store.submit(grid_request(seed=2))
        store.claim("w0")
        store.claim("w1")
        assert store.counts()["running"] == 2
        assert store.requeue_orphans() == 2
        counts = store.counts()
        assert counts["running"] == 0
        assert counts["queued"] == 2
        # attempt counts survive the requeue (that is the poison-job guard)
        assert all(record.attempts == 1 for record in store.jobs(state="queued"))

    def test_requeue_orphans_leaves_terminal_jobs_alone(self, store):
        store.submit(grid_request(seed=1))
        record = store.claim("w0")
        store.complete(record.digest, {})
        assert store.requeue_orphans() == 0
        assert store.get(record.digest).state == "done"


class TestConcurrentAccess:
    def test_racing_workers_claim_a_job_exactly_once(self, tmp_path):
        """Many threads, each with its own connection, race for few jobs."""
        path = tmp_path / "race.db"
        with JobStore(path) as seeding:
            for seed in (1, 2, 3):
                seeding.submit(grid_request(seed=seed))

        claims = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def racer(identity: int) -> None:
            with JobStore(path) as handle:
                barrier.wait()
                while True:
                    record = handle.claim(f"w{identity}")
                    if record is None:
                        break
                    with lock:
                        claims.append(record.digest)
                    handle.complete(record.digest, {})

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sorted(claims) == sorted(set(claims))  # no digest executed twice
        assert len(claims) == 3
        with JobStore(path) as verify:
            assert verify.counts()["done"] == 3

    def test_racing_duplicate_submissions_create_one_row(self, tmp_path):
        path = tmp_path / "dupes.db"
        JobStore(path).close()
        created_flags = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def submitter() -> None:
            with JobStore(path) as handle:
                barrier.wait()
                _, created = handle.submit(grid_request(seed=9))
                with lock:
                    created_flags.append(created)

        threads = [threading.Thread(target=submitter) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert created_flags.count(True) == 1
        with JobStore(path) as verify:
            assert sum(verify.counts().values()) == 1


class TestIntrospection:
    def test_counts_cover_every_state(self, store):
        assert store.counts() == {"queued": 0, "running": 0, "done": 0, "failed": 0}
        store.submit(grid_request())
        assert store.counts()["queued"] == 1

    def test_jobs_filters_by_state_and_rejects_unknown(self, store):
        store.submit(grid_request())
        assert len(store.jobs(state="queued")) == 1
        assert store.jobs(state="done") == []
        with pytest.raises(ValueError, match="unknown job state"):
            store.jobs(state="bogus")

    def test_solve_latencies_reflect_completed_jobs(self, store):
        store.submit(grid_request())
        record = store.claim("w0")
        store.complete(record.digest, {})
        latencies = store.solve_latencies()
        assert len(latencies) == 1
        assert latencies[0] >= 0.0

    def test_worker_stats_totals_sum_across_workers(self, store):
        store.record_worker_stats("w0", {"jobs_done": 2, "lp_solves": 5.0})
        store.record_worker_stats("w1", {"jobs_done": 3, "lp_solves": 1.5})
        store.record_worker_stats("w1", {"jobs_done": 4, "lp_solves": 2.0})  # refresh
        totals = store.worker_stats_totals()
        assert totals["jobs_done"] == 6
        assert totals["lp_solves"] == 7.0

    def test_record_to_dict_includes_result_once_done(self, store):
        store.submit(grid_request())
        record = store.claim("w0")
        store.complete(record.digest, {"x": 1})
        payload = store.get(record.digest).to_dict()
        assert payload["state"] == "done"
        assert payload["result"] == {"x": 1}
        assert json.dumps(payload)  # JSON-serialisable wire shape
        trimmed = store.get(record.digest).to_dict(include_request=False)
        assert "request" not in trimmed


class TestBatchedClaims:
    def test_claim_batch_claims_up_to_the_limit_in_fifo_order(self, store):
        digests = [store.submit(grid_request(seed=seed))[0].digest for seed in (1, 2, 3, 4)]
        batch = store.claim_batch("w0", limit=3)
        assert [record.digest for record in batch] == digests[:3]
        assert all(record.state == "running" for record in batch)
        assert all(record.worker == "w0" for record in batch)
        assert all(record.attempts == 1 for record in batch)
        assert store.counts() == {"queued": 1, "running": 3, "done": 0, "failed": 0}

    def test_claim_batch_on_empty_queue_returns_empty_list(self, store):
        assert store.claim_batch("w0", limit=8) == []

    def test_claim_batch_rejects_nonpositive_limit(self, store):
        with pytest.raises(ValueError, match="limit"):
            store.claim_batch("w0", limit=0)

    def test_single_claim_delegates_to_batch_of_one(self, store):
        store.submit(grid_request(seed=1))
        store.submit(grid_request(seed=2))
        record = store.claim("w0")
        assert record is not None
        assert store.counts()["running"] == 1

    def test_claim_holder_guard_holds_for_every_job_in_a_batch(self, store):
        """A stale worker must not land outcomes on any reassigned batch job."""
        for seed in (1, 2, 3):
            store.submit(grid_request(seed=seed))
        stale_batch = store.claim_batch("stale", limit=3)
        store.requeue_orphans()  # the whole batch is reassigned
        fresh_batch = store.claim_batch("fresh", limit=3)
        assert len(fresh_batch) == 3
        for record in fresh_batch:
            assert store.complete(record.digest, {"winner": "fresh"}, worker="fresh")
        for record in stale_batch:
            assert not store.complete(record.digest, {"winner": "stale"}, worker="stale")
            assert not store.fail(record.digest, "late", worker="stale")
            assert store.get(record.digest).result == {"winner": "fresh"}

    def test_claim_batch_skips_attempt_exhausted_jobs(self, store):
        store.submit(grid_request(seed=1))
        for _ in range(DEFAULT_MAX_ATTEMPTS):
            assert store.claim_batch("w0", limit=4)
            store.requeue_orphans()
        assert store.claim_batch("w0", limit=4) == []
        assert store.get(grid_request(seed=1).digest()).state == "failed"

    def test_threaded_batch_claimers_never_double_claim(self, tmp_path):
        """Racing batched claimers partition the queue without overlap."""
        path = tmp_path / "race.db"
        with JobStore(path) as seeding:
            for seed in range(12):
                seeding.submit(grid_request(seed=seed + 1))

        claims = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def racer(identity: int) -> None:
            with JobStore(path) as handle:
                barrier.wait()
                while True:
                    batch = handle.claim_batch(f"w{identity}", limit=3)
                    if not batch:
                        break
                    with lock:
                        claims.extend(record.digest for record in batch)
                    for record in batch:
                        handle.complete(record.digest, {}, worker=f"w{identity}")

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sorted(claims) == sorted(set(claims))  # no digest claimed twice
        assert len(claims) == 12
        with JobStore(path) as verify:
            assert verify.counts()["done"] == 12

    def test_requeue_orphans_recovers_a_mid_batch_crash(self, store):
        """A worker that dies after claiming a batch loses the whole batch."""
        for seed in (1, 2, 3):
            store.submit(grid_request(seed=seed))
        batch = store.claim_batch("doomed", limit=3)
        store.complete(batch[0].digest, {}, worker="doomed")  # one landed, then crash
        assert store.requeue_orphans() == 2
        counts = store.counts()
        assert counts == {"queued": 2, "running": 0, "done": 1, "failed": 0}
        # the requeued jobs keep their attempt count (poison-job budget)
        assert all(record.attempts == 1 for record in store.jobs(state="queued"))
        recovered = store.claim_batch("rescue", limit=4)
        assert {record.digest for record in recovered} == {r.digest for r in batch[1:]}


class TestSubmitMany:
    def test_submit_many_queues_every_new_request(self, store):
        requests = [grid_request(seed=seed) for seed in (1, 2, 3)]
        results = store.submit_many(requests)
        assert [created for _, created in results] == [True, True, True]
        assert [record.digest for record, _ in results] == [r.digest() for r in requests]
        assert store.counts()["queued"] == 3

    def test_submit_many_dedups_against_existing_rows(self, store):
        store.submit(grid_request(seed=1))
        results = store.submit_many([grid_request(seed=1), grid_request(seed=2)])
        assert [created for _, created in results] == [False, True]
        assert store.counts()["queued"] == 2

    def test_submit_many_dedups_repeats_within_one_batch(self, store):
        results = store.submit_many([grid_request(seed=1), grid_request(seed=1)])
        assert [created for _, created in results] == [True, False]
        assert store.counts()["queued"] == 1

    def test_submit_many_requeues_failed_rows(self, store):
        store.submit(grid_request(seed=1))
        record = store.claim("w0")
        store.fail(record.digest, "boom", worker="w0")
        results = store.submit_many([grid_request(seed=1)])
        assert [created for _, created in results] == [False]
        requeued = store.get(record.digest)
        assert requeued.state == "queued"
        assert requeued.error is None

    def test_submit_many_accepts_dict_payloads(self, store):
        results = store.submit_many([grid_request(seed=7).to_dict()])
        assert results[0][1] is True
        assert results[0][0].kind == "recovery"


class TestTopologySidecar:
    def test_save_and_load_round_trip(self, store):
        assert store.save_topology("abc", b"blob-a")
        assert store.save_topology("def", b"blob-b")
        loaded = store.load_topologies()
        assert loaded == {"abc": b"blob-a", "def": b"blob-b"}
        assert store.topology_digests() == ["abc", "def"]

    def test_rows_are_write_once(self, store):
        assert store.save_topology("abc", b"first")
        assert not store.save_topology("abc", b"second")
        assert store.load_topologies()["abc"] == b"first"

    def test_load_topologies_excludes_known_digests(self, store):
        store.save_topology("abc", b"blob-a")
        store.save_topology("def", b"blob-b")
        assert store.load_topologies(exclude=["abc"]) == {"def": b"blob-b"}
        assert store.load_topologies(exclude=["abc", "def"]) == {}


class TestMigration:
    def _create_v1_database(self, path) -> None:
        """A version-1 store as PR 5 shipped it: jobs + worker_stats only."""
        conn = sqlite3.connect(path)
        conn.execute(
            """
            CREATE TABLE jobs (
                digest      TEXT PRIMARY KEY,
                kind        TEXT NOT NULL,
                request     TEXT NOT NULL,
                state       TEXT NOT NULL
                            CHECK (state IN ('queued', 'running', 'done', 'failed')),
                result      TEXT,
                error       TEXT,
                attempts    INTEGER NOT NULL DEFAULT 0,
                worker      TEXT,
                created_at  REAL NOT NULL,
                started_at  REAL,
                finished_at REAL
            )
            """
        )
        conn.execute("CREATE INDEX jobs_state_created ON jobs (state, created_at)")
        conn.execute(
            """
            CREATE TABLE worker_stats (
                worker     TEXT PRIMARY KEY,
                updated_at REAL NOT NULL,
                counters   TEXT NOT NULL
            )
            """
        )
        conn.execute(
            "INSERT INTO jobs (digest, kind, request, state, created_at) "
            "VALUES ('keepme', 'recovery', '{}', 'queued', 1.0)"
        )
        conn.execute("PRAGMA user_version=1")
        conn.commit()
        conn.close()

    def test_v1_database_is_upgraded_in_place(self, tmp_path):
        path = tmp_path / "v1.db"
        self._create_v1_database(path)
        with JobStore(path) as upgraded:
            assert upgraded.schema_version == SCHEMA_VERSION
            # the new sidecar table exists and works ...
            assert upgraded.save_topology("abc", b"blob")
            assert upgraded.topology_digests() == ["abc"]
            # ... and version-1 data survived the migration
            assert upgraded.get("keepme").state == "queued"

    def _create_v2_database(self, path) -> None:
        """A version-2 store as PR 6 left it: v1 plus the topology sidecar."""
        self._create_v1_database(path)
        conn = sqlite3.connect(path)
        conn.execute(
            """
            CREATE TABLE topology_cache (
                digest     TEXT PRIMARY KEY,
                payload    BLOB NOT NULL,
                created_at REAL NOT NULL
            )
            """
        )
        conn.execute(
            "INSERT INTO jobs (digest, kind, request, state, result, attempts, "
            "worker, created_at, started_at, finished_at) "
            "VALUES ('olddone', 'recovery', '{}', 'done', '{}', 1, 'w1', 1.0, 2.0, 5.0)"
        )
        conn.execute("PRAGMA user_version=2")
        conn.commit()
        conn.close()

    def test_v2_database_gains_backfilled_first_completion(self, tmp_path):
        """Migration to v3: ``first_finished_at`` appears, backfilled from
        ``finished_at`` so pre-split done rows keep their histogram
        contribution unchanged."""
        path = tmp_path / "v2.db"
        self._create_v2_database(path)
        with JobStore(path) as upgraded:
            assert upgraded.schema_version == SCHEMA_VERSION
            done = upgraded.get("olddone")
            assert done.first_finished_at == done.finished_at == 5.0
            assert upgraded.get("keepme").first_finished_at is None
            assert upgraded.solve_latencies() == [3.0]  # 5.0 - 2.0

    def _create_v3_database(self, path) -> None:
        """A version-3 store as PR 7 left it: v2 plus first_finished_at."""
        self._create_v2_database(path)
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE jobs ADD COLUMN first_finished_at REAL")
        conn.execute(
            "UPDATE jobs SET first_finished_at = finished_at "
            "WHERE state = 'done' AND finished_at IS NOT NULL"
        )
        conn.execute("PRAGMA user_version=3")
        conn.commit()
        conn.close()

    def test_v3_database_gains_the_telemetry_surface(self, tmp_path):
        """Migration to v4: ``trace_id``/``serialize_seconds`` columns and
        the ``trace_spans`` sidecar appear; pre-v4 rows read back with no
        trace id and keep contributing to the stage histograms."""
        path = tmp_path / "v3.db"
        self._create_v3_database(path)
        with JobStore(path) as upgraded:
            assert upgraded.schema_version == SCHEMA_VERSION
            # old rows carry no trace id, but the field is present
            done = upgraded.get("olddone")
            assert done.trace_id is None
            assert done.to_dict()["trace_id"] is None
            # their stage samples survive: queue wait 1.0, served 4.0,
            # serialize unknown (NULL) so it contributes no sample
            stages = upgraded.stage_latency_samples()
            assert stages["queue_wait"] == [1.0]  # 2.0 - 1.0
            assert stages["served"] == [4.0]  # 5.0 - 1.0
            assert stages["serialize"] == []
            # the span sidecar works on the upgraded store ...
            tree = {"trace_id": "t-migrated-001", "pid": 9, "spans": [], "dropped_spans": 0}
            upgraded.save_spans("olddone", "worker", tree, trace_id="t-migrated-001")
            assert upgraded.load_spans("olddone") == {"worker": tree}
            # ... and new submissions stamp trace ids
            record, created = upgraded.submit(
                grid_request(seed=99), trace_id="t-fresh-000001"
            )
            assert created and record.trace_id == "t-fresh-000001"
            # v1/v2 survivors are still intact after two more migrations
            assert upgraded.get("keepme").state == "queued"


class TestPoisonSweepWrites:
    """Satellite-2 regression: the sweep must not write when nothing matches."""

    def test_claim_poll_without_exhausted_rows_takes_no_write(self, store):
        store.submit(grid_request())
        store.claim("w1")  # the queue is now empty, nothing exhausted
        before = store._conn.total_changes
        assert store.claim("w2") is None
        assert store.claim_batch("w2", limit=8) == []
        assert store.sweep_exhausted() == 0
        assert store._conn.total_changes == before

    def test_sweep_writes_only_when_a_budget_is_spent(self, store):
        record, _ = store.submit(grid_request())
        for _ in range(DEFAULT_MAX_ATTEMPTS):
            store.claim("w1")
            store.requeue_orphans()
        assert store.sweep_exhausted() == 1
        assert store.get(record.digest).state == "failed"
        # a second sweep finds nothing and writes nothing
        before = store._conn.total_changes
        assert store.sweep_exhausted() == 0
        assert store._conn.total_changes == before


class TestWorkerBeacons:
    def test_worker_ids_lists_every_stats_row(self, store):
        assert store.worker_ids() == []
        store.record_worker_stats("w1", {"jobs_done": 0})
        store.record_worker_stats("w0", {"jobs_done": 0})
        assert store.worker_ids() == ["w0", "w1"]
