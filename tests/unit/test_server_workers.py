"""Unit tests of the worker loop and the session cache-size environment knob."""

import json
import threading
import time

import pytest

from repro.api.requests import (
    AssessmentRequest,
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
)
from repro.api.service import (
    DEFAULT_TOPOLOGY_CACHE_SIZE,
    RecoveryService,
    TOPOLOGY_CACHE_ENV_VAR,
    default_topology_cache_size,
)
from repro.server.store import JobStore
from repro.server.workers import WorkerFleet, worker_loop


def grid_request(seed: int = 1) -> RecoveryRequest:
    return RecoveryRequest(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(num_pairs=1, flow_per_pair=5.0),
        algorithms=("ISP",),
        seed=seed,
    )


class TestWorkerLoop:
    def test_drain_mode_executes_the_queue_and_stores_envelopes(self, tmp_path):
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            for seed in (1, 2):
                store.submit(grid_request(seed=seed))
            store.submit(
                AssessmentRequest(
                    topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
                    disruption=DisruptionSpec("gaussian", kwargs={"variance": 2.0}),
                    seed=3,
                )
            )
        handled = worker_loop(str(db), "w0", max_jobs=10)
        assert handled == 3
        with JobStore(db) as store:
            assert store.counts() == {"queued": 0, "running": 0, "done": 3, "failed": 0}
            solve = store.get(grid_request(seed=1).digest())
            assert solve.result["kind"] == "recovery-result"
            assert solve.result["results"][0]["algorithm"] == "ISP"
            assessments = [
                record for record in store.jobs() if record.kind == "assessment"
            ]
            assert assessments[0].result["kind"] == "assessment-result"

    def test_worker_counters_reach_the_store(self, tmp_path):
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            # the same deterministic topology twice: second solve hits the LRU
            store.submit(grid_request(seed=1))
            store.submit(grid_request(seed=2))
        worker_loop(str(db), "w0", max_jobs=10)
        with JobStore(db) as store:
            totals = store.worker_stats_totals()
        assert totals["jobs_done"] == 2
        assert totals["jobs_failed"] == 0
        assert totals["topology_cache_misses"] == 1
        assert totals["topology_cache_hits"] == 1
        assert totals["lp_solves"] > 0
        assert totals["busy_seconds"] > 0

    def test_portfolio_worker_upgrades_the_envelope_and_counts_stages(self, tmp_path):
        db = tmp_path / "jobs.db"
        staged = RecoveryRequest(
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
            disruption=DisruptionSpec("complete"),
            demand=DemandSpec(num_pairs=1, flow_per_pair=5.0),
            algorithms=("ISP", "OPT"),
            seed=4,
            opt_time_limit=60.0,
        )
        with JobStore(db) as store:
            store.submit(staged)
            store.submit(grid_request(seed=5))  # ISP-only: nothing to race
        handled = worker_loop(str(db), "w0", max_jobs=10, portfolio=True)
        assert handled == 2
        with JobStore(db) as store:
            done = store.get(staged.digest())
            assert done.state == "done"
            marker = done.result["portfolio"]
            assert marker["stage"] == "exact"
            assert marker["pending"] == []
            assert marker["upgraded"] is True
            assert [run["algorithm"] for run in done.result["results"]] == ["ISP", "OPT"]
            assert done.result["results"][1]["plan"]["status"] == "optimal"
            # the unstaged job carries no portfolio annotation
            assert "portfolio" not in store.get(grid_request(seed=5).digest()).result
            totals = store.worker_stats_totals()
        assert totals["jobs_done"] == 2
        assert totals["portfolio_stage1"] == 1
        assert totals["portfolio_upgrades"] == 1
        assert totals["portfolio_exact"] == 1
        assert totals["portfolio_proven"] == 1
        assert totals["incumbent_seeds"] >= 1

    def test_unexecutable_job_is_failed_not_crashed(self, tmp_path):
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            record, _ = store.submit(grid_request(seed=1))
            # corrupt the stored payload the way a schema drift would:
            # parsing fails at execution time, not at claim time
            store._conn.execute(
                "UPDATE jobs SET request = ? WHERE digest = ?",
                (json.dumps({"kind": "recovery"}), record.digest),
            )
        handled = worker_loop(str(db), "w0", max_jobs=10)
        assert handled == 1
        with JobStore(db) as store:
            failed = store.get(record.digest)
            assert failed.state == "failed"
            assert "topology" in failed.error  # the KeyError's traceback
            assert store.worker_stats_totals()["jobs_failed"] == 1

    def test_stop_event_ends_the_loop(self, tmp_path):
        db = tmp_path / "jobs.db"
        JobStore(db).close()

        class Flag:
            def __init__(self):
                self.value = False

            def set(self):
                self.value = True

            def is_set(self):
                return self.value

        flag = Flag()
        timer = threading.Timer(0.3, flag.set)
        timer.start()
        started = time.perf_counter()
        handled = worker_loop(str(db), "w0", poll_interval=0.01, stop=flag)
        timer.cancel()
        assert handled == 0
        assert time.perf_counter() - started < 5.0


class TestWorkerFleet:
    def test_fleet_validates_worker_count(self, tmp_path):
        with pytest.raises(ValueError, match="at least one worker"):
            WorkerFleet(str(tmp_path / "jobs.db"), workers=0)

    def test_fleet_drain_before_start_is_a_noop(self, tmp_path):
        fleet = WorkerFleet(str(tmp_path / "jobs.db"), workers=1)
        assert fleet.alive() == 0
        fleet.drain(timeout=1.0)

    def test_double_start_is_rejected(self, tmp_path):
        db = tmp_path / "jobs.db"
        JobStore(db).close()
        fleet = WorkerFleet(str(db), workers=1, poll_interval=0.05)
        fleet.start()
        try:
            assert fleet.alive() == 1
            assert len(fleet.pids()) == 1
            with pytest.raises(RuntimeError, match="already started"):
                fleet.start()
        finally:
            fleet.drain(timeout=15.0)
        assert fleet.alive() == 0


class TestTopologyCacheEnv:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(TOPOLOGY_CACHE_ENV_VAR, raising=False)
        assert default_topology_cache_size() == DEFAULT_TOPOLOGY_CACHE_SIZE

    def test_env_overrides_the_default(self, monkeypatch):
        monkeypatch.setenv(TOPOLOGY_CACHE_ENV_VAR, "3")
        assert default_topology_cache_size() == 3
        service = RecoveryService()
        assert service.cache_info()["topology_cache_capacity"] == 3

    def test_constructor_argument_beats_the_env(self, monkeypatch):
        monkeypatch.setenv(TOPOLOGY_CACHE_ENV_VAR, "3")
        service = RecoveryService(topology_cache_size=5)
        assert service.cache_info()["topology_cache_capacity"] == 5

    def test_zero_disables_caching_but_still_serves(self, monkeypatch):
        monkeypatch.setenv(TOPOLOGY_CACHE_ENV_VAR, "0")
        service = RecoveryService()
        result = service.solve(grid_request(seed=1))
        assert result.results[0].metrics["satisfied_pct"] == 100.0
        info = service.cache_info()
        assert info["topology_cache_size"] == 0
        assert info["topology_cache_misses"] == 1

    @pytest.mark.parametrize("raw", ["banana", "-2", "1.5"])
    def test_malformed_env_values_fail_loudly(self, monkeypatch, raw):
        monkeypatch.setenv(TOPOLOGY_CACHE_ENV_VAR, raw)
        with pytest.raises(ValueError, match=TOPOLOGY_CACHE_ENV_VAR):
            default_topology_cache_size()

    def test_negative_constructor_argument_is_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RecoveryService(topology_cache_size=-1)


class TestEventDrivenDispatch:
    def test_stop_event_wait_ends_an_idle_sleep_immediately(self, tmp_path):
        """SIGTERM mid-sleep must not wait out the poll interval."""
        db = tmp_path / "jobs.db"
        JobStore(db).close()
        stop = threading.Event()
        timer = threading.Timer(0.3, stop.set)
        timer.start()
        started = time.perf_counter()
        # a 30s poll interval: only the event's wait() can end this promptly
        handled = worker_loop(str(db), "w0", poll_interval=30.0, stop=stop)
        timer.cancel()
        assert handled == 0
        assert time.perf_counter() - started < 5.0

    def test_wakeup_channel_wakes_an_idle_worker(self, tmp_path):
        import multiprocessing as mp

        from repro.server.workers import WakeupNotifier, WakeupReceiver

        db = tmp_path / "jobs.db"
        JobStore(db).close()
        reader, writer = mp.get_context("spawn").Pipe(duplex=False)
        notifier = WakeupNotifier()
        notifier.attach(writer)
        stop = threading.Event()
        handled_box = []

        def run() -> None:
            handled_box.append(
                worker_loop(
                    str(db),
                    "w0",
                    poll_interval=30.0,
                    stop=stop,
                    wakeup=WakeupReceiver(reader),
                )
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        time.sleep(0.5)  # the worker is now parked in its 30s idle wait
        with JobStore(db) as store:
            store.submit(grid_request(seed=1))
        notifier.notify()
        deadline = time.monotonic() + 15
        with JobStore(db) as store:
            while time.monotonic() < deadline:
                if store.counts()["done"] == 1:
                    break
                time.sleep(0.05)
            assert store.counts()["done"] == 1, "nudge did not wake the worker"
        stop.set()
        notifier.notify()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert handled_box == [1]
        notifier.close()

    def test_batched_claims_drain_a_burst_in_few_round_trips(self, tmp_path):
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            for seed in range(5):
                store.submit(grid_request(seed=seed + 1))
        handled = worker_loop(str(db), "w0", max_jobs=10, claim_batch=4)
        assert handled == 5
        with JobStore(db) as store:
            totals = store.worker_stats_totals()
            assert store.counts()["done"] == 5
        assert totals["claim_batch_jobs"] == 5
        assert totals["claim_batches"] == 2  # 4 + 1, not 5 single claims


class TestWarmTopologySharing:
    def test_second_worker_starts_warm_from_the_sidecar(self, tmp_path):
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            store.submit(grid_request(seed=1))
        worker_loop(str(db), "w0", max_jobs=1)
        with JobStore(db) as store:
            assert store.topology_digests()  # w0 persisted its pristine build
            totals = store.worker_stats_totals()
            assert totals["warm_topology_saves"] >= 1
            assert totals["topology_cache_misses"] == 1
            # a different seed, same grid topology: w1 must find it pre-built
            store.submit(grid_request(seed=2))
        worker_loop(str(db), "w1", max_jobs=1)
        with JobStore(db) as store:
            totals = store.worker_stats_totals()
        assert totals["warm_topology_loads"] >= 1
        assert totals["topology_cache_misses"] == 1  # w1 added no cold build
        assert totals["topology_cache_hits"] >= 1

    def test_corrupt_sidecar_rows_are_ignored(self, tmp_path):
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            store.save_topology("bogus", b"not-a-pickle")
            store.submit(grid_request(seed=1))
        handled = worker_loop(str(db), "w0", max_jobs=1)
        assert handled == 1
        with JobStore(db) as store:
            assert store.counts()["done"] == 1


class TestFleetWakeup:
    def test_fleet_validates_claim_batch(self, tmp_path):
        with pytest.raises(ValueError, match="claim batch"):
            WorkerFleet(str(tmp_path / "jobs.db"), workers=1, claim_batch=0)

    def test_notify_wakes_the_fleet_and_drain_interrupts_the_idle_wait(self, tmp_path):
        """With a 30s poll interval only the wakeup pipe can move jobs."""
        db = tmp_path / "jobs.db"
        JobStore(db).close()
        fleet = WorkerFleet(str(db), workers=1, poll_interval=30.0)
        fleet.start()
        try:
            assert len(fleet.worker_ids()) == 1
            time.sleep(0.5)
            with JobStore(db) as store:
                store.submit(grid_request(seed=1))
            fleet.notify()
            deadline = time.monotonic() + 60
            with JobStore(db) as store:
                while time.monotonic() < deadline:
                    if store.counts()["done"] == 1:
                        break
                    time.sleep(0.1)
                assert store.counts()["done"] == 1, "notify did not reach the worker"
        finally:
            # drain must interrupt the 30s idle wait, not sit it out
            started = time.perf_counter()
            fleet.drain(timeout=20.0)
            assert time.perf_counter() - started < 20.0
        assert fleet.alive() == 0
        assert fleet.worker_ids() == []
