"""Tests for bubble detection and pruning (Section IV-F, Theorem 3)."""

import pytest

from repro.core.prune import find_bubble, find_prunable_routing
from repro.network.demand import DemandGraph
from repro.topologies.grids import grid_topology


class TestFindBubble:
    def test_whole_graph_is_bubble_for_single_demand(self, diamond_supply):
        demand = DemandGraph()
        demand.add("s", "t", 5.0)
        working = diamond_supply.working_graph()
        bubble = find_bubble(working, demand, ("s", "t"))
        assert bubble == {"s", "t", "a", "b"}

    def test_other_endpoints_excluded(self, diamond_supply):
        demand = DemandGraph()
        demand.add("s", "t", 5.0)
        demand.add("a", "b", 1.0)
        working = diamond_supply.working_graph()
        bubble = find_bubble(working, demand, ("s", "t"))
        assert bubble == {"s", "t"}

    def test_nodes_reachable_from_other_endpoints_excluded(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "c", 5.0)
        demand.add("d", "e", 1.0)
        working = line_supply.working_graph()
        bubble = find_bubble(working, demand, ("a", "c"))
        # d and e belong to another demand; b is enclosed between a and c.
        assert "b" in bubble
        assert "d" not in bubble and "e" not in bubble

    def test_missing_endpoint_gives_trivial_bubble(self, line_supply):
        line_supply.break_node("a")
        demand = DemandGraph()
        demand.add("a", "c", 5.0)
        working = line_supply.working_graph()
        assert find_bubble(working, demand, ("a", "c")) == {"a", "c"}

    def test_bubble_cut_property(self, grid3_supply):
        # Every edge leaving the bubble must touch one of the two endpoints.
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        demand.add((0, 2), (2, 0), 5.0)
        working = grid3_supply.working_graph()
        pair = ((0, 0), (2, 2))
        bubble = find_bubble(working, demand, pair)
        for u, v in working.edges:
            inside = (u in bubble) + (v in bubble)
            if inside == 1:
                crossing = {u, v} & set(pair)
                assert len(crossing) == 1


class TestFindPrunableRouting:
    def test_simple_prune(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        working = line_supply.working_graph()
        action = find_prunable_routing(working, demand, ("a", "e"))
        assert action is not None
        assert action.amount == pytest.approx(5.0)
        assert action.routes[0][0] == ("a", "b", "c", "d", "e")

    def test_prune_caps_at_capacity(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 25.0)
        working = line_supply.working_graph()
        action = find_prunable_routing(working, demand, ("a", "e"))
        assert action.amount == pytest.approx(10.0)

    def test_prune_uses_both_branches(self, diamond_supply):
        demand = DemandGraph()
        demand.add("s", "t", 12.0)
        working = diamond_supply.working_graph()
        action = find_prunable_routing(working, demand, ("s", "t"))
        assert action.amount == pytest.approx(12.0)
        assert len(action.routes) == 2

    def test_no_working_path_returns_none(self, line_supply):
        line_supply.break_node("c")
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        working = line_supply.working_graph()
        assert find_prunable_routing(working, demand, ("a", "e")) is None

    def test_bubble_restriction_blocks_contested_paths(self, line_supply):
        # The only a-e path passes through c, which is another demand's endpoint,
        # so with bubbles enabled nothing can be pruned for (a, e).
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        demand.add("c", "b", 1.0)
        working = line_supply.working_graph()
        assert find_prunable_routing(working, demand, ("a", "e")) is None
        # Without the bubble requirement the prune goes through.
        action = find_prunable_routing(working, demand, ("a", "e"), require_bubble=False)
        assert action is not None

    def test_zero_demand_returns_none(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        working = line_supply.working_graph()
        assert find_prunable_routing(working, demand, ("a", "c")) is None

    def test_edges_used_property(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "c", 5.0)
        working = line_supply.working_graph()
        action = find_prunable_routing(working, demand, ("a", "c"))
        assert action.edges_used == {("a", "b"), ("b", "c")}

    def test_prune_respects_residual_capacity(self, line_supply):
        line_supply.consume_capacity("b", "c", 8.0)
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        working = line_supply.working_graph()
        action = find_prunable_routing(working, demand, ("a", "e"))
        assert action.amount == pytest.approx(2.0)
