"""Unit tests of the trace/span primitives (``repro.obs.trace``).

The two properties everything else leans on: spans are **free when no
trace is active** (a single contextvar read, yielding ``None``), and a
trace is **bounded** (the span cap keeps a runaway loop from growing an
unbounded tree).
"""

import json
import time

from repro.obs.trace import (
    MAX_SPANS_PER_TRACE,
    TRACE_HEADER,
    current_trace,
    current_trace_id,
    new_trace_id,
    normalize_trace_id,
    record_timed,
    render_trace,
    span,
    trace_context,
)


class TestIds:
    def test_new_trace_id_is_urlsafe_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 32
        assert normalize_trace_id(trace_id) == trace_id

    def test_normalize_accepts_reasonable_inbound_ids(self):
        assert normalize_trace_id("abc123def456") == "abc123def456"
        assert normalize_trace_id("A-Z_09" + "x" * 10) == "A-Z_09" + "x" * 10

    def test_normalize_rejects_garbage(self):
        assert normalize_trace_id(None) is None
        assert normalize_trace_id("") is None
        assert normalize_trace_id("short") is None  # < 8 chars
        assert normalize_trace_id("x" * 129) is None  # > 128 chars
        assert normalize_trace_id("spaces are bad!") is None
        assert normalize_trace_id("inject\r\nheader" + "x" * 10) is None

    def test_header_name_is_stable(self):
        # clients and CI curl this literal name; changing it is a break
        assert TRACE_HEADER == "X-Repro-Trace-Id"


class TestNoActiveTrace:
    def test_span_is_a_noop_without_a_trace(self):
        assert current_trace() is None
        with span("anything", attr=1) as opened:
            assert opened is None
        assert current_trace() is None

    def test_record_timed_is_a_noop_without_a_trace(self):
        record_timed("solver.solve", 0.5)  # must not raise
        assert current_trace_id() is None


class TestTraceContext:
    def test_mints_an_id_when_none_given(self):
        with trace_context() as trace:
            assert trace.trace_id
            assert current_trace_id() == trace.trace_id
        assert current_trace_id() is None

    def test_honours_a_given_id(self):
        with trace_context("e2e-abcdef123456") as trace:
            assert trace.trace_id == "e2e-abcdef123456"

    def test_nested_spans_build_a_tree(self):
        with trace_context() as trace:
            with span("outer", kind="demo"):
                with span("inner"):
                    time.sleep(0.001)
        assert [root.name for root in trace.roots] == ["outer"]
        outer = trace.roots[0]
        assert [child.name for child in outer.children] == ["inner"]
        assert outer.wall_seconds >= outer.children[0].wall_seconds >= 0.001
        assert outer.attrs == {"kind": "demo"}

    def test_trace_is_readable_after_exit(self):
        with trace_context() as trace:
            with span("work"):
                pass
        payload = trace.to_payload()
        assert payload["trace_id"] == trace.trace_id
        assert [item["name"] for item in payload["spans"]] == ["work"]
        json.dumps(payload)  # the payload must be JSON-serialisable

    def test_record_timed_attaches_a_completed_leaf(self):
        with trace_context() as trace:
            with span("parent"):
                record_timed("hook", 0.25, cpu_seconds=0.1, detail="x")
        parent = trace.roots[0]
        assert [child.name for child in parent.children] == ["hook"]
        hook = parent.children[0]
        assert hook.wall_seconds == 0.25
        assert hook.cpu_seconds == 0.1
        assert hook.attrs == {"detail": "x"}

    def test_exceptions_still_close_spans(self):
        try:
            with trace_context() as trace:
                with span("failing"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert trace.roots[0].wall_seconds is not None  # finished, not open

    def test_span_cap_bounds_the_tree(self):
        with trace_context() as trace:
            for _ in range(MAX_SPANS_PER_TRACE + 50):
                with span("tick"):
                    pass
        assert trace.span_count == MAX_SPANS_PER_TRACE
        assert trace.dropped_spans == 50
        assert trace.to_payload()["dropped_spans"] == 50

    def test_contexts_do_not_leak_across_nesting(self):
        with trace_context("outer-trace-id-1") as outer:
            with trace_context("inner-trace-id-2") as inner:
                assert current_trace_id() == "inner-trace-id-2"
                with span("inner-work"):
                    pass
            assert current_trace_id() == "outer-trace-id-1"
        assert [root.name for root in inner.roots] == ["inner-work"]
        assert outer.roots == []


class TestRenderTrace:
    def _doc(self):
        with trace_context("render-trace-42") as trace:
            with span("http.request", method="POST"):
                record_timed("http.read", 0.001)
        return {
            "digest": "d" * 64,
            "trace_id": trace.trace_id,
            "state": "done",
            "sources": {"frontend": trace.to_payload()},
        }

    def test_renders_a_flame_style_tree(self):
        text = render_trace(self._doc())
        assert "render-trace-42" in text
        assert "frontend" in text
        assert "http.request" in text
        assert "method=POST" in text
        # the child is indented under its parent
        lines = text.splitlines()
        parent = next(line for line in lines if "http.request" in line)
        child = next(line for line in lines if "http.read" in line)
        assert len(child) - len(child.lstrip()) > len(parent) - len(parent.lstrip())

    def test_renders_empty_sources_gracefully(self):
        text = render_trace(
            {"digest": "d" * 64, "trace_id": None, "state": "queued", "sources": {}}
        )
        assert "no spans recorded" in text
