"""Tests for the split-demand selection (Decision 1 of Section IV-C)."""

import pytest

from repro.core.centrality import demand_based_centrality
from repro.core.split import select_demand_to_split
from repro.network.demand import DemandGraph
from repro.topologies.grids import star_topology


class TestSelectDemandToSplit:
    def test_picks_contributing_demand(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        centrality = demand_based_centrality(line_supply, demand)
        choice = select_demand_to_split(centrality, demand, "c")
        assert choice is not None
        assert choice.pair == ("a", "e")
        assert choice.routable_through_node == pytest.approx(5.0)

    def test_node_that_is_endpoint_is_skipped(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "c", 5.0)
        centrality = demand_based_centrality(line_supply, demand)
        # c is an endpoint of the only demand: nothing can be split on it.
        assert select_demand_to_split(centrality, demand, "c") is None

    def test_prefers_demand_most_dependent_on_node(self):
        supply = star_topology(4, capacity=10.0)
        # Demand (1, 2) can only use the hub; give it less max-flow slack than (3, 4).
        demand = DemandGraph()
        demand.add(1, 2, 8.0)
        demand.add(3, 4, 1.0)
        centrality = demand_based_centrality(supply, demand)
        choice = select_demand_to_split(centrality, demand, 0)
        # Both demands depend entirely on the hub; the score is routable/f*,
        # which is 8/10 for (1,2) and 1/10 for (3,4).
        assert choice.pair == (1, 2)
        assert choice.score == pytest.approx(0.8)

    def test_none_when_no_contribution(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "b", 5.0)
        centrality = demand_based_centrality(line_supply, demand)
        assert select_demand_to_split(centrality, demand, "e") is None

    def test_zero_demand_ignored(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        centrality = demand_based_centrality(line_supply, demand)
        # Empty the demand after computing the centrality snapshot.
        demand.reduce("a", "e", 5.0)
        assert select_demand_to_split(centrality, demand, "c") is None

    def test_requires_graph(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        centrality = demand_based_centrality(line_supply, demand)
        centrality.graph = None
        with pytest.raises(ValueError):
            select_demand_to_split(centrality, demand, "c")

    def test_score_uses_min_of_demand_and_cover(self, diamond_supply):
        demand = DemandGraph()
        demand.add("s", "t", 12.0)
        centrality = demand_based_centrality(diamond_supply, demand)
        choice = select_demand_to_split(centrality, demand, "b")
        # Through b only the narrow (capacity 4) branch contributes.
        assert choice.routable_through_node == pytest.approx(4.0)
        assert choice.max_flow == pytest.approx(14.0)
        assert choice.score == pytest.approx(4.0 / 14.0)
