"""Tests for the evaluation harness (metrics, runner, reporting, demand builder)."""

import numpy as np
import pytest

from repro.evaluation.demand_builder import far_apart_demand, random_demand
from repro.evaluation.metrics import evaluate_plan, recovered_graph
from repro.evaluation.reporting import format_table, pivot_series, rows_to_csv
from repro.evaluation.runner import compare_algorithms, run_repetitions
from repro.failures.complete import CompleteDestruction
from repro.heuristics.registry import get_algorithm
from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.topologies.bellcanada import bell_canada
from repro.topologies.grids import grid_topology


class TestEvaluatePlan:
    def test_empty_plan_on_broken_network(self, line_supply, single_demand):
        line_supply.break_all()
        plan = RecoveryPlan(algorithm="NOOP")
        evaluation = evaluate_plan(line_supply, single_demand, plan)
        assert evaluation.total_repairs == 0
        assert evaluation.satisfied_percentage == pytest.approx(0.0)
        assert evaluation.demand_loss_percentage == pytest.approx(100.0)

    def test_full_repair_plan(self, line_supply, single_demand):
        line_supply.break_all()
        plan = get_algorithm("ALL").solve(line_supply, single_demand)
        evaluation = evaluate_plan(line_supply, single_demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)
        assert evaluation.repair_cost == pytest.approx(9.0)

    def test_partial_repair_partial_satisfaction(self, diamond_supply, diamond_demand):
        diamond_supply.break_all()
        plan = RecoveryPlan(algorithm="PARTIAL")
        for node in ("s", "a", "t"):
            plan.add_node_repair(node)
        plan.add_edge_repair("s", "a")
        plan.add_edge_repair("a", "t")
        evaluation = evaluate_plan(diamond_supply, diamond_demand, plan)
        # Only the capacity-10 branch is rebuilt: 10 of 12 units fit.
        assert evaluation.satisfied_units == pytest.approx(10.0)
        assert evaluation.satisfied_percentage == pytest.approx(100.0 * 10.0 / 12.0)

    def test_recovered_graph_uses_nominal_capacity(self, line_supply):
        line_supply.consume_capacity("a", "b", 9.0)
        plan = RecoveryPlan(algorithm="X")
        graph = recovered_graph(line_supply, plan)
        assert graph.edges["a", "b"]["capacity"] == pytest.approx(10.0)

    def test_routing_violations_counted(self, line_supply, single_demand):
        line_supply.break_all()
        plan = RecoveryPlan(algorithm="BAD")
        plan.add_route(("a", "e"), ("a", "b", "c", "d", "e"), 5.0)
        evaluation = evaluate_plan(line_supply, single_demand, plan)
        assert evaluation.routing_violations > 0

    def test_as_row_keys(self, line_supply, single_demand):
        plan = RecoveryPlan(algorithm="NOOP")
        row = evaluate_plan(line_supply, single_demand, plan).as_row()
        assert set(row) == {
            "algorithm",
            "node_repairs",
            "edge_repairs",
            "total_repairs",
            "repair_cost",
            "satisfied_pct",
            "elapsed_seconds",
        }


class TestRunner:
    def test_compare_algorithms(self, grid3_supply):
        CompleteDestruction().apply(grid3_supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        evaluations = compare_algorithms(
            grid3_supply, demand, [get_algorithm("SRT"), get_algorithm("ALL")]
        )
        assert [e.algorithm for e in evaluations] == ["SRT", "ALL"]
        assert evaluations[1].total_repairs == 9 + 12

    def test_run_repetitions_averages(self):
        def factory(rng: np.random.Generator):
            supply = grid_topology(3, 3, capacity=10.0)
            CompleteDestruction().apply(supply)
            demand = random_demand(supply, 1, 5.0, seed=rng)
            return supply, demand

        rows = run_repetitions(factory, [get_algorithm("ALL")], runs=3, seed=5)
        assert len(rows) == 1
        assert rows[0].runs == 3
        assert rows[0].total_repairs == pytest.approx(21.0)
        assert rows[0].extras["broken_elements"] == pytest.approx(21.0)

    def test_run_repetitions_deterministic_with_seed(self):
        def factory(rng: np.random.Generator):
            supply = grid_topology(3, 3, capacity=10.0)
            CompleteDestruction().apply(supply)
            demand = random_demand(supply, 2, 5.0, seed=rng)
            return supply, demand

        a = run_repetitions(factory, [get_algorithm("SRT")], runs=2, seed=9)
        b = run_repetitions(factory, [get_algorithm("SRT")], runs=2, seed=9)
        assert a[0].total_repairs == b[0].total_repairs

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError):
            run_repetitions(lambda rng: None, [], runs=0)

    def test_row_as_dict(self):
        def factory(rng: np.random.Generator):
            supply = grid_topology(2, 2, capacity=10.0)
            CompleteDestruction().apply(supply)
            demand = DemandGraph()
            demand.add((0, 0), (1, 1), 2.0)
            return supply, demand

        rows = run_repetitions(factory, [get_algorithm("ALL")], runs=1, seed=1)
        row = rows[0].as_dict()
        assert row["algorithm"] == "ALL"
        assert "satisfied_pct" in row


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"algorithm": "ISP", "total_repairs": 5}, {"algorithm": "ALL", "total_repairs": 20}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "ISP" in text and "ALL" in text
        assert text.count("\n") >= 4

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]

    def test_rows_to_csv(self):
        rows = [{"x": 1, "y": 2.5}, {"x": 3, "y": 4.0}]
        csv = rows_to_csv(rows)
        assert csv.splitlines()[0] == "x,y"
        assert csv.splitlines()[1] == "1,2.5"

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_pivot_series(self):
        rows = [
            {"x": 1, "algorithm": "ISP", "value": 10},
            {"x": 2, "algorithm": "ISP", "value": 12},
            {"x": 1, "algorithm": "OPT", "value": 9},
        ]
        series = pivot_series(rows, "x", "algorithm", "value")
        assert series["ISP"] == {1: 10, 2: 12}
        assert series["OPT"] == {1: 9}


class TestDemandBuilder:
    def test_far_apart_demand_size_and_flow(self):
        supply = bell_canada()
        demand = far_apart_demand(supply, 4, 10.0, seed=1)
        assert len(demand) == 4
        assert all(pair.demand == 10.0 for pair in demand.pairs())

    def test_far_apart_pairs_respect_distance(self):
        import networkx as nx

        supply = bell_canada()
        graph = supply.full_graph()
        diameter = nx.diameter(graph)
        demand = far_apart_demand(supply, 3, 5.0, seed=2)
        for pair in demand.pairs():
            assert nx.shortest_path_length(graph, pair.source, pair.target) >= diameter / 2

    def test_far_apart_demand_deterministic(self):
        supply = bell_canada()
        a = far_apart_demand(supply, 3, 5.0, seed=7)
        b = far_apart_demand(supply, 3, 5.0, seed=7)
        assert a.as_dict() == b.as_dict()

    def test_far_apart_demand_too_many_pairs(self):
        supply = grid_topology(2, 2)
        with pytest.raises(ValueError):
            far_apart_demand(supply, 50, 1.0, seed=1)

    def test_far_apart_reuses_endpoints_when_needed(self):
        supply = grid_topology(2, 3, capacity=10.0)
        # Only three endpoint-disjoint pairs exist in a 6-node grid, so the
        # fourth pair must reuse an endpoint.
        demand = far_apart_demand(supply, 4, 1.0, seed=3, min_fraction_of_diameter=0.5)
        assert len(demand) == 4

    def test_random_demand(self):
        supply = grid_topology(3, 3)
        demand = random_demand(supply, 5, 2.0, seed=4)
        assert len(demand) == 5
        assert demand.total_demand == pytest.approx(10.0)

    def test_random_demand_rejects_tiny_graph(self):
        from repro.network.supply import SupplyGraph

        supply = SupplyGraph()
        supply.add_node("only")
        with pytest.raises(ValueError):
            random_demand(supply, 1, 1.0)

    def test_invalid_arguments(self):
        supply = grid_topology(3, 3)
        with pytest.raises(ValueError):
            far_apart_demand(supply, 0, 1.0)
        with pytest.raises(ValueError):
            far_apart_demand(supply, 1, -1.0)
