"""Tests for repro.network.paths."""

import networkx as nx
import pytest

from repro.network.paths import (
    attach_dynamic_lengths,
    dynamic_edge_length,
    path_broken_elements,
    path_capacity,
    path_edges,
    path_repair_cost,
    shortest_path_cover,
)
from repro.network.supply import SupplyGraph


class TestPathEdges:
    def test_simple_path(self):
        assert path_edges(["a", "b", "c"]) == [("a", "b"), ("b", "c")]

    def test_single_node(self):
        assert path_edges(["a"]) == []

    def test_empty(self):
        assert path_edges([]) == []


class TestPathCapacity:
    def test_bottleneck(self, diamond_supply):
        graph = diamond_supply.full_graph()
        assert path_capacity(graph, ["s", "b", "t"]) == pytest.approx(4.0)

    def test_single_node_infinite(self, diamond_supply):
        graph = diamond_supply.full_graph()
        assert path_capacity(graph, ["s"]) == float("inf")


class TestPathRepairCost:
    def test_no_broken_elements(self, line_supply):
        assert path_repair_cost(line_supply, ["a", "b", "c"]) == 0.0

    def test_counts_broken_nodes_and_edges(self, line_supply):
        line_supply.break_node("b")
        line_supply.break_edge("b", "c")
        assert path_repair_cost(line_supply, ["a", "b", "c"]) == pytest.approx(2.0)

    def test_counts_each_element_once(self, line_supply):
        line_supply.break_node("b")
        # Node b appears twice in a back-and-forth path; cost counted once.
        assert path_repair_cost(line_supply, ["a", "b", "a", "b", "c"]) == pytest.approx(1.0)

    def test_respects_heterogeneous_costs(self, line_supply):
        line_supply.set_node_repair_cost("b", 7.0)
        line_supply.break_node("b")
        assert path_repair_cost(line_supply, ["a", "b"]) == pytest.approx(7.0)


class TestPathBrokenElements:
    def test_lists_broken(self, line_supply):
        line_supply.break_node("c")
        line_supply.break_edge("a", "b")
        nodes, edges = path_broken_elements(line_supply, ["a", "b", "c", "d"])
        assert nodes == ["c"]
        assert edges == [("a", "b")]

    def test_empty_when_working(self, line_supply):
        nodes, edges = path_broken_elements(line_supply, ["a", "b", "c"])
        assert nodes == [] and edges == []


class TestDynamicEdgeLength:
    def test_working_edge_length(self, line_supply):
        # const / capacity for a fully working edge.
        assert dynamic_edge_length(line_supply, "a", "b") == pytest.approx(1.0 / 10.0)

    def test_broken_edge_adds_cost(self, line_supply):
        line_supply.break_edge("a", "b")
        assert dynamic_edge_length(line_supply, "a", "b") == pytest.approx((1.0 + 1.0) / 10.0)

    def test_broken_endpoint_adds_half_cost(self, line_supply):
        line_supply.break_node("a")
        assert dynamic_edge_length(line_supply, "a", "b") == pytest.approx((1.0 + 0.5) / 10.0)

    def test_repaired_elements_do_not_count(self, line_supply):
        line_supply.break_edge("a", "b")
        line_supply.break_node("a")
        length = dynamic_edge_length(
            line_supply, "a", "b", repaired_nodes={"a"}, repaired_edges={("a", "b")}
        )
        assert length == pytest.approx(1.0 / 10.0)

    def test_length_decreases_with_capacity(self, diamond_supply):
        diamond_supply.break_all()
        narrow = dynamic_edge_length(diamond_supply, "s", "b")
        wide = dynamic_edge_length(diamond_supply, "s", "a")
        assert wide < narrow

    def test_custom_constant(self, line_supply):
        assert dynamic_edge_length(line_supply, "a", "b", const=5.0) == pytest.approx(0.5)

    def test_attach_dynamic_lengths_annotates_all_edges(self, line_supply):
        graph = line_supply.full_graph()
        attach_dynamic_lengths(line_supply, graph)
        assert all("length" in data for _, _, data in graph.edges(data=True))


class TestShortestPathCover:
    def test_single_path_suffices(self, line_supply):
        graph = line_supply.full_graph()
        cover = shortest_path_cover(graph, "a", "e", 5.0, weight="missing")
        assert len(cover) == 1
        path, capacity = cover[0]
        assert path == ("a", "b", "c", "d", "e")
        assert capacity == pytest.approx(10.0)

    def test_multiple_paths_needed(self, diamond_supply):
        graph = diamond_supply.full_graph()
        cover = shortest_path_cover(graph, "s", "t", 12.0, weight="missing")
        assert len(cover) == 2
        assert sum(capacity for _, capacity in cover) == pytest.approx(14.0)

    def test_insufficient_capacity_returns_partial_cover(self, diamond_supply):
        graph = diamond_supply.full_graph()
        cover = shortest_path_cover(graph, "s", "t", 100.0, weight="missing")
        assert sum(capacity for _, capacity in cover) == pytest.approx(14.0)

    def test_disconnected_returns_empty(self, line_supply):
        graph = line_supply.full_graph()
        graph.remove_edge("b", "c")
        assert shortest_path_cover(graph, "a", "e", 1.0) == []

    def test_same_endpoint_returns_empty(self, line_supply):
        graph = line_supply.full_graph()
        assert shortest_path_cover(graph, "a", "a", 1.0) == []

    def test_missing_node_returns_empty(self, line_supply):
        graph = line_supply.full_graph()
        assert shortest_path_cover(graph, "a", "zzz", 1.0) == []

    def test_max_paths_cap(self, diamond_supply):
        graph = diamond_supply.full_graph()
        cover = shortest_path_cover(graph, "s", "t", 100.0, max_paths=1)
        assert len(cover) == 1

    def test_respects_weight_attribute(self, diamond_supply):
        graph = diamond_supply.full_graph()
        # Make the low-capacity path much "shorter" so it is picked first.
        for u, v in graph.edges:
            graph.edges[u, v]["length"] = 1.0
        graph.edges["s", "b"]["length"] = 0.01
        graph.edges["b", "t"]["length"] = 0.01
        cover = shortest_path_cover(graph, "s", "t", 2.0, weight="length")
        assert cover[0][0] == ("s", "b", "t")
