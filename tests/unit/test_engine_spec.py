"""Tests for the declarative spec layer of the experiment engine."""

import numpy as np
import pytest

from repro.api.requests import DemandSpec, DisruptionSpec, TopologySpec, config_digest
from repro.engine.registry import available_specs, get_spec, register_spec
from repro.engine.spec import ExperimentSpec, SweepAxis, build_instance
from repro.engine.tasks import expand_tasks


def small_spec(**changes):
    spec = ExperimentSpec(
        name="unit-grid",
        figure="Unit",
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3, "capacity": 10.0}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec("random", num_pairs=1, flow_per_pair=5.0),
        sweep=SweepAxis(parameter="num_pairs", values=(1, 2), target="demand.num_pairs"),
        algorithms=("SRT", "ALL"),
        runs=2,
    )
    return spec.replace(**changes) if changes else spec


class TestSpecValidation:
    def test_unknown_topology_rejected(self):
        with pytest.raises(KeyError):
            TopologySpec("no-such-topology")

    def test_unknown_disruption_rejected(self):
        with pytest.raises(ValueError):
            DisruptionSpec("meteor")

    def test_unknown_demand_builder_rejected(self):
        with pytest.raises(KeyError):
            DemandSpec("wishful")

    def test_sweep_needs_values_and_valid_target(self):
        with pytest.raises(ValueError):
            SweepAxis(parameter="x", values=(), target="demand.num_pairs")
        with pytest.raises(ValueError):
            SweepAxis(parameter="x", values=(1,), target="nowhere")
        with pytest.raises(ValueError):
            SweepAxis(parameter="x", values=(1,), target="demand")

    def test_spec_needs_algorithms_and_runs(self):
        with pytest.raises(ValueError):
            small_spec(algorithms=())
        with pytest.raises(ValueError):
            small_spec(runs=0)


class TestSweepTargets:
    def test_demand_target_overrides_pairs(self):
        spec = small_spec()
        supply, demand = build_instance(spec, 2, np.random.default_rng(1))
        assert len(demand) == 2

    def test_topology_target(self):
        spec = small_spec(
            sweep=SweepAxis(parameter="rows", values=(2, 4), target="topology.rows")
        )
        supply, _ = build_instance(spec, 4, np.random.default_rng(1))
        assert len(list(supply.nodes)) == 4 * 3

    def test_disruption_target(self):
        spec = small_spec(
            topology=TopologySpec("bell-canada"),
            disruption=DisruptionSpec("gaussian", kwargs={"variance": 1.0}),
            sweep=SweepAxis(
                parameter="variance", values=(1.0, 500.0), target="disruption.variance"
            ),
        )
        rng = np.random.default_rng(3)
        wide_supply, _ = build_instance(spec, 500.0, rng)
        narrow_supply, _ = build_instance(spec, 1.0, np.random.default_rng(3))
        wide = len(wide_supply.broken_nodes) + len(wide_supply.broken_edges)
        narrow = len(narrow_supply.broken_nodes) + len(narrow_supply.broken_edges)
        assert wide >= narrow

    def test_instance_deterministic_per_rng(self):
        spec = small_spec()
        a_supply, a_demand = build_instance(spec, 2, np.random.default_rng(7))
        b_supply, b_demand = build_instance(spec, 2, np.random.default_rng(7))
        assert a_demand.as_dict() == b_demand.as_dict()
        assert a_supply.broken_nodes == b_supply.broken_nodes


class TestReplaceAndConfig:
    def test_replace_sweep_values(self):
        spec = small_spec(sweep_values=(3, 4, 5))
        assert spec.sweep.values == (3, 4, 5)
        assert spec.sweep.parameter == "num_pairs"

    def test_to_config_is_json_stable(self):
        spec = small_spec()
        assert config_digest(spec.to_config()) == config_digest(small_spec().to_config())

    def test_cell_config_ignores_sweep_list_and_runs(self):
        wide = small_spec(sweep_values=(1, 2, 3, 4), runs=10)
        narrow = small_spec()
        assert wide.cell_config(2, "SRT") == narrow.cell_config(2, "SRT")

    def test_opt_time_limit_only_keys_opt_cells(self):
        fast = small_spec(opt_time_limit=10.0)
        slow = small_spec(opt_time_limit=600.0)
        assert fast.cell_config(1, "SRT") == slow.cell_config(1, "SRT")
        assert fast.cell_config(1, "OPT") != slow.cell_config(1, "OPT")


class TestTaskExpansion:
    def test_cube_size_and_order(self):
        tasks = expand_tasks(small_spec(), seed=5)
        assert len(tasks) == 2 * 2 * 2
        assert [t.algorithm for t in tasks[:2]] == ["SRT", "ALL"]

    def test_cell_mates_share_seed_sequence(self):
        tasks = expand_tasks(small_spec(), seed=5)
        by_cell = {}
        for task in tasks:
            by_cell.setdefault(task.spawn_key, []).append(task)
        for mates in by_cell.values():
            states = {tuple(m.seed_sequence().generate_state(4)) for m in mates}
            assert len(states) == 1

    def test_distinct_cells_get_distinct_streams(self):
        tasks = expand_tasks(small_spec(), seed=5)
        states = {
            tuple(task.seed_sequence().generate_state(4))
            for task in tasks
            if task.algorithm == "SRT"
        }
        assert len(states) == 4  # 2 values x 2 runs

    def test_spawned_roots_yield_distinct_experiments(self):
        # Children spawned from one parent share its entropy and differ only
        # in spawn key — the engine must still treat them as distinct roots.
        child_a, child_b = np.random.SeedSequence(42).spawn(2)
        tasks_a = expand_tasks(small_spec(), seed=child_a)
        tasks_b = expand_tasks(small_spec(), seed=child_b)
        assert tasks_a[0].root_entropy != tasks_b[0].root_entropy
        assert tasks_a[0].cache_key() != tasks_b[0].cache_key()
        state_a = tuple(tasks_a[0].seed_sequence().generate_state(4))
        state_b = tuple(tasks_b[0].seed_sequence().generate_state(4))
        assert state_a != state_b

    def test_list_entropy_seed_sequence_accepted(self):
        tasks = expand_tasks(small_spec(), seed=np.random.SeedSequence([1, 2, 3]))
        assert tasks[0].root_entropy == expand_tasks(
            small_spec(), seed=np.random.SeedSequence([1, 2, 3])
        )[0].root_entropy

    def test_extending_sweep_keeps_existing_seeds(self):
        base = {
            (t.spawn_key, t.algorithm): tuple(t.seed_sequence().generate_state(2))
            for t in expand_tasks(small_spec(), seed=5)
        }
        extended = {
            (t.spawn_key, t.algorithm): tuple(t.seed_sequence().generate_state(2))
            for t in expand_tasks(small_spec(sweep_values=(1, 2, 3), runs=4), seed=5)
        }
        for key, state in base.items():
            assert extended[key] == state


class TestRegistry:
    def test_paper_specs_registered(self):
        names = available_specs()
        assert "bellcanada-demand-pairs" in names
        assert "erdos-renyi-scalability" in names
        assert len(names) >= 6

    def test_alias_resolution(self):
        assert get_spec("figure4").name == "bellcanada-demand-pairs"

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError):
            get_spec("no-such-experiment")

    def test_register_refuses_duplicates(self):
        spec = get_spec("figure4")
        with pytest.raises(ValueError):
            register_spec(spec)


class TestRetiredShims:
    """The PR-3 moved-name shims are gone: the api layer is the only home."""

    RETIRED = ["TopologySpec", "DisruptionSpec", "DemandSpec", "config_digest"]

    @pytest.mark.parametrize("name", RETIRED)
    def test_retired_names_raise_attribute_error(self, name):
        import repro.engine.spec as spec_module

        with pytest.raises(AttributeError):
            getattr(spec_module, name)

    def test_unknown_attribute_still_raises(self):
        import repro.engine.spec as spec_module

        with pytest.raises(AttributeError):
            spec_module.NoSuchName

    def test_modules_import_without_warnings(self):
        """Nothing in the import graph may emit a DeprecationWarning.

        Imported in a fresh interpreter with DeprecationWarning escalated,
        so any deprecated access anywhere in the engine/api/online import
        graph fails loudly (reloading in-process would corrupt class
        identities for the rest of the suite).
        """
        import subprocess
        import sys

        result = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro.engine.experiment, repro.engine.registry, "
                "repro.engine.spec, repro.engine.tasks, repro.engine.executor, "
                "repro.api.service, repro.scenarios, repro.verification, "
                "repro.online, repro.cli",
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
