"""Tests for the baseline heuristics (Section VI)."""

import pytest

from repro.evaluation.metrics import evaluate_plan
from repro.failures.complete import CompleteDestruction
from repro.heuristics.all_repair import repair_all
from repro.heuristics.base import RecoveryAlgorithm
from repro.heuristics.greedy import (
    enumerate_candidate_paths,
    greedy_commitment,
    greedy_no_commitment,
)
from repro.heuristics.registry import available_algorithms, get_algorithm, register_algorithm
from repro.heuristics.srt import shortest_path_repair
from repro.network.demand import DemandGraph
from repro.topologies.grids import grid_topology


class TestRepairAll:
    def test_repairs_everything(self, line_supply, single_demand):
        line_supply.break_all()
        plan = repair_all(line_supply, single_demand)
        assert plan.total_repairs == 9

    def test_nothing_broken(self, line_supply, single_demand):
        plan = repair_all(line_supply, single_demand)
        assert plan.total_repairs == 0

    def test_full_satisfaction_after_repairing_all(self, line_supply, single_demand):
        line_supply.break_all()
        plan = repair_all(line_supply, single_demand)
        evaluation = evaluate_plan(line_supply, single_demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)


class TestSRT:
    def test_repairs_shortest_path(self, line_supply, single_demand):
        line_supply.break_all()
        plan = shortest_path_repair(line_supply, single_demand)
        assert plan.num_node_repairs == 5
        assert plan.num_edge_repairs == 4

    def test_accumulates_paths_until_demand_met(self, diamond_supply, diamond_demand):
        diamond_supply.break_all()
        plan = shortest_path_repair(diamond_supply, diamond_demand)
        # 12 units need both branches: all 4 nodes and 4 edges.
        assert plan.total_repairs == 8

    def test_single_branch_for_low_demand(self, diamond_supply):
        diamond_supply.break_all()
        demand = DemandGraph()
        demand.add("s", "t", 3.0)
        plan = shortest_path_repair(diamond_supply, demand)
        assert plan.total_repairs == 5  # 3 nodes + 2 edges of one branch

    def test_independent_treatment_can_lose_demand(self, line_supply):
        # Two demands both need 8 of the 10 units of the single shared path:
        # SRT repairs that path once per demand and cannot satisfy both.
        line_supply.break_all()
        demand = DemandGraph()
        demand.add("a", "c", 8.0)
        demand.add("b", "e", 8.0)
        plan = shortest_path_repair(line_supply, demand)
        evaluation = evaluate_plan(line_supply, demand, plan)
        assert evaluation.satisfied_percentage < 100.0

    def test_unreachable_pair_skipped(self, line_supply):
        line_supply.graph.remove_edge("c", "d")
        line_supply.break_all()
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        plan = shortest_path_repair(line_supply, demand)
        assert plan.total_repairs == 0

    def test_nothing_broken_repairs_nothing(self, line_supply, single_demand):
        plan = shortest_path_repair(line_supply, single_demand)
        assert plan.total_repairs == 0


class TestGreedyCandidatePaths:
    def test_paths_enumerated_per_pair(self, diamond_supply, diamond_demand):
        paths = enumerate_candidate_paths(diamond_supply, diamond_demand)
        assert len(paths) == 2
        assert {p.path for p in paths} == {("s", "a", "t"), ("s", "b", "t")}

    def test_weights_sorted_ascending(self, diamond_supply, diamond_demand):
        diamond_supply.break_all()
        paths = enumerate_candidate_paths(diamond_supply, diamond_demand)
        weights = [p.weight for p in paths]
        assert weights == sorted(weights)

    def test_working_path_has_zero_weight(self, diamond_supply, diamond_demand):
        paths = enumerate_candidate_paths(diamond_supply, diamond_demand)
        assert all(p.weight == 0.0 for p in paths)

    def test_max_paths_cap(self, grid3_supply):
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        paths = enumerate_candidate_paths(grid3_supply, demand, max_paths_per_pair=3)
        assert len(paths) <= 3


class TestGreedyCommitment:
    def test_satisfies_single_demand(self, line_supply, single_demand):
        line_supply.break_all()
        plan = greedy_commitment(line_supply, single_demand)
        evaluation = evaluate_plan(line_supply, single_demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)
        assert plan.total_repairs == 9

    def test_routing_respects_capacity(self, diamond_supply, diamond_demand):
        diamond_supply.break_all()
        plan = greedy_commitment(diamond_supply, diamond_demand)
        assert plan.validate_routing(diamond_supply, diamond_demand) == []

    def test_skips_paths_for_satisfied_demands(self, diamond_supply):
        diamond_supply.break_all()
        demand = DemandGraph()
        demand.add("s", "t", 3.0)
        plan = greedy_commitment(diamond_supply, demand)
        # One branch suffices; the second branch must not be repaired.
        assert plan.total_repairs == 5

    def test_opportunistic_routing_of_other_demands(self, line_supply):
        line_supply.break_all()
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        demand.add("b", "d", 2.0)
        plan = greedy_commitment(line_supply, demand)
        evaluation = evaluate_plan(line_supply, demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)

    def test_nothing_to_do(self, line_supply, single_demand):
        plan = greedy_commitment(line_supply, single_demand)
        assert plan.total_repairs == 0
        assert plan.total_satisfied() == pytest.approx(5.0)


class TestGreedyNoCommitment:
    def test_repairs_until_routable(self, line_supply, single_demand):
        line_supply.break_all()
        plan = greedy_no_commitment(line_supply, single_demand)
        assert plan.metadata["routable"]
        evaluation = evaluate_plan(line_supply, single_demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)

    def test_no_demand_loss_when_original_was_routable(self, grid3_supply):
        CompleteDestruction().apply(grid3_supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 8.0)
        demand.add((0, 2), (2, 0), 8.0)
        plan = greedy_no_commitment(grid3_supply, demand)
        evaluation = evaluate_plan(grid3_supply, demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)

    def test_repairs_at_least_as_many_as_grd_com(self, grid3_supply):
        CompleteDestruction().apply(grid3_supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        nc = greedy_no_commitment(grid3_supply, demand)
        com = greedy_commitment(grid3_supply, demand)
        assert nc.total_repairs >= com.total_repairs

    def test_stops_immediately_when_already_routable(self, line_supply, single_demand):
        plan = greedy_no_commitment(line_supply, single_demand)
        assert plan.metadata["paths_repaired"] == 0
        assert plan.total_repairs == 0


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = available_algorithms()
        for expected in ("ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "MCB", "MCW", "ALL"):
            assert expected in names

    def test_get_algorithm_case_insensitive(self):
        assert get_algorithm("isp").name == "ISP"

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("does-not-exist")

    def test_solve_stamps_name(self, line_supply, single_demand):
        line_supply.break_all()
        plan = get_algorithm("ALL").solve(line_supply, single_demand)
        assert plan.algorithm == "ALL"

    def test_kwargs_forwarded(self, line_supply, single_demand):
        line_supply.break_edge("a", "b")
        algorithm = get_algorithm("OPT", time_limit=30.0)
        plan = algorithm.solve(line_supply, single_demand)
        assert plan.total_repairs == 1

    def test_isp_config_kwargs(self, grid3_supply):
        CompleteDestruction().apply(grid3_supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        algorithm = get_algorithm("ISP", split_amount_mode="bottleneck")
        plan = algorithm.solve(grid3_supply, demand)
        assert plan.algorithm == "ISP"

    def test_register_custom_algorithm(self, line_supply, single_demand):
        def lazy(supply, demand):
            from repro.network.plan import RecoveryPlan

            return RecoveryPlan(algorithm="LAZY")

        register_algorithm("LAZY-TEST", lazy, overwrite=True)
        plan = get_algorithm("LAZY-TEST").solve(line_supply, single_demand)
        assert plan.algorithm == "LAZY-TEST"

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_algorithm("ISP", lambda s, d: None)

    def test_recovery_algorithm_callable(self, line_supply, single_demand):
        line_supply.break_all()
        algorithm = RecoveryAlgorithm(name="ALL", solver=repair_all)
        assert algorithm(line_supply, single_demand).total_repairs == 9
