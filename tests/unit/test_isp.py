"""Tests for the ISP main algorithm (Section IV)."""

import pytest

from repro.core.isp import ISPConfig, iterative_split_prune
from repro.evaluation.metrics import evaluate_plan
from repro.failures.complete import CompleteDestruction
from repro.network.demand import DemandGraph
from repro.topologies.grids import grid_topology, ring_topology


class TestTrivialCases:
    def test_empty_demand_repairs_nothing(self, line_supply):
        line_supply.break_all()
        plan = iterative_split_prune(line_supply, DemandGraph())
        assert plan.total_repairs == 0

    def test_undamaged_network_repairs_nothing(self, line_supply, single_demand):
        plan = iterative_split_prune(line_supply, single_demand)
        assert plan.total_repairs == 0
        assert plan.total_satisfied() == pytest.approx(5.0)

    def test_inputs_not_modified(self, line_supply, single_demand):
        line_supply.break_all()
        iterative_split_prune(line_supply, single_demand)
        assert len(line_supply.broken_nodes) == 5
        assert single_demand.demand("a", "e") == 5.0

    def test_unreachable_demand_recorded(self, line_supply):
        line_supply.graph.remove_edge("c", "d")
        line_supply.break_all()
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        plan = iterative_split_prune(line_supply, demand)
        assert ("a", "e") in plan.metadata["unsatisfiable_pairs"]


class TestSingleDemandRecovery:
    def test_line_complete_destruction_is_optimal(self, line_supply, single_demand):
        line_supply.break_all()
        plan = iterative_split_prune(line_supply, single_demand)
        # The unique recovery is the full path: 5 nodes + 4 edges.
        assert plan.num_node_repairs == 5
        assert plan.num_edge_repairs == 4
        evaluation = evaluate_plan(line_supply, single_demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)

    def test_single_broken_edge_on_path(self, line_supply, single_demand):
        line_supply.break_edge("c", "d")
        plan = iterative_split_prune(line_supply, single_demand)
        assert plan.repaired_edges == {("c", "d")}
        assert plan.num_node_repairs == 0

    def test_broken_elements_off_path_not_repaired(self, diamond_supply):
        diamond_supply.break_node("b")
        diamond_supply.break_edge("s", "b")
        demand = DemandGraph()
        demand.add("s", "t", 8.0)
        plan = iterative_split_prune(diamond_supply, demand)
        assert plan.total_repairs == 0

    def test_demand_needing_both_branches(self, diamond_supply, diamond_demand):
        diamond_supply.break_all()
        plan = iterative_split_prune(diamond_supply, diamond_demand)
        assert plan.num_node_repairs == 4
        assert plan.num_edge_repairs == 4
        evaluation = evaluate_plan(diamond_supply, diamond_demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)

    def test_low_demand_uses_single_branch(self, diamond_supply):
        diamond_supply.break_all()
        demand = DemandGraph()
        demand.add("s", "t", 8.0)
        plan = iterative_split_prune(diamond_supply, demand)
        assert plan.num_node_repairs == 3
        assert plan.num_edge_repairs == 2


class TestMultiDemandRecovery:
    def test_grid_two_demands_full_satisfaction(self):
        supply = grid_topology(4, 4, capacity=10.0)
        CompleteDestruction().apply(supply)
        demand = DemandGraph()
        demand.add((0, 0), (3, 3), 5.0)
        demand.add((0, 3), (3, 0), 5.0)
        plan = iterative_split_prune(supply, demand)
        evaluation = evaluate_plan(supply, demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)
        assert evaluation.routing_violations == 0

    def test_sharing_beats_independent_paths(self):
        # Two demands whose endpoints sit on opposite corners: sharing the
        # centre of the grid costs fewer repairs than two disjoint paths.
        supply = grid_topology(3, 3, capacity=100.0)
        CompleteDestruction().apply(supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 1.0)
        demand.add((0, 2), (2, 0), 1.0)
        plan = iterative_split_prune(supply, demand)
        # Two fully disjoint corner-to-corner paths would need 18 repairs.
        assert plan.total_repairs <= 18

    def test_ring_demands(self):
        supply = ring_topology(8, capacity=10.0)
        CompleteDestruction().apply(supply)
        demand = DemandGraph()
        demand.add(0, 4, 5.0)
        demand.add(2, 6, 5.0)
        plan = iterative_split_prune(supply, demand)
        evaluation = evaluate_plan(supply, demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)


class TestConfig:
    def test_bottleneck_mode_still_satisfies(self, grid3_supply):
        CompleteDestruction().apply(grid3_supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        config = ISPConfig(split_amount_mode="bottleneck")
        plan = iterative_split_prune(grid3_supply, demand, config=config)
        evaluation = evaluate_plan(grid3_supply, demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)

    def test_non_bubble_pruning(self, grid3_supply):
        CompleteDestruction().apply(grid3_supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        config = ISPConfig(require_bubble=False)
        plan = iterative_split_prune(grid3_supply, demand, config=config)
        evaluation = evaluate_plan(grid3_supply, demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)

    def test_iteration_limit_triggers_fallback(self, grid3_supply):
        CompleteDestruction().apply(grid3_supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        config = ISPConfig(max_iterations=1)
        plan = iterative_split_prune(grid3_supply, demand, config=config)
        assert plan.metadata["fallback_used"]
        evaluation = evaluate_plan(grid3_supply, demand, plan)
        assert evaluation.satisfied_percentage == pytest.approx(100.0)


class TestPlanMetadata:
    def test_counters_present(self, grid3_supply):
        CompleteDestruction().apply(grid3_supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        plan = iterative_split_prune(grid3_supply, demand)
        assert plan.iterations > 0
        assert plan.elapsed_seconds > 0
        assert set(plan.metadata) >= {"splits", "prunes", "direct_edge_repairs", "fallback_used"}

    def test_routing_is_consistent_with_repairs(self, grid3_supply):
        CompleteDestruction().apply(grid3_supply)
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        plan = iterative_split_prune(grid3_supply, demand)
        # Routes only traverse repaired or working elements and respect capacity.
        assert plan.validate_routing(grid3_supply, demand) == []
