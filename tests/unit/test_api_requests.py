"""Tests for the request schema of the service facade (repro.api.requests)."""

import json

import pytest

from repro.api.requests import (
    SCHEMA_VERSION,
    AssessmentRequest,
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
    config_digest,
    materialise_instance,
    request_from_dict,
)
from repro.engine.spec import ExperimentSpec
from repro.engine.tasks import expand_tasks


def grid_request(**changes):
    defaults = dict(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3, "capacity": 10.0}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec("far-apart", num_pairs=1, flow_per_pair=5.0),
        algorithms=("ISP", "ALL"),
        seed=3,
    )
    defaults.update(changes)
    return RecoveryRequest(**defaults)


class TestValidation:
    def test_unknown_topology_rejected(self):
        with pytest.raises(KeyError):
            TopologySpec("no-such-topology")

    def test_unknown_disruption_rejected(self):
        with pytest.raises(ValueError):
            DisruptionSpec("meteor")

    def test_unknown_demand_builder_rejected(self):
        with pytest.raises(KeyError):
            DemandSpec("no-such-builder")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            grid_request(algorithms=("ISP", "NO-SUCH"))

    def test_empty_algorithms_rejected(self):
        with pytest.raises(ValueError):
            grid_request(algorithms=())

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            grid_request(lp_backend="no-such-backend")

    def test_algorithm_names_canonicalised(self):
        request = grid_request(algorithms=("isp", "all"))
        assert request.algorithms == ("ISP", "ALL")

    def test_mapping_kwargs_rejected(self):
        # Dict-valued kwargs would silently break request hashability.
        with pytest.raises(TypeError):
            TopologySpec("grid", kwargs={"meta": {"a": 1}})

    def test_other_unhashable_kwargs_rejected(self):
        with pytest.raises(TypeError):
            TopologySpec("grid", kwargs={"tags": {1, 2}})

    def test_pinned_seed_controls_determinism(self):
        seeded = TopologySpec("erdos-renyi", kwargs={"num_nodes": 10, "seed": 5})
        entropy = TopologySpec("erdos-renyi", kwargs={"num_nodes": 10, "seed": None})
        unseeded = TopologySpec("erdos-renyi", kwargs={"num_nodes": 10})
        assert seeded.deterministic
        assert not entropy.deterministic
        assert not unseeded.deterministic
        assert TopologySpec("grid").deterministic

    def test_requests_are_hashable(self):
        assert len({grid_request(), grid_request(), grid_request(seed=4)}) == 2


class TestRoundTrip:
    def test_recovery_request_json_round_trip(self):
        request = grid_request(
            algorithm_kwargs={"ISP": {"split_amount_mode": "bottleneck"}},
            opt_time_limit=30,
        )
        payload = json.loads(json.dumps(request.to_dict()))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert RecoveryRequest.from_dict(payload) == request

    def test_assessment_request_json_round_trip(self):
        request = AssessmentRequest(
            topology=TopologySpec("bell-canada"),
            disruption=DisruptionSpec("gaussian", kwargs={"variance": 60.0}),
            demand=DemandSpec(num_pairs=2, flow_per_pair=10.0),
            seed=7,
        )
        payload = json.loads(json.dumps(request.to_dict()))
        assert AssessmentRequest.from_dict(payload) == request

    def test_request_from_dict_dispatches_on_kind(self):
        recovery = grid_request()
        assessment = AssessmentRequest(topology=TopologySpec("bell-canada"))
        assert request_from_dict(recovery.to_dict()) == recovery
        assert request_from_dict(assessment.to_dict()) == assessment
        with pytest.raises(ValueError):
            request_from_dict({"kind": "unknown"})

    def test_newer_schema_rejected(self):
        payload = grid_request().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            RecoveryRequest.from_dict(payload)

    def test_nested_tuple_kwargs_survive_the_trip(self):
        # Explicit demand pairs use nested tuples (grid nodes are tuples).
        request = grid_request(
            demand=DemandSpec(
                "explicit",
                num_pairs=2,
                flow_per_pair=6.0,
                kwargs={"pairs": (((0, 0), (2, 2)), ((0, 2), (2, 0)))},
            )
        )
        payload = json.loads(json.dumps(request.to_dict()))
        assert RecoveryRequest.from_dict(payload) == request

    def test_digest_is_stable_and_discriminates(self):
        request = grid_request()
        assert request.digest() == grid_request().digest()
        assert request.digest() != grid_request(seed=4).digest()


class TestSharedHashing:
    def test_request_tasks_share_engine_cache_hashing(self):
        """solve_batch keys are engine cell keys: same digest pipeline."""
        request = grid_request()
        tasks = expand_tasks(request.to_experiment_spec(), seed=request.seed)
        assert len(tasks) == len(request.algorithms)
        for task in tasks:
            config = task.spec.cell_config(task.sweep_value, task.algorithm)
            config["root_entropy"] = task.root_entropy
            config["spawn_key"] = list(task.spawn_key)
            assert task.cache_key() == config_digest(config)

    def test_algorithm_kwargs_change_the_cell_key(self):
        plain = grid_request(algorithms=("ISP",))
        tuned = grid_request(
            algorithms=("ISP",),
            algorithm_kwargs={"ISP": {"split_amount_mode": "bottleneck"}},
        )
        key = lambda request: expand_tasks(  # noqa: E731 - local shorthand
            request.to_experiment_spec(), seed=request.seed
        )[0].cache_key()
        assert key(plain) != key(tuned)


class TestExperimentSpecConfig:
    def test_from_config_round_trips_to_config(self):
        from repro.engine.registry import get_spec

        for name in ("bellcanada-demand-pairs", "erdos-renyi-scalability"):
            spec = get_spec(name)
            assert ExperimentSpec.from_config(spec.to_config()) == spec

    def test_from_config_round_trips_through_json(self):
        from repro.engine.registry import get_spec

        spec = get_spec("bellcanada-disruption-extent")
        payload = json.loads(json.dumps(spec.to_config()))
        assert ExperimentSpec.from_config(payload) == spec



class TestMaterialise:
    def test_prebuilt_supply_is_not_mutated(self):
        import numpy as np

        topology = TopologySpec("grid", kwargs={"rows": 3, "cols": 3, "capacity": 10.0})
        pristine = topology.build(np.random.default_rng(0), {})
        supply, demand, report = materialise_instance(
            topology,
            DisruptionSpec("complete"),
            DemandSpec("far-apart", num_pairs=1, flow_per_pair=5.0),
            np.random.default_rng(1),
            supply=pristine,
        )
        assert not pristine.broken_nodes and not pristine.broken_edges
        assert supply.broken_nodes and report.total_broken > 0
        assert len(demand) == 1

    def test_prebuilt_and_fresh_paths_build_identical_instances(self):
        import numpy as np

        topology = TopologySpec("bell-canada")
        disruption = DisruptionSpec("gaussian", kwargs={"variance": 60.0})
        demand_spec = DemandSpec(num_pairs=2, flow_per_pair=10.0)
        fresh_supply, fresh_demand, _ = materialise_instance(
            topology, disruption, demand_spec, np.random.default_rng(5)
        )
        pristine = topology.build(np.random.default_rng(0), {})
        cached_supply, cached_demand, _ = materialise_instance(
            topology, disruption, demand_spec, np.random.default_rng(5), supply=pristine
        )
        assert fresh_supply.broken_nodes == cached_supply.broken_nodes
        assert fresh_supply.broken_edges == cached_supply.broken_edges
        assert {p.pair for p in fresh_demand.pairs()} == {
            p.pair for p in cached_demand.pairs()
        }


class TestZooSchemaStability:
    """Acceptance pins for the scenario-zoo PR: new names round-trip, old
    cache keys stay bit-identical."""

    ZOO_TOPOLOGIES = {
        "barabasi-albert": {"num_nodes": 14, "attachment": 2},
        "watts-strogatz": {"num_nodes": 12, "nearest_neighbors": 4},
        "fat-tree": {"pods": 4},
    }
    ZOO_DISRUPTIONS = {
        "cascading": {"num_triggers": 2, "propagation_factor": 1.5},
        "multi-gaussian": {"variance": 20.0, "num_epicenters": 2},
        "targeted": {"node_budget": 2, "edge_budget": 1, "metric": "degree"},
    }

    def test_every_new_name_round_trips_through_recovery_request(self):
        for topology_name, topology_kwargs in self.ZOO_TOPOLOGIES.items():
            for kind, disruption_kwargs in self.ZOO_DISRUPTIONS.items():
                request = RecoveryRequest(
                    topology=TopologySpec(topology_name, kwargs=topology_kwargs),
                    disruption=DisruptionSpec(kind, kwargs=disruption_kwargs),
                    algorithms=("ISP",),
                    seed=7,
                )
                payload = json.loads(json.dumps(request.to_dict()))
                restored = RecoveryRequest.from_dict(payload)
                assert restored == request
                assert restored.digest() == request.digest()

    def test_existing_request_digest_is_pinned(self):
        # Golden value: adding zoo topologies/failures must never move the
        # digest of a request that predates them (cache compatibility).
        request = RecoveryRequest(
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
            disruption=DisruptionSpec("complete"),
            demand=DemandSpec("routable-far-apart", num_pairs=1, flow_per_pair=5.0),
            algorithms=("ISP",),
            seed=3,
        )
        assert request.digest() == (
            "a5a767f512f4f5f9652e3be49480847a10c543ce8c86a5c51d49205fdb76e971"
        )

    def test_existing_engine_cache_key_is_pinned(self):
        from repro.engine.registry import get_spec
        from repro.engine.tasks import expand_tasks

        task = expand_tasks(get_spec("bellcanada-demand-pairs"), seed=11)[0]
        assert task.algorithm == "ISP" and task.sweep_value == 1
        assert task.cache_key() == (
            "a4861ab36ea4630d6083d4967a045877e68773f5f8c7c750f9b5c6d083fd6725"
        )


class TestDisruptionKwargsValidation:
    def test_unknown_kwarg_rejected_eagerly(self):
        with pytest.raises(ValueError, match="num_trigger"):
            DisruptionSpec("cascading", kwargs={"num_trigger": 2})  # typo
        with pytest.raises(ValueError, match="spread"):
            DisruptionSpec("gaussian", kwargs={"spread": 3.0})

    def test_parameterless_kinds_reject_kwargs(self):
        with pytest.raises(ValueError, match="takes no parameters"):
            DisruptionSpec("complete", kwargs={"variance": 3.0})
        with pytest.raises(ValueError, match="takes no parameters"):
            DisruptionSpec("none", kwargs={"x": 1})

    def test_valid_kwargs_still_accepted(self):
        DisruptionSpec("cascading", kwargs={"num_triggers": 2, "propagation_factor": 1.0})
        DisruptionSpec("targeted", kwargs={"node_budget": 1, "metric": "degree"})
        DisruptionSpec("gaussian", kwargs={"variance": 5.0})
