"""Tests for the disruption models."""

import pytest

from repro.failures.base import FailureReport
from repro.failures.complete import CompleteDestruction
from repro.failures.geographic import GaussianDisruption, barycenter
from repro.failures.random_failures import UniformRandomFailure
from repro.topologies.grids import grid_topology


class TestFailureReport:
    def test_total_broken(self):
        report = FailureReport(
            broken_nodes=frozenset({"a"}), broken_edges=frozenset({("a", "b")})
        )
        assert report.total_broken == 2

    def test_empty(self):
        assert FailureReport().is_empty()


class TestCompleteDestruction:
    def test_everything_breaks(self, line_supply):
        report = CompleteDestruction().apply(line_supply)
        assert line_supply.broken_nodes == set(line_supply.nodes)
        assert len(line_supply.broken_edges) == line_supply.number_of_edges
        assert report.total_broken == 5 + 4

    def test_sample_does_not_mutate(self, line_supply):
        CompleteDestruction().sample(line_supply)
        assert not line_supply.broken_nodes
        assert not line_supply.broken_edges


class TestGaussianDisruption:
    def test_barycenter_of_grid(self):
        supply = grid_topology(3, 3)
        assert barycenter(supply) == pytest.approx((1.0, 1.0))

    def test_barycenter_requires_positions(self):
        from repro.network.supply import SupplyGraph

        supply = SupplyGraph()
        supply.add_node("a")
        with pytest.raises(ValueError):
            barycenter(supply)

    def test_probability_peaks_at_epicenter(self):
        model = GaussianDisruption(variance=10.0, intensity=0.8)
        assert model.failure_probability((0, 0), (0, 0)) == pytest.approx(0.8)

    def test_probability_decays_with_distance(self):
        model = GaussianDisruption(variance=10.0)
        near = model.failure_probability((1, 0), (0, 0))
        far = model.failure_probability((10, 0), (0, 0))
        assert near > far

    def test_larger_variance_breaks_more(self):
        supply = grid_topology(6, 6)
        small = GaussianDisruption(variance=0.2).sample(supply, seed=1)
        large = GaussianDisruption(variance=50.0).sample(supply, seed=1)
        assert large.total_broken >= small.total_broken

    def test_apply_marks_elements(self):
        supply = grid_topology(5, 5)
        report = GaussianDisruption(variance=100.0).apply(supply, seed=3)
        assert supply.broken_nodes == set(report.broken_nodes)
        assert supply.broken_edges == set(report.broken_edges)

    def test_deterministic_with_seed(self):
        supply = grid_topology(5, 5)
        a = GaussianDisruption(variance=5.0).sample(supply, seed=42)
        b = GaussianDisruption(variance=5.0).sample(supply, seed=42)
        assert a.broken_nodes == b.broken_nodes
        assert a.broken_edges == b.broken_edges

    def test_explicit_epicenter(self):
        supply = grid_topology(5, 5)
        model = GaussianDisruption(variance=0.3, epicenter=(0.0, 0.0))
        report = model.sample(supply, seed=2)
        # Failures concentrate near the chosen corner.
        assert all(
            (node[0] + node[1]) <= 6 for node in report.broken_nodes
        )

    def test_nodes_only(self):
        supply = grid_topology(4, 4)
        model = GaussianDisruption(variance=100.0, affect_edges=False)
        report = model.sample(supply, seed=1)
        assert not report.broken_edges

    def test_edges_only(self):
        supply = grid_topology(4, 4)
        model = GaussianDisruption(variance=100.0, affect_nodes=False)
        report = model.sample(supply, seed=1)
        assert not report.broken_nodes

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianDisruption(variance=0.0)
        with pytest.raises(ValueError):
            GaussianDisruption(variance=1.0, intensity=1.5)
        with pytest.raises(ValueError):
            GaussianDisruption(variance=1.0, affect_nodes=False, affect_edges=False)


class TestUniformRandomFailure:
    def test_zero_probability_breaks_nothing(self, line_supply):
        report = UniformRandomFailure(0.0, 0.0).sample(line_supply, seed=1)
        assert report.is_empty()

    def test_probability_one_breaks_everything(self, line_supply):
        report = UniformRandomFailure(1.0, 1.0).sample(line_supply, seed=1)
        assert report.total_broken == 9

    def test_deterministic_with_seed(self, grid3_supply):
        a = UniformRandomFailure(0.5, 0.5).sample(grid3_supply, seed=11)
        b = UniformRandomFailure(0.5, 0.5).sample(grid3_supply, seed=11)
        assert a.broken_nodes == b.broken_nodes

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            UniformRandomFailure(node_probability=1.5)


class TestCascadingFailure:
    def test_sample_does_not_mutate(self):
        from repro.failures.cascading import CascadingFailure

        supply = grid_topology(4, 4)
        CascadingFailure(num_triggers=2).sample(supply, seed=3)
        assert not supply.broken_nodes and not supply.broken_edges

    def test_deterministic_for_seed(self):
        from repro.failures.cascading import CascadingFailure

        supply = grid_topology(4, 4)
        model = CascadingFailure(num_triggers=2, propagation_factor=1.5)
        assert model.sample(supply, seed=9) == model.sample(supply, seed=9)

    def test_zero_propagation_is_just_the_trigger(self):
        from repro.failures.cascading import CascadingFailure

        supply = grid_topology(4, 4)
        report = CascadingFailure(num_triggers=3, propagation_factor=0.0).sample(
            supply, seed=5
        )
        assert len(report.broken_nodes) == 3
        assert not report.broken_edges

    def test_cascade_grows_beyond_trigger(self):
        from repro.failures.cascading import CascadingFailure

        from repro.topologies.zoo import barabasi_albert

        supply = barabasi_albert(num_nodes=30, seed=5)
        report = CascadingFailure(
            num_triggers=2, propagation_factor=1.5, tolerance=0.2
        ).sample(supply, seed=11)
        assert report.total_broken > 2

    def test_degree_trigger_hits_the_hub(self):
        from repro.failures.cascading import CascadingFailure
        from repro.topologies.grids import star_topology

        supply = star_topology(6)
        report = CascadingFailure(
            num_triggers=1, trigger="degree", propagation_factor=0.0
        ).sample(supply)
        assert report.broken_nodes == frozenset({0})

    def test_invalid_parameters(self):
        from repro.failures.cascading import CascadingFailure

        with pytest.raises(ValueError):
            CascadingFailure(num_triggers=0)
        with pytest.raises(ValueError):
            CascadingFailure(trigger="storm")
        with pytest.raises(ValueError):
            CascadingFailure(propagation_factor=-1.0)


class TestMultiEpicenterDisruption:
    def test_explicit_epicenters_consume_no_randomness(self):
        from repro.failures.geographic import MultiEpicenterDisruption

        supply = grid_topology(4, 4)
        model = MultiEpicenterDisruption(variance=1.0, epicenters=((0.0, 0.0), (3.0, 3.0)))
        assert model.sample(supply, seed=4) == model.sample(supply, seed=4)

    def test_combined_probability_dominates_each_epicenter(self):
        from repro.failures.geographic import MultiEpicenterDisruption

        model = MultiEpicenterDisruption(variance=4.0, epicenters=((0.0, 0.0), (2.0, 0.0)))
        combined = model.combined_probability((1.0, 0.0), model.epicenters)
        single = model.combined_probability((1.0, 0.0), model.epicenters[:1])
        assert combined >= single

    def test_drawn_epicenters_stay_in_bounding_box(self):
        from repro.failures.geographic import MultiEpicenterDisruption
        import numpy as np

        supply = grid_topology(4, 4)
        model = MultiEpicenterDisruption(variance=1.0, num_epicenters=3)
        epicenters = model._draw_epicenters(supply, np.random.default_rng(0))
        for x, y in epicenters:
            assert 0.0 <= x <= 3.0 and 0.0 <= y <= 3.0

    def test_sample_does_not_mutate(self):
        from repro.failures.geographic import MultiEpicenterDisruption

        supply = grid_topology(4, 4)
        MultiEpicenterDisruption(variance=2.0).sample(supply, seed=1)
        assert not supply.broken_nodes and not supply.broken_edges

    def test_invalid_parameters(self):
        from repro.failures.geographic import MultiEpicenterDisruption

        with pytest.raises(ValueError):
            MultiEpicenterDisruption(variance=0.0)
        with pytest.raises(ValueError):
            MultiEpicenterDisruption(variance=1.0, num_epicenters=0)


class TestTargetedAttack:
    def test_degree_attack_hits_the_hub(self):
        from repro.failures.targeted import TargetedAttack
        from repro.topologies.grids import star_topology

        supply = star_topology(8)
        report = TargetedAttack(node_budget=1).sample(supply)
        assert report.broken_nodes == frozenset({0})

    def test_betweenness_attack_hits_the_bridge(self):
        from repro.failures.targeted import TargetedAttack

        # Two triangles joined by the bridge node "m".
        from repro.network.supply import SupplyGraph

        supply = SupplyGraph()
        for u, v in [("a", "b"), ("b", "c"), ("a", "c"), ("c", "m"), ("m", "d"),
                     ("d", "e"), ("e", "f"), ("d", "f")]:
            supply.add_edge(u, v)
        report = TargetedAttack(node_budget=1, metric="betweenness").sample(supply)
        assert report.broken_nodes == frozenset({"m"})

    def test_deterministic_and_non_mutating(self):
        from repro.failures.targeted import TargetedAttack

        supply = grid_topology(4, 4)
        model = TargetedAttack(node_budget=3, edge_budget=2)
        assert model.sample(supply) == model.sample(supply)
        assert not supply.broken_nodes and not supply.broken_edges

    def test_budget_clipped_to_graph_size(self):
        from repro.failures.targeted import TargetedAttack

        supply = grid_topology(2, 2)
        report = TargetedAttack(node_budget=100, edge_budget=100).sample(supply)
        assert len(report.broken_nodes) == 4
        assert len(report.broken_edges) == 4

    def test_adaptive_attack_is_prefix_monotone(self):
        from repro.failures.targeted import TargetedAttack
        from repro.topologies.zoo import watts_strogatz

        supply = watts_strogatz(num_nodes=16, seed=2)
        small = TargetedAttack(node_budget=2, adaptive=True).sample(supply)
        large = TargetedAttack(node_budget=5, adaptive=True).sample(supply)
        assert small.broken_nodes <= large.broken_nodes

    def test_invalid_parameters(self):
        from repro.failures.targeted import TargetedAttack

        with pytest.raises(ValueError):
            TargetedAttack()
        with pytest.raises(ValueError):
            TargetedAttack(node_budget=-1)
        with pytest.raises(ValueError):
            TargetedAttack(node_budget=1, metric="pagerank")


class TestDisruptionSpecZooKinds:
    def test_new_kinds_resolve_to_models(self):
        from repro.api.requests import DisruptionSpec
        from repro.failures.cascading import CascadingFailure
        from repro.failures.geographic import MultiEpicenterDisruption
        from repro.failures.targeted import TargetedAttack

        assert isinstance(
            DisruptionSpec("cascading", kwargs={"num_triggers": 2}).model(), CascadingFailure
        )
        assert isinstance(
            DisruptionSpec("multi-gaussian", kwargs={"variance": 5.0}).model(),
            MultiEpicenterDisruption,
        )
        assert isinstance(
            DisruptionSpec("targeted", kwargs={"node_budget": 1}).model(), TargetedAttack
        )

    def test_multi_gaussian_epicenters_survive_freezing(self):
        from repro.api.requests import DisruptionSpec

        spec = DisruptionSpec(
            "multi-gaussian",
            kwargs={"variance": 5.0, "epicenters": ((0.0, 1.0), (2.0, 3.0))},
        )
        model = spec.model()
        assert model.epicenters == ((0.0, 1.0), (2.0, 3.0))

    def test_applied_is_non_mutating_for_new_kinds(self):
        import numpy as np

        from repro.api.requests import DisruptionSpec

        supply = grid_topology(4, 4)
        for spec in (
            DisruptionSpec("cascading", kwargs={"num_triggers": 1}),
            DisruptionSpec("targeted", kwargs={"node_budget": 2}),
            DisruptionSpec("multi-gaussian", kwargs={"variance": 2.0}),
        ):
            disrupted, report = spec.applied(supply, np.random.default_rng(3))
            assert not supply.broken_nodes and not supply.broken_edges
            assert disrupted.broken_nodes == {
                node for node in report.broken_nodes
            }
