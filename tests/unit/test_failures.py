"""Tests for the disruption models."""

import pytest

from repro.failures.base import FailureReport
from repro.failures.complete import CompleteDestruction
from repro.failures.geographic import GaussianDisruption, barycenter
from repro.failures.random_failures import UniformRandomFailure
from repro.topologies.grids import grid_topology


class TestFailureReport:
    def test_total_broken(self):
        report = FailureReport(
            broken_nodes=frozenset({"a"}), broken_edges=frozenset({("a", "b")})
        )
        assert report.total_broken == 2

    def test_empty(self):
        assert FailureReport().is_empty()


class TestCompleteDestruction:
    def test_everything_breaks(self, line_supply):
        report = CompleteDestruction().apply(line_supply)
        assert line_supply.broken_nodes == set(line_supply.nodes)
        assert len(line_supply.broken_edges) == line_supply.number_of_edges
        assert report.total_broken == 5 + 4

    def test_sample_does_not_mutate(self, line_supply):
        CompleteDestruction().sample(line_supply)
        assert not line_supply.broken_nodes
        assert not line_supply.broken_edges


class TestGaussianDisruption:
    def test_barycenter_of_grid(self):
        supply = grid_topology(3, 3)
        assert barycenter(supply) == pytest.approx((1.0, 1.0))

    def test_barycenter_requires_positions(self):
        from repro.network.supply import SupplyGraph

        supply = SupplyGraph()
        supply.add_node("a")
        with pytest.raises(ValueError):
            barycenter(supply)

    def test_probability_peaks_at_epicenter(self):
        model = GaussianDisruption(variance=10.0, intensity=0.8)
        assert model.failure_probability((0, 0), (0, 0)) == pytest.approx(0.8)

    def test_probability_decays_with_distance(self):
        model = GaussianDisruption(variance=10.0)
        near = model.failure_probability((1, 0), (0, 0))
        far = model.failure_probability((10, 0), (0, 0))
        assert near > far

    def test_larger_variance_breaks_more(self):
        supply = grid_topology(6, 6)
        small = GaussianDisruption(variance=0.2).sample(supply, seed=1)
        large = GaussianDisruption(variance=50.0).sample(supply, seed=1)
        assert large.total_broken >= small.total_broken

    def test_apply_marks_elements(self):
        supply = grid_topology(5, 5)
        report = GaussianDisruption(variance=100.0).apply(supply, seed=3)
        assert supply.broken_nodes == set(report.broken_nodes)
        assert supply.broken_edges == set(report.broken_edges)

    def test_deterministic_with_seed(self):
        supply = grid_topology(5, 5)
        a = GaussianDisruption(variance=5.0).sample(supply, seed=42)
        b = GaussianDisruption(variance=5.0).sample(supply, seed=42)
        assert a.broken_nodes == b.broken_nodes
        assert a.broken_edges == b.broken_edges

    def test_explicit_epicenter(self):
        supply = grid_topology(5, 5)
        model = GaussianDisruption(variance=0.3, epicenter=(0.0, 0.0))
        report = model.sample(supply, seed=2)
        # Failures concentrate near the chosen corner.
        assert all(
            (node[0] + node[1]) <= 6 for node in report.broken_nodes
        )

    def test_nodes_only(self):
        supply = grid_topology(4, 4)
        model = GaussianDisruption(variance=100.0, affect_edges=False)
        report = model.sample(supply, seed=1)
        assert not report.broken_edges

    def test_edges_only(self):
        supply = grid_topology(4, 4)
        model = GaussianDisruption(variance=100.0, affect_nodes=False)
        report = model.sample(supply, seed=1)
        assert not report.broken_nodes

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianDisruption(variance=0.0)
        with pytest.raises(ValueError):
            GaussianDisruption(variance=1.0, intensity=1.5)
        with pytest.raises(ValueError):
            GaussianDisruption(variance=1.0, affect_nodes=False, affect_edges=False)


class TestUniformRandomFailure:
    def test_zero_probability_breaks_nothing(self, line_supply):
        report = UniformRandomFailure(0.0, 0.0).sample(line_supply, seed=1)
        assert report.is_empty()

    def test_probability_one_breaks_everything(self, line_supply):
        report = UniformRandomFailure(1.0, 1.0).sample(line_supply, seed=1)
        assert report.total_broken == 9

    def test_deterministic_with_seed(self, grid3_supply):
        a = UniformRandomFailure(0.5, 0.5).sample(grid3_supply, seed=11)
        b = UniformRandomFailure(0.5, 0.5).sample(grid3_supply, seed=11)
        assert a.broken_nodes == b.broken_nodes

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            UniformRandomFailure(node_probability=1.5)
