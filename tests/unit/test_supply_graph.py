"""Tests for repro.network.supply.SupplyGraph."""

import networkx as nx
import pytest

from repro.network.supply import DEFAULT_CAPACITY, SupplyGraph, canonical_edge


class TestCanonicalEdge:
    def test_order_independent(self):
        assert canonical_edge("b", "a") == canonical_edge("a", "b")

    def test_mixed_types_are_stable(self):
        assert canonical_edge(2, 1) == canonical_edge(1, 2)

    def test_tuple_nodes(self):
        assert canonical_edge((1, 0), (0, 1)) == canonical_edge((0, 1), (1, 0))


class TestConstruction:
    def test_empty_graph(self):
        supply = SupplyGraph()
        assert supply.number_of_nodes == 0
        assert supply.number_of_edges == 0
        assert supply.max_degree == 0

    def test_add_node_with_position(self):
        supply = SupplyGraph()
        supply.add_node("a", pos=(1, 2))
        assert supply.position("a") == (1.0, 2.0)

    def test_add_node_without_position(self):
        supply = SupplyGraph()
        supply.add_node("a")
        assert supply.position("a") is None

    def test_add_edge_creates_missing_endpoints(self):
        supply = SupplyGraph()
        supply.add_edge("a", "b", capacity=5.0)
        assert "a" in supply and "b" in supply
        assert supply.capacity("a", "b") == 5.0

    def test_add_edge_default_capacity(self):
        supply = SupplyGraph()
        supply.add_edge("a", "b")
        assert supply.capacity("a", "b") == DEFAULT_CAPACITY

    def test_self_loop_rejected(self):
        supply = SupplyGraph()
        with pytest.raises(ValueError):
            supply.add_edge("a", "a")

    def test_non_positive_capacity_rejected(self):
        supply = SupplyGraph()
        with pytest.raises(ValueError):
            supply.add_edge("a", "b", capacity=0.0)

    def test_negative_repair_cost_rejected(self):
        supply = SupplyGraph()
        with pytest.raises(ValueError):
            supply.add_node("a", repair_cost=-1.0)

    def test_from_networkx(self):
        graph = nx.Graph()
        graph.add_node("x", pos=(0, 0), repair_cost=2.0)
        graph.add_node("y")
        graph.add_edge("x", "y", capacity=7.0, repair_cost=3.0, broken=True)
        supply = SupplyGraph(graph)
        assert supply.capacity("x", "y") == 7.0
        assert supply.edge_repair_cost("x", "y") == 3.0
        assert supply.node_repair_cost("x") == 2.0
        assert supply.is_broken_edge("x", "y")

    def test_directed_graph_rejected(self):
        with pytest.raises(ValueError):
            SupplyGraph(nx.DiGraph())

    def test_multigraph_rejected(self):
        with pytest.raises(ValueError):
            SupplyGraph(nx.MultiGraph())


class TestFailures:
    def test_break_and_repair_node(self, line_supply):
        line_supply.break_node("c")
        assert line_supply.is_broken_node("c")
        line_supply.repair_node("c")
        assert not line_supply.is_broken_node("c")

    def test_break_unknown_node(self, line_supply):
        with pytest.raises(KeyError):
            line_supply.break_node("zzz")

    def test_break_and_repair_edge(self, line_supply):
        line_supply.break_edge("a", "b")
        assert line_supply.is_broken_edge("b", "a")
        line_supply.repair_edge("b", "a")
        assert not line_supply.is_broken_edge("a", "b")

    def test_break_unknown_edge(self, line_supply):
        with pytest.raises(KeyError):
            line_supply.break_edge("a", "e")

    def test_break_all(self, line_supply):
        line_supply.break_all()
        assert line_supply.broken_nodes == set(line_supply.nodes)
        assert len(line_supply.broken_edges) == line_supply.number_of_edges

    def test_is_working_edge_accounts_for_endpoints(self, line_supply):
        assert line_supply.is_working_edge("a", "b")
        line_supply.break_node("a")
        assert not line_supply.is_working_edge("a", "b")

    def test_broken_sets_are_copies(self, line_supply):
        line_supply.break_node("a")
        snapshot = line_supply.broken_nodes
        snapshot.clear()
        assert line_supply.is_broken_node("a")


class TestCapacities:
    def test_residual_starts_at_nominal(self, line_supply):
        assert line_supply.residual("a", "b") == line_supply.capacity("a", "b")

    def test_consume_and_release(self, line_supply):
        line_supply.consume_capacity("a", "b", 4.0)
        assert line_supply.residual("a", "b") == pytest.approx(6.0)
        line_supply.release_capacity("a", "b", 2.0)
        assert line_supply.residual("a", "b") == pytest.approx(8.0)

    def test_release_capped_at_nominal(self, line_supply):
        line_supply.release_capacity("a", "b", 100.0)
        assert line_supply.residual("a", "b") == pytest.approx(10.0)

    def test_over_consumption_rejected(self, line_supply):
        with pytest.raises(ValueError):
            line_supply.consume_capacity("a", "b", 11.0)

    def test_consume_tolerates_float_noise(self, line_supply):
        line_supply.consume_capacity("a", "b", 10.0 + 1e-12)
        assert line_supply.residual("a", "b") == pytest.approx(0.0, abs=1e-9)

    def test_reset_residuals(self, line_supply):
        line_supply.consume_capacity("a", "b", 5.0)
        line_supply.reset_residuals()
        assert line_supply.residual("a", "b") == pytest.approx(10.0)

    def test_set_capacity_resets_residual(self, line_supply):
        line_supply.consume_capacity("a", "b", 5.0)
        line_supply.set_capacity("a", "b", 20.0)
        assert line_supply.residual("a", "b") == pytest.approx(20.0)

    def test_total_capacity(self, line_supply):
        assert line_supply.total_capacity() == pytest.approx(40.0)


class TestCosts:
    def test_default_costs_are_unit(self, line_supply):
        assert line_supply.node_repair_cost("a") == 1.0
        assert line_supply.edge_repair_cost("a", "b") == 1.0

    def test_set_costs(self, line_supply):
        line_supply.set_node_repair_cost("a", 5.0)
        line_supply.set_edge_repair_cost("a", "b", 2.5)
        assert line_supply.node_repair_cost("a") == 5.0
        assert line_supply.edge_repair_cost("a", "b") == 2.5

    def test_repair_cost_of(self, line_supply):
        cost = line_supply.repair_cost_of(["a", "b"], [("a", "b")])
        assert cost == pytest.approx(3.0)


class TestDerivedGraphs:
    def test_working_graph_excludes_broken(self, line_supply):
        line_supply.break_node("c")
        working = line_supply.working_graph()
        assert "c" not in working
        # Edges incident to the broken node disappear as well.
        assert not working.has_edge("b", "c")

    def test_working_graph_includes_repaired_extras(self, line_supply):
        line_supply.break_node("c")
        line_supply.break_edge("b", "c")
        working = line_supply.working_graph(extra_nodes={"c"}, extra_edges={("b", "c")})
        assert working.has_edge("b", "c")

    def test_working_graph_uses_residual(self, line_supply):
        line_supply.consume_capacity("a", "b", 4.0)
        working = line_supply.working_graph()
        assert working.edges["a", "b"]["capacity"] == pytest.approx(6.0)

    def test_working_graph_nominal_option(self, line_supply):
        line_supply.consume_capacity("a", "b", 4.0)
        working = line_supply.working_graph(use_residual=False)
        assert working.edges["a", "b"]["capacity"] == pytest.approx(10.0)

    def test_full_graph_keeps_broken(self, line_supply):
        line_supply.break_all()
        full = line_supply.full_graph()
        assert full.number_of_nodes() == 5
        assert full.number_of_edges() == 4

    def test_copy_is_independent(self, line_supply):
        clone = line_supply.copy()
        clone.break_node("a")
        clone.consume_capacity("a", "b", 5.0)
        assert not line_supply.is_broken_node("a")
        assert line_supply.residual("a", "b") == pytest.approx(10.0)

    def test_stats(self, line_supply):
        stats = line_supply.stats()
        assert stats["nodes"] == 5
        assert stats["edges"] == 4
        assert stats["connected"] is True
        assert stats["max_degree"] == 2

    def test_max_degree(self, grid3_supply):
        assert grid3_supply.max_degree == 4
