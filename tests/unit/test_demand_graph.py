"""Tests for repro.network.demand.DemandGraph."""

import pytest

from repro.network.demand import DemandGraph, DemandPair, canonical_pair


class TestDemandPair:
    def test_pair_is_canonical(self):
        pair = DemandPair(source="b", target="a", demand=3.0)
        assert pair.pair == canonical_pair("a", "b")

    def test_rejects_equal_endpoints(self):
        with pytest.raises(ValueError):
            DemandPair(source="a", target="a", demand=1.0)

    def test_rejects_non_positive_demand(self):
        with pytest.raises(ValueError):
            DemandPair(source="a", target="b", demand=0.0)


class TestAddAndAggregate:
    def test_add_single(self):
        demand = DemandGraph()
        demand.add("a", "b", 4.0)
        assert demand.demand("a", "b") == 4.0
        assert len(demand) == 1

    def test_reverse_direction_aggregates(self):
        demand = DemandGraph()
        demand.add("a", "b", 4.0)
        demand.add("b", "a", 6.0)
        assert demand.demand("a", "b") == 10.0
        assert len(demand) == 1

    def test_zero_demand_rejected(self):
        demand = DemandGraph()
        with pytest.raises(ValueError):
            demand.add("a", "b", 0.0)

    def test_self_pair_rejected(self):
        demand = DemandGraph()
        with pytest.raises(ValueError):
            demand.add("a", "a", 1.0)

    def test_constructor_from_pairs(self):
        pairs = [DemandPair("a", "b", 2.0), DemandPair("c", "d", 3.0)]
        demand = DemandGraph(pairs)
        assert demand.total_demand == 5.0


class TestReduce:
    def test_partial_reduce(self):
        demand = DemandGraph()
        demand.add("a", "b", 10.0)
        demand.reduce("a", "b", 4.0)
        assert demand.demand("a", "b") == pytest.approx(6.0)

    def test_full_reduce_removes_pair(self):
        demand = DemandGraph()
        demand.add("a", "b", 10.0)
        demand.reduce("b", "a", 10.0)
        assert not demand.has_pair("a", "b")
        assert demand.is_empty

    def test_near_full_reduce_removes_pair(self):
        demand = DemandGraph()
        demand.add("a", "b", 10.0)
        demand.reduce("a", "b", 10.0 - 1e-12)
        assert not demand.has_pair("a", "b")

    def test_over_reduce_rejected(self):
        demand = DemandGraph()
        demand.add("a", "b", 5.0)
        with pytest.raises(ValueError):
            demand.reduce("a", "b", 6.0)

    def test_reduce_unknown_pair_rejected(self):
        demand = DemandGraph()
        with pytest.raises(KeyError):
            demand.reduce("a", "b", 1.0)

    def test_remove_pair(self):
        demand = DemandGraph()
        demand.add("a", "b", 5.0)
        demand.remove_pair("b", "a")
        assert demand.is_empty

    def test_remove_missing_pair_is_noop(self):
        demand = DemandGraph()
        demand.remove_pair("a", "b")
        assert demand.is_empty


class TestSplit:
    def test_split_moves_demand(self):
        demand = DemandGraph()
        demand.add("s", "t", 10.0)
        demand.split("s", "t", "v", 4.0)
        assert demand.demand("s", "t") == pytest.approx(6.0)
        assert demand.demand("s", "v") == pytest.approx(4.0)
        assert demand.demand("v", "t") == pytest.approx(4.0)

    def test_split_preserves_total_plus_amount(self):
        demand = DemandGraph()
        demand.add("s", "t", 10.0)
        demand.split("s", "t", "v", 4.0)
        # Splitting adds one extra copy of the split amount (two legs).
        assert demand.total_demand == pytest.approx(14.0)

    def test_full_split_removes_original(self):
        demand = DemandGraph()
        demand.add("s", "t", 10.0)
        demand.split("s", "t", "v", 10.0)
        assert not demand.has_pair("s", "t")
        assert len(demand) == 2

    def test_split_on_endpoint_rejected(self):
        demand = DemandGraph()
        demand.add("s", "t", 10.0)
        with pytest.raises(ValueError):
            demand.split("s", "t", "s", 5.0)

    def test_split_more_than_demand_rejected(self):
        demand = DemandGraph()
        demand.add("s", "t", 10.0)
        with pytest.raises(ValueError):
            demand.split("s", "t", "v", 11.0)


class TestAccessors:
    def test_endpoints(self):
        demand = DemandGraph()
        demand.add("a", "b", 1.0)
        demand.add("b", "c", 1.0)
        assert demand.endpoints == {"a", "b", "c"}

    def test_total_demand(self):
        demand = DemandGraph()
        demand.add("a", "b", 1.5)
        demand.add("c", "d", 2.5)
        assert demand.total_demand == pytest.approx(4.0)

    def test_iteration_yields_pairs(self):
        demand = DemandGraph()
        demand.add("a", "b", 1.0)
        pairs = list(demand)
        assert len(pairs) == 1
        assert isinstance(pairs[0], DemandPair)

    def test_contains(self):
        demand = DemandGraph()
        demand.add("a", "b", 1.0)
        assert ("b", "a") in demand
        assert ("a", "c") not in demand

    def test_copy_is_independent(self):
        demand = DemandGraph()
        demand.add("a", "b", 5.0)
        clone = demand.copy()
        clone.reduce("a", "b", 5.0)
        assert demand.demand("a", "b") == 5.0

    def test_as_dict_snapshot(self):
        demand = DemandGraph()
        demand.add("a", "b", 5.0)
        snapshot = demand.as_dict()
        snapshot.clear()
        assert demand.demand("a", "b") == 5.0

    def test_validate_against_passes(self):
        demand = DemandGraph()
        demand.add("a", "b", 1.0)
        demand.validate_against(["a", "b", "c"])

    def test_validate_against_fails(self):
        demand = DemandGraph()
        demand.add("a", "z", 1.0)
        with pytest.raises(ValueError, match="z"):
            demand.validate_against(["a", "b"])

    def test_demand_of_unknown_pair_is_zero(self):
        demand = DemandGraph()
        assert demand.demand("x", "y") == 0.0
