"""Unit tests of the HTTP front end, driven through the ServiceClient.

The server runs on a background thread with its own event loop and a real
TCP socket, so these tests exercise the actual wire protocol (request
parsing, status codes, content types) without spawning worker processes.
"""

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.api.requests import (
    AssessmentRequest,
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
)
from repro.obs.trace import TRACE_HEADER, normalize_trace_id, render_trace
from repro.server.client import ServiceClient, ServiceError
from repro.server.http import RecoveryServer
from repro.server.store import JobStore
from repro.server.stores import open_store


def grid_request(seed: int = 1) -> RecoveryRequest:
    return RecoveryRequest(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(num_pairs=1, flow_per_pair=5.0),
        algorithms=("ISP",),
        seed=seed,
    )


class ServerHarness:
    """A front end on a background event-loop thread, plus its client."""

    def __init__(self, store: JobStore, **kwargs) -> None:
        self.store = store
        self.kwargs = kwargs
        self._ready = threading.Event()
        self._stop: asyncio.Event = None
        self._loop: asyncio.AbstractEventLoop = None
        self.server: RecoveryServer = None
        self.client: ServiceClient = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self.server = RecoveryServer(self.store, **self.kwargs)
            await self.server.start(port=0)
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.server.stop()

        asyncio.run(main())

    def __enter__(self) -> "ServerHarness":
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        self.client = ServiceClient(f"http://127.0.0.1:{self.server.port}", timeout=10.0)
        return self

    def __exit__(self, *_: object) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


@pytest.fixture()
def store(tmp_path):
    with JobStore(tmp_path / "jobs.db") as handle:
        yield handle


@pytest.fixture()
def harness(store):
    with ServerHarness(store, workers_alive=lambda: 2) as running:
        yield running


class TestSubmission:
    def test_solve_accepts_and_persists_the_job(self, harness, store):
        response = harness.client.solve(grid_request())
        assert response["deduplicated"] is False
        digest = response["job"]["digest"]
        assert digest == grid_request().digest()
        assert store.get(digest).state == "queued"

    def test_duplicate_solve_is_a_dedup_hit(self, harness):
        harness.client.solve(grid_request())
        response = harness.client.solve(grid_request())
        assert response["deduplicated"] is True
        assert harness.server.dedup_hits == 1

    def test_dedup_of_a_done_job_returns_the_result_inline(self, harness, store):
        harness.client.solve(grid_request())
        record = store.claim("w0")
        store.complete(record.digest, {"kind": "recovery-result", "results": []})
        response = harness.client.solve(grid_request())
        assert response["deduplicated"] is True
        assert response["job"]["state"] == "done"
        assert response["job"]["result"]["kind"] == "recovery-result"

    def test_assess_round_trips(self, harness, store):
        request = AssessmentRequest(
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
            disruption=DisruptionSpec("gaussian", kwargs={"variance": 2.0}),
            seed=2,
        )
        response = harness.client.assess(request)
        assert store.get(response["job"]["digest"]).kind == "assessment"

    def test_batch_submits_and_dedups(self, harness, store):
        requests = [grid_request(seed=1), grid_request(seed=2), grid_request(seed=1)]
        response = harness.client.batch(requests)
        assert len(response["jobs"]) == 3
        flags = [job["deduplicated"] for job in response["jobs"]]
        assert flags == [False, False, True]
        assert store.queue_depth() == 2

    def test_batch_accepts_mixed_solve_and_assess_requests(self, harness, store):
        assessment = AssessmentRequest(
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
            disruption=DisruptionSpec("gaussian", kwargs={"variance": 2.0}),
            seed=4,
        )
        response = harness.client.batch([grid_request().to_dict(), assessment.to_dict()])
        kinds = {store.get(job["job"]["digest"]).kind for job in response["jobs"]}
        assert kinds == {"recovery", "assessment"}

    def test_retrying_a_failed_job_is_a_202_not_a_dedup_hit(self, harness, store):
        harness.client.solve(grid_request())
        record = store.claim("w0")
        store.fail(record.digest, "boom")
        response = harness.client.solve(grid_request())
        # the retry requeues a fresh execution: not deduplicated, counted 202
        assert response["deduplicated"] is False
        assert response["job"]["state"] == "queued"
        assert harness.server.dedup_hits == 0
        assert harness.server.http_requests[("/v1/solve", 202)] == 2


class TestValidation:
    def test_unknown_topology_is_a_400_with_the_schema_error(self, harness):
        payload = grid_request().to_dict()
        payload["topology"]["name"] = "atlantis"
        with pytest.raises(ServiceError) as excinfo:
            harness.client.solve(payload)
        assert excinfo.value.status == 400
        assert "unknown topology" in str(excinfo.value)

    def test_invalid_json_body_is_a_400(self, harness):
        url = f"{harness.client.base_url}/v1/solve"
        request = urllib.request.Request(
            url, data=b"{not json", headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_wrong_kind_on_solve_is_a_400(self, harness):
        payload = grid_request().to_dict()
        payload["kind"] = "assessment"
        with pytest.raises(ServiceError) as excinfo:
            harness.client.solve(payload)
        assert excinfo.value.status == 400

    def test_batch_without_requests_is_a_400(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client._call("POST", "/v1/batch", {"requests": []})
        assert excinfo.value.status == 400

    def test_batch_reports_the_offending_index(self, harness):
        good = grid_request().to_dict()
        bad = grid_request().to_dict()
        bad["algorithms"] = ["NOPE"]
        with pytest.raises(ServiceError) as excinfo:
            harness.client.batch([good, bad])
        assert excinfo.value.status == 400
        assert "requests[1]" in str(excinfo.value)

    def test_unknown_path_is_a_404(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client._call("GET", "/v2/everything")
        assert excinfo.value.status == 404

    def test_unknown_job_is_a_404(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client.job("0" * 64)
        assert excinfo.value.status == 404

    def test_wrong_method_is_a_405(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client._call("POST", "/healthz", {})
        assert excinfo.value.status == 405

    def test_oversized_body_is_a_400(self, store):
        with ServerHarness(store, max_body_bytes=64) as harness:
            with pytest.raises(ServiceError) as excinfo:
                harness.client.solve(grid_request())
            assert excinfo.value.status == 400
            assert "exceeds" in str(excinfo.value)


class TestAdmissionControl:
    def test_queue_full_rejects_new_submissions_with_429(self, store):
        with ServerHarness(store, max_queue_depth=1) as harness:
            harness.client.solve(grid_request(seed=1))
            with pytest.raises(ServiceError) as excinfo:
                harness.client.solve(grid_request(seed=2))
            assert excinfo.value.status == 429
            assert excinfo.value.payload["max_queue_depth"] == 1

    def test_dedup_hits_are_admitted_even_when_full(self, store):
        with ServerHarness(store, max_queue_depth=1) as harness:
            harness.client.solve(grid_request(seed=1))
            response = harness.client.solve(grid_request(seed=1))
            assert response["deduplicated"] is True

    def test_batch_admission_counts_only_fresh_jobs(self, store):
        with ServerHarness(store, max_queue_depth=2) as harness:
            harness.client.solve(grid_request(seed=1))
            # one dedup + one fresh fits depth 2; two fresh would not
            response = harness.client.batch([grid_request(seed=1), grid_request(seed=2)])
            assert len(response["jobs"]) == 2
            with pytest.raises(ServiceError) as excinfo:
                harness.client.batch([grid_request(seed=3), grid_request(seed=4)])
            assert excinfo.value.status == 429


class _DrainingDepthStore:
    """A store whose queue depth drops between reads (workers draining).

    Scripted depths are served one per ``queue_depth`` call; the regression
    under test is that the 429 path reads the depth exactly once, so the
    rejection body reports the depth that *triggered* the rejection rather
    than whatever a second read would see.
    """

    def __init__(self, inner, depths):
        self._inner = inner
        self._depths = list(depths)
        self.depth_calls = 0

    def queue_depth(self):
        self.depth_calls += 1
        if self._depths:
            return self._depths.pop(0)
        return self._inner.queue_depth()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestRejectionDepthConsistency:
    def test_submit_429_reports_the_depth_that_triggered_it(self, store):
        wrapped = _DrainingDepthStore(store, depths=[3, 0])
        server = RecoveryServer(wrapped, max_queue_depth=2)
        status, body, _ = server._submit(grid_request(seed=9).to_dict(), RecoveryRequest)
        assert status == 429
        assert body["queue_depth"] == 3  # the triggering depth, not the later 0
        assert wrapped.depth_calls == 1

    def test_batch_429_reports_the_depth_that_triggered_it(self, store):
        wrapped = _DrainingDepthStore(store, depths=[3, 0])
        server = RecoveryServer(wrapped, max_queue_depth=2)
        payload = {"requests": [grid_request(seed=8).to_dict(), grid_request(seed=9).to_dict()]}
        status, body, _ = server._batch(payload)
        assert status == 429
        assert body["queue_depth"] == 3
        assert wrapped.depth_calls == 1


class TestShardedEnqueueNotifications:
    @pytest.fixture()
    def sharded(self, tmp_path):
        with open_store(tmp_path / "fleet.db", shards=3) as handle:
            yield handle

    def test_notify_carries_the_owning_shards(self, sharded):
        seen = []
        server = RecoveryServer(sharded, on_enqueue=lambda shards=None: seen.append(shards))
        status, _, _ = server._submit(grid_request(seed=1).to_dict(), RecoveryRequest)
        assert status == 202
        digest = grid_request(seed=1).digest()
        assert seen == [[sharded.shard_of(digest)]]

    def test_batch_notify_merges_shards_without_duplicates(self, sharded):
        seen = []
        server = RecoveryServer(sharded, on_enqueue=lambda shards=None: seen.append(shards))
        requests = [grid_request(seed=index).to_dict() for index in range(6)]
        status, _, _ = server._batch({"requests": requests})
        assert status == 202
        [shards] = seen  # one nudge for the whole burst
        expected = sorted(
            {sharded.shard_of(grid_request(seed=index).digest()) for index in range(6)}
        )
        assert shards == expected

    def test_zero_arg_callbacks_still_work_on_a_sharded_store(self, sharded):
        nudges = []
        server = RecoveryServer(sharded, on_enqueue=lambda: nudges.append(1))
        status, _, _ = server._submit(grid_request(seed=2).to_dict(), RecoveryRequest)
        assert status == 202
        assert nudges == [1]


class TestObservation:
    def test_job_view_round_trips_the_request(self, harness):
        submitted = harness.client.solve(grid_request())
        view = harness.client.job(submitted["job"]["digest"])
        assert view["state"] == "queued"
        rebuilt = RecoveryRequest.from_dict(view["request"])
        assert rebuilt == grid_request()

    def test_healthz_reports_queue_and_workers(self, harness):
        harness.client.solve(grid_request())
        health = harness.client.healthz()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 1
        assert health["workers_alive"] == 2
        assert health["jobs"]["queued"] == 1

    def test_healthz_degrades_when_the_expected_fleet_is_dead(self, store):
        with ServerHarness(
            store, workers_alive=lambda: 0, expected_workers=2
        ) as harness:
            assert harness.client.healthz()["status"] == "degraded"

    def test_metrics_exposition_is_wellformed_prometheus(self, harness, store):
        harness.client.solve(grid_request())
        record = store.claim("w0")
        store.complete(record.digest, {})
        store.record_worker_stats(
            "w0", {"topology_cache_hits": 3, "topology_cache_misses": 1, "jobs_done": 1}
        )
        text = harness.client.metrics()
        lines = text.strip().splitlines()
        samples = [line for line in lines if not line.startswith("#")]
        for line in samples:
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample line ends in a number
            assert name_part.startswith("repro_")
        assert 'repro_jobs_total{state="done"} 1' in lines
        assert "repro_topology_cache_hits_total 3" in lines
        assert "repro_topology_cache_misses_total 1" in lines
        assert "repro_solve_latency_seconds_count 1" in lines
        bucket_lines = [l for l in lines if "solve_latency_seconds_bucket" in l]
        assert bucket_lines[-1].startswith('repro_solve_latency_seconds_bucket{le="+Inf"}')

    def test_http_request_counter_labels_jobs_uniformly(self, harness):
        submitted = harness.client.solve(grid_request())
        harness.client.job(submitted["job"]["digest"])
        with pytest.raises(ServiceError):
            harness.client.job("0" * 64)
        counters = harness.server.http_requests
        assert counters[("/v1/jobs", 200)] == 1
        assert counters[("/v1/jobs", 404)] == 1
        assert counters[("/v1/solve", 202)] == 1

    def test_metrics_content_type_is_text(self, harness):
        with urllib.request.urlopen(
            f"{harness.client.base_url}/metrics", timeout=5
        ) as response:
            assert response.headers.get("Content-Type", "").startswith("text/plain")
            json.dumps(response.read().decode())  # readable text


def _post_raw(base_url: str, path: str, payload: dict):
    """POST and return (status, raw body bytes) — for byte-equality checks."""
    request = urllib.request.Request(
        f"{base_url}{path}",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, response.read()


def _complete_via_worker(store: JobStore, digest: str, result: dict) -> None:
    record = store.claim("w0")
    assert record is not None and record.digest == digest
    assert store.complete(digest, result, worker="w0")


class TestFastPath:
    def test_done_submission_is_byte_equal_to_the_uncached_envelope(self, harness, store):
        harness.client.solve(grid_request())
        _complete_via_worker(store, grid_request().digest(), {"answer": 42})
        status, raw = _post_raw(
            harness.client.base_url, "/v1/solve", grid_request().to_dict()
        )
        assert status == 200
        expected = json.dumps(
            {
                "job": store.get(grid_request().digest()).to_dict(include_request=False),
                "deduplicated": True,
            },
            indent=2,
        ).encode("utf-8")
        assert raw == expected
        # the second hit comes straight from the LRU — still byte-equal
        status, again = _post_raw(
            harness.client.base_url, "/v1/solve", grid_request().to_dict()
        )
        assert status == 200 and again == expected
        assert harness.server.envelope_cache_hits >= 1

    def test_job_view_of_a_done_digest_is_byte_equal_from_cache(self, harness, store):
        harness.client.solve(grid_request())
        digest = grid_request().digest()
        _complete_via_worker(store, digest, {"answer": 1})
        expected = json.dumps(
            {"job": store.get(digest).to_dict()}, indent=2
        ).encode("utf-8")
        for _ in range(2):  # miss then hit
            with urllib.request.urlopen(
                f"{harness.client.base_url}/v1/jobs/{digest}", timeout=5
            ) as response:
                assert response.read() == expected

    def test_fast_path_counts_without_touching_the_queue(self, harness, store):
        harness.client.solve(grid_request())
        _complete_via_worker(store, grid_request().digest(), {})
        depth_before = store.queue_depth()
        response = harness.client.solve(grid_request())
        assert response["deduplicated"] is True
        assert harness.server.fast_path_hits == 1
        assert harness.server.dedup_hits == 1
        assert store.queue_depth() == depth_before

    def test_pending_dedup_is_not_a_fast_path_hit(self, harness):
        harness.client.solve(grid_request())
        response = harness.client.solve(grid_request())  # still queued
        assert response["deduplicated"] is True
        assert harness.server.dedup_hits == 1
        assert harness.server.fast_path_hits == 0

    def test_batch_fast_paths_done_digests(self, harness, store):
        harness.client.solve(grid_request(seed=1))
        _complete_via_worker(store, grid_request(seed=1).digest(), {"done": True})
        depth_before = store.queue_depth()
        response = harness.client.batch([grid_request(seed=1), grid_request(seed=2)])
        flags = [job["deduplicated"] for job in response["jobs"]]
        assert flags == [True, False]
        assert harness.server.fast_path_hits == 1
        assert store.queue_depth() == depth_before + 1  # only the fresh job queued

    def test_envelope_cache_is_bounded(self, store):
        with ServerHarness(
            store, workers_alive=lambda: 1, envelope_cache_size=1
        ) as harness:
            for seed in (1, 2):
                harness.client.solve(grid_request(seed=seed))
                _complete_via_worker(store, grid_request(seed=seed).digest(), {})
                harness.client.solve(grid_request(seed=seed))
            assert len(harness.server._done_cache) == 1
            assert harness.server.envelope_cache_misses == 2


class TestPortfolioCacheability:
    """Pending portfolio envelopes are served fresh, never memoised."""

    def _pending(self) -> dict:
        return {"results": [], "portfolio": {"stage": "heuristic", "pending": ["OPT"]}}

    def _final(self) -> dict:
        return {"results": [], "portfolio": {"stage": "exact", "pending": []}}

    def test_cacheable_judges_the_pending_annotation(self, store):
        store.submit(grid_request())
        record = store.claim("w0")
        store.complete(record.digest, self._pending(), worker="w0")
        assert not RecoveryServer._cacheable(store.get(record.digest))
        store.upgrade_result(record.digest, self._final(), worker="w0")
        assert RecoveryServer._cacheable(store.get(record.digest))

    def test_pending_envelope_is_not_fast_path_cached(self, harness, store):
        """A done-but-pending row must be re-read so upgrades are visible."""
        harness.client.solve(grid_request())
        digest = grid_request().digest()
        _complete_via_worker(store, digest, self._pending())

        response = harness.client.solve(grid_request())  # dedup of a pending row
        assert response["deduplicated"] is True
        assert response["job"]["result"]["portfolio"]["pending"] == ["OPT"]
        assert harness.server.fast_path_hits == 0
        assert digest not in harness.server._done_cache

        # the in-place upgrade is immediately visible to clients
        assert store.upgrade_result(digest, self._final(), worker="w0")
        view = harness.client.job(digest)
        assert view["result"]["portfolio"]["stage"] == "exact"
        upgraded = harness.client.solve(grid_request())
        assert upgraded["job"]["result"]["portfolio"]["pending"] == []
        assert harness.server.fast_path_hits >= 1


class TestKeepAlive:
    def test_one_connection_serves_many_requests(self, harness):
        for _ in range(3):
            harness.client.healthz()
        assert harness.server.connections_total == 1
        assert harness.server.keepalive_reuse == 2

    def test_connection_close_header_is_honored(self, harness):
        # urllib sends Connection: close, so every request is a new socket
        for _ in range(2):
            with urllib.request.urlopen(
                f"{harness.client.base_url}/healthz", timeout=5
            ) as response:
                assert response.headers.get("Connection") == "close"
        assert harness.server.connections_total == 2
        assert harness.server.keepalive_reuse == 0

    def test_client_survives_a_server_side_idle_close(self, store):
        import time as _time

        with ServerHarness(
            store, workers_alive=lambda: 1, idle_timeout=0.2
        ) as harness:
            assert harness.client.healthz()["status"] == "ok"
            _time.sleep(0.6)  # the daemon reaps the idle keep-alive socket
            assert harness.client.healthz()["status"] == "ok"  # retried on a fresh one
            assert harness.server.connections_total == 2


class TestEnqueueNotification:
    def test_on_enqueue_fires_only_for_fresh_queue_work(self, store):
        nudges = []
        with ServerHarness(
            store, workers_alive=lambda: 1, on_enqueue=lambda: nudges.append(1)
        ) as harness:
            harness.client.solve(grid_request(seed=1))
            assert len(nudges) == 1
            harness.client.solve(grid_request(seed=1))  # dedup: nothing enqueued
            assert len(nudges) == 1
            harness.client.batch([grid_request(seed=2), grid_request(seed=3)])
            assert len(nudges) == 2  # one nudge per batch, not per item


class TestReadiness:
    def test_workers_ready_counts_stats_beacons(self, store):
        with ServerHarness(
            store,
            workers_alive=lambda: 2,
            worker_ids=lambda: ["w-a", "w-b"],
        ) as harness:
            assert harness.client.healthz()["workers_ready"] == 0
            store.record_worker_stats("w-a", {"jobs_done": 0})
            assert harness.client.healthz()["workers_ready"] == 1
            store.record_worker_stats("w-b", {"jobs_done": 0})
            store.record_worker_stats("w-stale", {"jobs_done": 0})  # not in the fleet
            assert harness.client.healthz()["workers_ready"] == 2

    def test_new_counters_appear_in_metrics(self, harness, store):
        harness.client.solve(grid_request())
        _complete_via_worker(store, grid_request().digest(), {})
        harness.client.solve(grid_request())
        text = harness.client.metrics()
        for name in (
            "repro_fast_path_hits_total",
            "repro_http_connections_total",
            "repro_keepalive_reuse_total",
            "repro_envelope_cache_hits_total",
            "repro_envelope_cache_misses_total",
            "repro_envelope_cache_size",
            "repro_claim_batches_total",
            "repro_claim_batch_jobs_total",
            "repro_warm_topology_loads_total",
            "repro_warm_topology_saves_total",
        ):
            assert name in text
        assert "repro_fast_path_hits_total 1" in text


def _raw_call(base_url: str, path: str, payload=None, trace_header=None):
    """(status, body bytes, headers) with an optional inbound trace header."""
    headers = {"Content-Type": "application/json"}
    if trace_header is not None:
        headers[TRACE_HEADER] = trace_header
    request = urllib.request.Request(
        f"{base_url}{path}",
        data=json.dumps(payload).encode("utf-8") if payload is not None else None,
        method="POST" if payload is not None else "GET",
        headers=headers,
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, response.read(), dict(response.headers)


class TestTracing:
    """The cross-process trace surface: header echo, persistence, /v1/trace."""

    def test_every_response_echoes_a_minted_trace_id(self, harness):
        status, _, headers = _raw_call(
            harness.client.base_url, "/v1/solve", grid_request().to_dict()
        )
        assert status == 202
        minted = headers.get(TRACE_HEADER)
        assert normalize_trace_id(minted) == minted  # well-formed, usable

    def test_inbound_trace_id_is_accepted_and_stamped_on_the_job(self, harness, store):
        status, body, headers = _raw_call(
            harness.client.base_url,
            "/v1/solve",
            grid_request().to_dict(),
            trace_header="caller-trace-0001",
        )
        assert status == 202
        assert headers.get(TRACE_HEADER) == "caller-trace-0001"
        digest = json.loads(body)["job"]["digest"]
        assert store.get(digest).trace_id == "caller-trace-0001"

    def test_garbage_inbound_trace_id_is_replaced_not_rejected(self, harness):
        status, _, headers = _raw_call(
            harness.client.base_url,
            "/v1/solve",
            grid_request().to_dict(),
            trace_header="bad header!!",
        )
        assert status == 202  # tracing never 400s
        echoed = headers.get(TRACE_HEADER)
        assert echoed and echoed != "bad header!!"

    def test_trace_endpoint_merges_frontend_and_worker_sources(self, harness, store):
        _raw_call(
            harness.client.base_url,
            "/v1/solve",
            grid_request().to_dict(),
            trace_header="caller-trace-0002",
        )
        digest = grid_request().digest()
        # a worker would persist its own tree after executing the job
        store.save_spans(
            digest,
            "worker",
            {
                "trace_id": "caller-trace-0002",
                "pid": 99,
                "spans": [{"name": "worker.execute", "wall_seconds": 0.2, "cpu_seconds": 0.2}],
                "dropped_spans": 0,
            },
            trace_id="caller-trace-0002",
        )
        doc = harness.client.trace(digest)
        assert doc["digest"] == digest
        assert doc["trace_id"] == "caller-trace-0002"
        assert set(doc["sources"]) == {"frontend", "worker"}
        frontend_roots = [node["name"] for node in doc["sources"]["frontend"]["spans"]]
        assert frontend_roots == ["http.request"]
        children = {
            node["name"]
            for node in doc["sources"]["frontend"]["spans"][0].get("children", [])
        }
        assert {"http.read", "http.parse", "http.enqueue"} <= children
        assert doc["sources"]["frontend"]["trace_id"] == "caller-trace-0002"
        # the merged doc renders (smoke: the CLI path consumes exactly this)
        assert "worker.execute" in render_trace(doc)

    def test_trace_of_an_unknown_digest_is_a_404(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client.trace("0" * 64)
        assert excinfo.value.status == 404
        assert harness.server.http_requests[("/v1/trace", 404)] == 1

    def test_trace_requests_count_under_a_normalized_path(self, harness):
        harness.client.solve(grid_request())
        harness.client.trace(grid_request().digest())
        assert harness.server.http_requests[("/v1/trace", 200)] == 1

    def test_batch_persists_the_shared_trace_under_each_fresh_digest(
        self, harness, store
    ):
        _raw_call(
            harness.client.base_url,
            "/v1/batch",
            {"requests": [grid_request(seed=1).to_dict(), grid_request(seed=2).to_dict()]},
            trace_header="caller-batch-0001",
        )
        for seed in (1, 2):
            digest = grid_request(seed=seed).digest()
            assert store.get(digest).trace_id == "caller-batch-0001"
            sources = store.load_spans(digest)
            assert sources["frontend"]["trace_id"] == "caller-batch-0001"

    def test_trace_header_never_perturbs_the_digest(self, harness, store):
        """Golden: same request with three different trace headers, one job."""
        digests = set()
        for trace_header in (None, "caller-trace-000a", "caller-trace-000b"):
            _, body, _ = _raw_call(
                harness.client.base_url,
                "/v1/solve",
                grid_request(seed=5).to_dict(),
                trace_header=trace_header,
            )
            digests.add(json.loads(body)["job"]["digest"])
        assert digests == {grid_request(seed=5).digest()}
        assert store.queue_depth() == 1

    def test_fast_path_bodies_stay_byte_identical_across_trace_ids(
        self, harness, store
    ):
        """Golden: telemetry rides the header; cached bodies never vary."""
        harness.client.solve(grid_request())
        _complete_via_worker(store, grid_request().digest(), {"answer": 42})
        bodies = set()
        for trace_header in ("caller-trace-00aa", "caller-trace-00bb", None):
            status, body, headers = _raw_call(
                harness.client.base_url,
                "/v1/solve",
                grid_request().to_dict(),
                trace_header=trace_header,
            )
            assert status == 200
            if trace_header:  # the echo still works on cached serves
                assert headers.get(TRACE_HEADER) == trace_header
            bodies.add(body)
        # the envelope carries the *job row's* trace_id (set at creation),
        # which is identical however later fetches are traced
        assert len(bodies) == 1
        assert harness.server.envelope_cache_hits >= 1


class TestStageMetrics:
    def test_healthz_reports_the_store_layout(self, harness):
        health = harness.client.healthz()
        assert health["store"] == {
            "backend": "sqlite",
            "shards": 1,
            "shard_queue_depths": [0],
        }

    def test_stage_histograms_appear_after_a_completed_job(self, harness, store):
        harness.client.solve(grid_request())
        _complete_via_worker(store, grid_request().digest(), {"answer": 1})
        text = harness.client.metrics()
        for name in (
            "repro_queue_wait_seconds",
            "repro_serialize_seconds",
            "repro_served_latency_seconds",
        ):
            assert f"{name}_count 1" in text
            assert f'{name}_bucket{{le="+Inf"}} 1' in text
            assert f"{name}_sum" in text

    def test_slow_request_counter_and_threshold_gauge(self, store):
        with ServerHarness(
            store, workers_alive=lambda: 1, slow_request_threshold=1e-9
        ) as harness:
            harness.client.solve(grid_request())  # any request is "slow" now
            assert harness.server.slow_requests >= 1
            text = harness.client.metrics()
            assert "repro_slow_requests_total" in text
            assert "repro_slow_request_threshold_seconds 1e-09" in text

    def test_default_threshold_keeps_fast_requests_unflagged(self, harness):
        harness.client.solve(grid_request())
        assert harness.server.slow_requests == 0
