"""Backend parity suite for the solver substrate.

Every registered backend must be interchangeable: identical routability
verdicts, identical repair counts and identical evaluation metrics on the
tier-1 scenarios.  The suite parametrises over ``available_backends()`` so
the CI leg that installs ``highspy`` exercises the direct HiGHS backend with
the same assertions (locally only ``scipy`` may be present).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.tasks import execute_task, expand_tasks
from repro.evaluation.metrics import evaluate_plan
from repro.failures.complete import CompleteDestruction
from repro.flows.lp_backend import Commodity, FlowProblem
from repro.flows.milp import solve_minimum_recovery
from repro.flows.multicommodity import solve_multicommodity_recovery
from repro.flows.routability import routability_test
from repro.flows.solver.backends import (
    BACKEND_ENV_VAR,
    available_backends,
    default_backend_name,
    get_backend,
    set_default_backend,
)
from repro.flows.solver.incremental import (
    IncrementalFlowProblem,
    SolverContext,
    StructureCache,
    build_flow_problem,
    clear_structure_cache,
    shared_structure_cache,
    topology_signature,
)
from repro.flows.solver.stats import collect_solver_stats
from repro.flows.splitting_lp import maximum_splittable_amount
from repro.heuristics.registry import get_algorithm
from repro.network.demand import DemandGraph
from repro.topologies.grids import grid_topology

BACKENDS = available_backends()


@pytest.fixture(autouse=True)
def _reset_backend_selection(monkeypatch):
    """Keep backend selection hermetic per test."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)


def broken_grid_instance():
    """3x3 grid, complete destruction, two hand-checkable demands."""
    supply = grid_topology(3, 3, capacity=10.0)
    CompleteDestruction().apply(supply)
    demand = DemandGraph()
    demand.add((0, 0), (2, 2), 5.0)
    demand.add((0, 2), (2, 0), 3.0)
    return supply, demand


class TestRegistry:
    def test_scipy_is_always_available(self):
        assert "scipy" in BACKENDS
        assert get_backend("scipy").name == "scipy"

    def test_default_resolution_order(self, monkeypatch):
        assert default_backend_name() == "scipy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "scipy")
        assert default_backend_name() == "scipy"
        set_default_backend("scipy")
        assert default_backend_name() == "scipy"

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown LP backend"):
            get_backend("glpk")
        with pytest.raises(KeyError):
            set_default_backend("glpk")

    def test_env_var_selects_backend_at_solve_time(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "glpk")
        with pytest.raises(KeyError):
            get_backend()

    def test_backend_instance_passes_through(self):
        backend = get_backend("scipy")
        assert get_backend(backend) is backend


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestBackendParity:
    """Every backend must reproduce the scipy reference results exactly."""

    def test_routability_verdicts(self, backend_name):
        supply, demand = broken_grid_instance()
        working = supply.working_graph()  # everything broken: unroutable
        full = supply.full_graph(use_residual=False)
        assert not routability_test(working, demand, backend=backend_name).routable
        outcome = routability_test(full, demand, want_flows=True, backend=backend_name)
        assert outcome.routable
        # The routing must satisfy every demand exactly.
        for commodity, flows in zip(outcome.commodities, outcome.flows):
            outflow = sum(
                value for (u, _), value in flows.items() if u == commodity.source
            )
            assert outflow == pytest.approx(commodity.demand, abs=1e-6)

    def test_isp_repairs_and_metrics_match_reference(self, backend_name):
        supply, demand = broken_grid_instance()
        reference_plan = get_algorithm("ISP").solve(supply, demand)
        reference = evaluate_plan(supply, demand, reference_plan)

        set_default_backend(backend_name)
        plan = get_algorithm("ISP").solve(supply, demand)
        evaluation = evaluate_plan(supply, demand, plan)

        # Repair *counts* and metrics must agree; the exact element sets may
        # legitimately differ between backends when an LP has alternate
        # optima (different optimal vertices give different routings).
        assert evaluation.node_repairs == reference.node_repairs
        assert evaluation.edge_repairs == reference.edge_repairs
        assert evaluation.total_repairs == reference.total_repairs
        assert evaluation.satisfied_percentage == pytest.approx(
            reference.satisfied_percentage, abs=1e-6
        )
        assert evaluation.repair_cost == pytest.approx(reference.repair_cost, abs=1e-6)

    def test_split_amount_matches_reference(self, backend_name):
        supply, demand = broken_grid_instance()
        full = supply.full_graph(use_residual=False)
        reference = maximum_splittable_amount(full, demand, ((0, 0), (2, 2)), (1, 1))
        amount = maximum_splittable_amount(
            full, demand, ((0, 0), (2, 2)), (1, 1), backend=backend_name
        )
        assert amount == pytest.approx(reference, abs=1e-6)

    def test_milp_objective_matches_reference(self, backend_name):
        supply, demand = broken_grid_instance()
        reference = solve_minimum_recovery(supply, demand)
        solution = solve_minimum_recovery(supply, demand, backend=backend_name)
        assert solution.status == reference.status == "optimal"
        assert solution.objective == pytest.approx(reference.objective, abs=1e-6)

    def test_multicommodity_relaxation_is_feasible(self, backend_name):
        supply, demand = broken_grid_instance()
        result = solve_multicommodity_recovery(supply, demand, backend=backend_name)
        assert result.feasible
        assert result.objective == pytest.approx(
            solve_multicommodity_recovery(supply, demand).objective, rel=1e-6
        )

    def test_engine_cell_metrics_match_reference(self, backend_name, monkeypatch):
        from repro.api.requests import DemandSpec, DisruptionSpec, TopologySpec
        from repro.engine.spec import ExperimentSpec, SweepAxis

        spec = ExperimentSpec(
            name="parity-grid",
            figure="Unit",
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3, "capacity": 10.0}),
            disruption=DisruptionSpec("complete"),
            demand=DemandSpec("random", num_pairs=2, flow_per_pair=5.0),
            sweep=SweepAxis(parameter="num_pairs", values=(2,), target="demand.num_pairs"),
            algorithms=("ISP", "SRT"),
        )
        tasks = expand_tasks(spec, seed=5)
        reference = [execute_task(task).metrics for task in tasks]
        monkeypatch.setenv(BACKEND_ENV_VAR, backend_name)
        results = [execute_task(task).metrics for task in tasks]
        for ours, theirs in zip(results, reference):
            for key in theirs:
                if key == "elapsed_seconds":
                    continue  # wall clock, not a solver output
                assert ours[key] == pytest.approx(theirs[key], abs=1e-6), key


class TestIncrementalProblem:
    def test_matrices_match_from_scratch_problem(self):
        supply, demand = broken_grid_instance()
        graph = supply.full_graph(use_residual=False)
        commodities = [
            Commodity(p.source, p.target, p.demand) for p in demand.pairs()
        ]
        reference = FlowProblem(graph, commodities)
        incremental = IncrementalFlowProblem(graph, commodities)
        for builder in ("capacity_matrix", "conservation_matrix"):
            a_ref, b_ref = getattr(reference, builder)()
            a_inc, b_inc = getattr(incremental, builder)()
            assert (a_ref != a_inc).nnz == 0
            assert np.allclose(b_ref, b_inc)

    def test_structure_cache_hits_on_same_topology(self):
        supply, demand = broken_grid_instance()
        graph = supply.full_graph(use_residual=False)
        commodities = [Commodity(p.source, p.target, p.demand) for p in demand.pairs()]
        cache = StructureCache()
        with collect_solver_stats() as stats:
            first = build_flow_problem(graph, commodities, cache=cache)
            second = build_flow_problem(graph, commodities[:1], cache=cache)
        assert stats.structure_misses == 1
        assert stats.structure_hits == 1
        assert first.structure is second.structure

    def test_capacity_delta_only_changes_rhs(self):
        supply, _ = broken_grid_instance()
        graph = supply.full_graph(use_residual=False)
        commodities = [Commodity((0, 0), (2, 2), 5.0)]
        cache = StructureCache()
        before = build_flow_problem(graph, commodities, cache=cache)
        a_before, b_before = before.capacity_matrix()
        edge = next(iter(graph.edges))
        graph.edges[edge]["capacity"] = 123.0
        after = build_flow_problem(graph, commodities, cache=cache)
        a_after, b_after = after.capacity_matrix()
        assert a_before is a_after  # identical cached block stack
        assert not np.allclose(b_before, b_after)
        assert 123.0 in b_after

    def test_signature_tracks_topology_not_capacity(self):
        graph = grid_topology(3, 3, capacity=10.0).full_graph(use_residual=False)
        signature = topology_signature(graph)
        edge = next(iter(graph.edges))
        graph.edges[edge]["capacity"] = 1.0
        assert topology_signature(graph) == signature
        graph.remove_edge(*edge)
        assert topology_signature(graph) != signature

    def test_shared_cache_is_bounded(self):
        clear_structure_cache()
        cache = shared_structure_cache()
        for rows in range(2, 8):
            graph = grid_topology(rows, 2, capacity=1.0).full_graph(use_residual=False)
            cache.structure_for(graph)
        assert len(cache) <= cache.maxsize


class TestSolverContext:
    def grid_problem(self, num_commodities=2):
        graph = grid_topology(3, 3, capacity=10.0).full_graph(use_residual=False)
        commodities = [
            Commodity((0, 0), (2, 2), 5.0),
            Commodity((0, 2), (2, 0), 3.0),
            Commodity((1, 0), (1, 2), 2.0),
        ][:num_commodities]
        return build_flow_problem(graph, commodities, cache=StructureCache())

    def test_exact_match_round_trip(self):
        context = SolverContext()
        problem = self.grid_problem(2)
        x = np.arange(problem.num_flow_variables, dtype=float)
        context.remember("tag", problem, x)
        assert np.array_equal(context.warm_start_for("tag", problem), x)
        assert context.warm_start_for("other-tag", problem) is None

    def test_added_commodity_pads_with_zeros(self):
        context = SolverContext()
        small = self.grid_problem(2)
        big = self.grid_problem(3)
        x = np.ones(small.num_flow_variables)
        context.remember("tag", small, x)
        padded = context.warm_start_for("tag", big)
        assert padded is not None
        assert len(padded) == big.num_flow_variables
        assert np.all(padded[: small.num_flow_variables] == 1.0)
        assert np.all(padded[small.num_flow_variables :] == 0.0)

    def test_removed_commodity_truncates(self):
        context = SolverContext()
        small = self.grid_problem(1)
        big = self.grid_problem(3)
        context.remember("tag", big, np.ones(big.num_flow_variables))
        truncated = context.warm_start_for("tag", small)
        assert truncated is not None
        assert len(truncated) == small.num_flow_variables

    def test_extra_columns_must_match(self):
        context = SolverContext()
        problem = self.grid_problem(2)
        context.remember("tag", problem, np.ones(problem.num_flow_variables + 1), extra_columns=1)
        assert context.warm_start_for("tag", problem) is None
        assert context.warm_start_for("tag", problem, extra_columns=1) is not None


class TestSolverStats:
    def test_routability_records_effort(self):
        supply, demand = broken_grid_instance()
        full = supply.full_graph(use_residual=False)
        with collect_solver_stats() as stats:
            assert routability_test(full, demand).routable
        assert stats.lp_solves == 1
        assert stats.solve_seconds > 0.0
        assert stats.build_seconds > 0.0

    def test_nested_collectors_both_record(self):
        supply, demand = broken_grid_instance()
        full = supply.full_graph(use_residual=False)
        with collect_solver_stats() as outer:
            routability_test(full, demand)
            with collect_solver_stats() as inner:
                routability_test(full, demand)
        assert inner.lp_solves == 1
        assert outer.lp_solves == 2

    def test_isp_plan_carries_solver_stats(self):
        supply, demand = broken_grid_instance()
        plan = get_algorithm("ISP").solve(supply, demand)
        stats = plan.metadata["solver"]
        assert stats["lp_solves"] >= 1
        evaluation = evaluate_plan(supply, demand, plan)
        assert evaluation.solver_stats == stats

    def test_engine_cell_reports_solver_extras(self):
        from repro.api.requests import DemandSpec, DisruptionSpec, TopologySpec
        from repro.engine.spec import ExperimentSpec, SweepAxis

        spec = ExperimentSpec(
            name="stats-grid",
            figure="Unit",
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3, "capacity": 10.0}),
            disruption=DisruptionSpec("complete"),
            demand=DemandSpec("random", num_pairs=1, flow_per_pair=5.0),
            sweep=SweepAxis(parameter="num_pairs", values=(1,), target="demand.num_pairs"),
            algorithms=("ISP",),
        )
        result = execute_task(expand_tasks(spec, seed=5)[0])
        assert result.extras["solver_lp_solves"] >= 1.0
        assert result.extras["solver_solve_seconds"] > 0.0


class TestCliBackendSelection:
    def test_solve_accepts_lp_backend(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        code = main(
            [
                "solve",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--pairs",
                "1",
                "--algorithms",
                "SRT",
                "--lp-backend",
                "scipy",
            ]
        )
        assert code == 0
        assert "SRT" in capsys.readouterr().out
        # The selection is exported for sweep worker processes.
        import os

        assert os.environ[BACKEND_ENV_VAR] == "scipy"

    def test_unknown_lp_backend_is_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "figure4", "--lp-backend", "bogus"])
