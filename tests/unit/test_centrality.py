"""Tests for the demand-based centrality metric (Section IV-B)."""

import pytest

from repro.core.centrality import (
    demand_based_centrality,
    exhaustive_demand_based_centrality,
)
from repro.network.demand import DemandGraph
from repro.topologies.grids import grid_topology


class TestBasicProperties:
    def test_endpoints_and_path_nodes_get_full_demand(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        result = demand_based_centrality(line_supply, demand)
        # Only one path exists, so every node on it carries the full demand.
        for node in ("a", "b", "c", "d", "e"):
            assert result.scores[node] == pytest.approx(5.0)

    def test_off_path_node_gets_zero(self, diamond_supply):
        demand = DemandGraph()
        demand.add("s", "a", 5.0)
        result = demand_based_centrality(diamond_supply, demand)
        assert result.scores["b"] == pytest.approx(0.0)

    def test_scores_scale_with_demand(self, line_supply):
        small = DemandGraph()
        small.add("a", "e", 2.0)
        large = DemandGraph()
        large.add("a", "e", 8.0)
        small_result = demand_based_centrality(line_supply, small)
        large_result = demand_based_centrality(line_supply, large)
        assert large_result.scores["c"] == pytest.approx(4 * small_result.scores["c"])

    def test_multiple_demands_accumulate(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "c", 3.0)
        demand.add("c", "e", 4.0)
        result = demand_based_centrality(line_supply, demand)
        assert result.scores["c"] == pytest.approx(7.0)
        assert result.scores["a"] == pytest.approx(3.0)

    def test_contributions_track_pairs(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "c", 3.0)
        demand.add("c", "e", 4.0)
        result = demand_based_centrality(line_supply, demand)
        assert result.contributions["b"] == {("a", "c")}
        assert len(result.contributions["c"]) == 2

    def test_covers_capacity(self, diamond_supply):
        demand = DemandGraph()
        demand.add("s", "t", 12.0)
        result = demand_based_centrality(diamond_supply, demand)
        cover = result.covers[("s", "t")]
        assert sum(capacity for _, capacity in cover) >= 12.0

    def test_empty_demand_all_zero(self, line_supply):
        result = demand_based_centrality(line_supply, DemandGraph())
        assert all(score == 0.0 for score in result.scores.values())
        assert result.top_node() is None

    def test_disconnected_pair_contributes_nothing(self, line_supply):
        line_supply.graph.remove_edge("b", "c")
        # Rebuild the supply to keep internal bookkeeping consistent.
        demand = DemandGraph()
        demand.add("a", "b", 5.0)
        result = demand_based_centrality(line_supply, demand)
        assert result.scores["d"] == 0.0


class TestRanking:
    def test_star_hub_is_most_central_for_leaf_demands(self):
        from repro.topologies.grids import star_topology

        supply = star_topology(5, capacity=10.0)
        demand = DemandGraph()
        demand.add(1, 2, 3.0)
        demand.add(3, 4, 4.0)
        result = demand_based_centrality(supply, demand)
        # Every leaf-to-leaf path crosses the hub, so it accumulates all demand
        # and outranks every leaf.
        assert result.scores[0] == pytest.approx(7.0)
        assert result.ranked_nodes()[0] == 0

    def test_top_node_has_positive_score(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        result = demand_based_centrality(line_supply, demand)
        top = result.top_node()
        assert result.scores[top] > 0

    def test_ranking_is_deterministic(self, grid3_supply):
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        a = demand_based_centrality(grid3_supply, demand).ranked_nodes()
        b = demand_based_centrality(grid3_supply, demand).ranked_nodes()
        assert a == b


class TestBrokenElementsAndResiduals:
    def test_centrality_considers_broken_elements(self, line_supply):
        line_supply.break_all()
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        result = demand_based_centrality(line_supply, demand)
        assert result.scores["c"] == pytest.approx(5.0)

    def test_repaired_elements_attract_paths(self, grid3_supply):
        grid3_supply.break_all()
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        baseline = demand_based_centrality(grid3_supply, demand)
        biased = demand_based_centrality(
            grid3_supply,
            demand,
            repaired_nodes={(0, 1), (1, 1), (2, 1)},
            repaired_edges={((0, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (2, 1)), ((2, 1), (2, 2))},
        )
        # The repaired corridor is now cheaper, so its nodes gain centrality.
        assert biased.scores[(1, 1)] >= baseline.scores[(1, 1)]

    def test_residual_capacity_limits_cover(self, diamond_supply):
        diamond_supply.consume_capacity("s", "a", 10.0)
        diamond_supply.consume_capacity("a", "t", 10.0)
        demand = DemandGraph()
        demand.add("s", "t", 4.0)
        result = demand_based_centrality(diamond_supply, demand)
        # The wide branch is saturated: only the narrow branch can contribute.
        assert result.scores["a"] == pytest.approx(0.0)
        assert result.scores["b"] == pytest.approx(4.0)


class TestExhaustiveVariant:
    def test_matches_estimate_on_line(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        estimate = demand_based_centrality(line_supply, demand)
        exact = exhaustive_demand_based_centrality(line_supply, demand)
        for node in line_supply.nodes:
            assert estimate.scores[node] == pytest.approx(exact.scores[node])

    def test_exhaustive_on_diamond(self, diamond_supply):
        demand = DemandGraph()
        demand.add("s", "t", 12.0)
        exact = exhaustive_demand_based_centrality(diamond_supply, demand)
        # Both branches are needed, each contributing its share of the demand.
        assert exact.scores["a"] > exact.scores["b"] > 0

    def test_exhaustive_handles_missing_path(self, line_supply):
        line_supply.graph.remove_edge("c", "d")
        demand = DemandGraph()
        demand.add("a", "e", 1.0)
        exact = exhaustive_demand_based_centrality(line_supply, demand)
        assert exact.covers[("a", "e")] == []
