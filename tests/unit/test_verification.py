"""Unit tests for the invariant checker: it must catch what it claims to.

The differential and fuzz suites assert the checker stays silent on honest
plans; this suite asserts the other direction — deliberately corrupted
plans trip exactly the invariant they violate.
"""

import pytest

from repro.failures.complete import CompleteDestruction
from repro.heuristics.registry import get_algorithm
from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.topologies.grids import grid_topology
from repro.verification import InvariantReport, Violation, check_plan_invariants


def _instance():
    supply = grid_topology(3, 3, capacity=20.0)
    CompleteDestruction().apply(supply)
    demand = DemandGraph()
    demand.add((0, 0), (2, 2), 5.0)
    return supply, demand


def _invariants(violations):
    return {violation.invariant for violation in violations}


class TestHonestPlansPass:
    @pytest.mark.parametrize("name", ["ISP", "SRT", "ALL", "GRD-NC"])
    def test_no_violations(self, name):
        supply, demand = _instance()
        plan = get_algorithm(name).solve(supply.copy(), demand)
        assert check_plan_invariants(supply, demand, plan) == []

    def test_empty_plan_passes(self):
        supply, demand = _instance()
        assert check_plan_invariants(supply, demand, RecoveryPlan(algorithm="NOOP")) == []


class TestCorruptedPlansAreCaught:
    def test_repairing_a_working_element(self):
        supply, demand = _instance()
        supply.repair_node((0, 0))  # make one node working again
        plan = get_algorithm("ALL").solve(supply.copy(), demand)
        plan.add_node_repair((0, 0))
        violations = check_plan_invariants(supply, demand, plan)
        assert "repairs-within-damage" in _invariants(violations)

    def test_route_through_unrepaired_element(self):
        supply, demand = _instance()
        plan = RecoveryPlan(algorithm="EVIL")
        plan.add_route(((0, 0), (2, 2)), ((0, 0), (0, 1), (0, 2), (1, 2), (2, 2)), 5.0)
        violations = check_plan_invariants(supply, demand, plan)
        assert "routing-feasibility" in _invariants(violations)

    def test_route_with_wrong_endpoints(self):
        supply, demand = _instance()
        plan = get_algorithm("ISP").solve(supply.copy(), demand)
        # Claim a route for the demand pair that actually connects others.
        plan.routes[0] = type(plan.routes[0])(
            pair=((0, 0), (2, 2)), path=((0, 1), (0, 2)), flow=1.0
        )
        violations = check_plan_invariants(supply, demand, plan)
        assert "routing-feasibility" in _invariants(violations)

    def test_inconsistent_satisfied_bookkeeping(self):
        supply, demand = _instance()
        plan = get_algorithm("ISP").solve(supply.copy(), demand)
        pair = plan.routes[0].pair
        plan.satisfied_demand[pair] = plan.satisfied_demand[pair] + 3.0
        violations = check_plan_invariants(supply, demand, plan)
        assert "flow-conservation" in _invariants(violations)

    def test_metrics_mismatch(self):
        supply, demand = _instance()
        plan = get_algorithm("ALL").solve(supply.copy(), demand)
        violations = check_plan_invariants(
            supply, demand, plan, reported_metrics={"satisfied_pct": 12.5}
        )
        assert "metrics-consistency" in _invariants(violations)

    def test_cheaper_than_proven_optimum(self):
        supply, demand = _instance()
        optimal = get_algorithm("OPT", time_limit=30.0).solve(supply.copy(), demand)
        assert optimal.metadata["status"] == "optimal"
        # Forge a plan claiming full satisfaction with an impossible cost:
        # reuse OPT's repairs minus one element, which the audit LP will
        # reject as partial — so instead pretend the *optimum* cost is
        # higher by giving the heuristic a strict subset at lower cost.
        cheaper = RecoveryPlan(algorithm="FAKE")
        for node in optimal.repaired_nodes:
            cheaper.add_node_repair(node)
        for u, v in optimal.repaired_edges:
            cheaper.add_edge_repair(u, v)
        pricier = RecoveryPlan(algorithm="OPT")
        pricier.metadata["status"] = "optimal"
        for node in cheaper.repaired_nodes:
            pricier.add_node_repair(node)
        extra = next(iter(supply.broken_edges - cheaper.repaired_edges))
        for u, v in cheaper.repaired_edges:
            pricier.add_edge_repair(u, v)
        pricier.add_edge_repair(*extra)
        violations = check_plan_invariants(supply, demand, cheaper, optimal=pricier)
        assert "cost-dominance" in _invariants(violations)

    def test_unproven_optimum_with_dominating_bound_is_caught(self):
        supply, demand = _instance()
        plan = get_algorithm("ALL").solve(supply.copy(), demand)
        # A time-limited OPT run that found no good incumbent but proved a
        # dual bound above the heuristic's cost: the bound alone convicts.
        weak = RecoveryPlan(algorithm="OPT")
        weak.metadata["status"] = "feasible"
        weak.metadata["bound"] = plan.repair_cost(supply) + 1.0
        violations = check_plan_invariants(supply, demand, plan, optimal=weak)
        assert "cost-dominance" in _invariants(violations)
        message = next(
            str(v) for v in violations if v.invariant == "cost-dominance"
        )
        assert "dual bound" in message

    def test_unproven_optimum_with_loose_bound_stays_silent(self):
        supply, demand = _instance()
        plan = get_algorithm("ALL").solve(supply.copy(), demand)
        weak = RecoveryPlan(algorithm="OPT")
        weak.metadata["status"] = "feasible"
        weak.metadata["bound"] = 0.0  # trivially below any repair cost
        violations = check_plan_invariants(supply, demand, plan, optimal=weak)
        assert "cost-dominance" not in _invariants(violations)

    def test_garbage_bound_metadata_is_ignored(self):
        supply, demand = _instance()
        plan = get_algorithm("ALL").solve(supply.copy(), demand)
        for bound in (True, "12.5", None):
            weak = RecoveryPlan(algorithm="OPT")
            weak.metadata["status"] = "feasible"
            weak.metadata["bound"] = bound
            violations = check_plan_invariants(supply, demand, plan, optimal=weak)
            assert "cost-dominance" not in _invariants(violations)

    def test_unproven_optimum_is_not_a_baseline(self):
        supply, demand = _instance()
        cheap = get_algorithm("ISP").solve(supply.copy(), demand)
        for status in ("feasible", "error", None):  # None: status lost entirely
            weak = get_algorithm("ALL").solve(supply.copy(), demand)
            if status is not None:
                weak.metadata["status"] = status
            violations = check_plan_invariants(supply, demand, cheap, optimal=weak)
            assert "cost-dominance" not in _invariants(violations)

    def test_opt_status_survives_the_envelope_round_trip(self):
        import json

        from repro.api.results import jsonify_plan, plan_from_payload, plan_payload

        supply, demand = _instance()
        optimal = get_algorithm("OPT", time_limit=30.0).solve(supply.copy(), demand)
        assert optimal.metadata["status"] == "optimal"
        payload = json.loads(json.dumps(jsonify_plan(plan_payload(optimal))))
        rebuilt = plan_from_payload(payload, algorithm="OPT")
        assert rebuilt.metadata["status"] == "optimal"
        # An envelope OPT plan therefore still qualifies as the baseline.
        violations = check_plan_invariants(
            supply, demand, get_algorithm("ALL").solve(supply.copy(), demand),
            optimal=rebuilt,
        )
        assert "cost-dominance" not in _invariants(violations)


class TestOptimalGapDerivation:
    """_optimal_gap feeds the fuzz --verify gap statistics."""

    def _weak_plan(self, optimal, **metadata):
        weak = RecoveryPlan(algorithm="OPT")
        for node in optimal.repaired_nodes:
            weak.add_node_repair(node)
        for u, v in optimal.repaired_edges:
            weak.add_edge_repair(u, v)
        weak.metadata.update(metadata)
        return weak

    def test_proven_run_has_zero_gap(self):
        from repro.verification import _optimal_gap

        supply, demand = _instance()
        optimal = get_algorithm("OPT", time_limit=30.0).solve(supply.copy(), demand)
        assert _optimal_gap(supply, optimal) == 0.0

    def test_solver_reported_mip_gap_wins(self):
        from repro.verification import _optimal_gap

        supply, demand = _instance()
        optimal = get_algorithm("OPT", time_limit=30.0).solve(supply.copy(), demand)
        weak = self._weak_plan(optimal, status="feasible", mip_gap=0.125)
        assert _optimal_gap(supply, weak) == pytest.approx(0.125)
        # Negative solver noise clamps to zero rather than going negative.
        noisy = self._weak_plan(optimal, status="feasible", mip_gap=-1e-9)
        assert _optimal_gap(supply, noisy) == 0.0

    def test_gap_derived_from_bound_and_cost(self):
        from repro.verification import _optimal_gap

        supply, demand = _instance()
        optimal = get_algorithm("OPT", time_limit=30.0).solve(supply.copy(), demand)
        cost = optimal.repair_cost(supply)
        assert cost > 0
        weak = self._weak_plan(optimal, status="feasible", bound=cost / 2.0)
        assert _optimal_gap(supply, weak) == pytest.approx(0.5)

    def test_gap_is_unknowable_without_bound_or_mip_gap(self):
        from repro.verification import _optimal_gap

        supply, demand = _instance()
        optimal = get_algorithm("OPT", time_limit=30.0).solve(supply.copy(), demand)
        weak = self._weak_plan(optimal, status="feasible")
        assert _optimal_gap(supply, weak) is None

    def test_gap_summary_aggregates(self):
        report = InvariantReport()
        report.opt_gaps.extend([0.0, 0.25, 0.05])
        summary = report.gap_summary()
        assert summary == {
            "count": 3,
            "max": 0.25,
            "mean": pytest.approx(0.1),
        }


class TestReportTypes:
    def test_violation_str_includes_context(self):
        violation = Violation("cost-dominance", "ISP", "too cheap", request="abc123")
        assert "abc123" in str(violation) and "ISP" in str(violation)

    def test_report_summary(self):
        report = InvariantReport(checked=3)
        assert report.ok
        report.extend([Violation("x", "A", "d")])
        assert not report.ok
        assert report.summary() == {
            "plans_checked": 3,
            "violations": 1,
            "unproven_baselines": 0,
            "opt_gaps": {"count": 0, "max": 0.0, "mean": 0.0},
            "ok": False,
        }

    def test_unproven_envelope_baseline_is_counted_not_silent(self):
        from repro.api import RecoveryRequest, RecoveryService, TopologySpec
        from repro.verification import audit_result

        service = RecoveryService()
        request = RecoveryRequest(
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
            algorithms=("OPT", "ALL"),
            seed=3,
            opt_time_limit=30.0,
        )
        envelope = service.solve(request)
        # Simulate a pre-status cache entry: strip the persisted status.
        envelope.run("OPT").plan.pop("status")
        report = audit_result(service, request, envelope, context=service.context)
        assert report.ok
        assert report.unproven_baselines == 1
