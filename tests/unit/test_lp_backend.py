"""Tests for repro.flows.lp_backend.FlowProblem."""

import networkx as nx
import numpy as np
import pytest

from repro.flows.lp_backend import Commodity, FlowProblem


def build_triangle() -> nx.Graph:
    graph = nx.Graph()
    graph.add_edge("a", "b", capacity=5.0)
    graph.add_edge("b", "c", capacity=3.0)
    graph.add_edge("a", "c", capacity=2.0)
    return graph


class TestCommodity:
    def test_rejects_loop(self):
        with pytest.raises(ValueError):
            Commodity("a", "a", 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Commodity("a", "b", -1.0)

    def test_zero_demand_allowed(self):
        assert Commodity("a", "b", 0.0).demand == 0.0


class TestIndexing:
    def test_variable_count(self):
        problem = FlowProblem(build_triangle(), [Commodity("a", "c", 1.0)])
        assert problem.num_arcs == 6
        assert problem.num_flow_variables == 6

    def test_two_commodities_double_variables(self):
        problem = FlowProblem(
            build_triangle(), [Commodity("a", "c", 1.0), Commodity("b", "c", 1.0)]
        )
        assert problem.num_flow_variables == 12

    def test_flow_index_roundtrip(self):
        problem = FlowProblem(build_triangle(), [Commodity("a", "c", 1.0)])
        column = problem.flow_index(0, "b", "a")
        assert problem.edge_of_index(column) == (0, "b", "a")

    def test_directed_graph_rejected(self):
        with pytest.raises(ValueError):
            FlowProblem(nx.DiGraph(), [])

    def test_infeasible_commodity_detected(self):
        problem = FlowProblem(build_triangle(), [Commodity("a", "zzz", 1.0)])
        assert len(problem.infeasible_commodities) == 1


class TestConstraintMatrices:
    def test_capacity_matrix_shape(self):
        problem = FlowProblem(build_triangle(), [Commodity("a", "c", 1.0)])
        matrix, rhs = problem.capacity_matrix()
        assert matrix.shape == (3, 6)
        assert sorted(rhs) == [2.0, 3.0, 5.0]

    def test_capacity_row_sums_both_directions(self):
        problem = FlowProblem(build_triangle(), [Commodity("a", "c", 1.0)])
        matrix, _ = problem.capacity_matrix()
        # Every row touches exactly two flow variables per commodity (both directions).
        row_counts = np.diff(matrix.indptr)
        assert all(count == 2 for count in row_counts)

    def test_conservation_matrix_shape(self):
        problem = FlowProblem(build_triangle(), [Commodity("a", "c", 4.0)])
        matrix, rhs = problem.conservation_matrix()
        assert matrix.shape == (3, 6)
        assert sorted(rhs) == [-4.0, 0.0, 4.0]

    def test_conservation_rhs_signs(self):
        problem = FlowProblem(build_triangle(), [Commodity("a", "c", 4.0)])
        _, rhs = problem.conservation_matrix()
        source_row = problem.nodes.index("a")
        target_row = problem.nodes.index("c")
        assert rhs[source_row] == 4.0
        assert rhs[target_row] == -4.0


class TestSolutionInterpretation:
    def test_flows_by_commodity_nets_out_opposites(self):
        problem = FlowProblem(build_triangle(), [Commodity("a", "c", 1.0)])
        solution = np.zeros(problem.num_flow_variables)
        solution[problem.flow_index(0, "a", "c")] = 3.0
        solution[problem.flow_index(0, "c", "a")] = 1.0
        flows = problem.flows_by_commodity(solution)
        assert flows[0] == {("a", "c"): pytest.approx(2.0)}

    def test_edge_loads_aggregate_commodities(self):
        problem = FlowProblem(
            build_triangle(), [Commodity("a", "c", 1.0), Commodity("b", "c", 1.0)]
        )
        solution = np.zeros(problem.num_flow_variables)
        solution[problem.flow_index(0, "a", "c")] = 2.0
        solution[problem.flow_index(1, "c", "a")] = 1.0
        loads = problem.edge_loads(solution)
        assert loads[("a", "c")] == pytest.approx(3.0)

    def test_small_flows_filtered(self):
        problem = FlowProblem(build_triangle(), [Commodity("a", "c", 1.0)])
        solution = np.full(problem.num_flow_variables, 1e-9)
        assert problem.edge_loads(solution) == {}
