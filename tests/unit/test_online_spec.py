"""Validation and round-trip tests for the online scenario schema."""

import json

import pytest

from repro.api.requests import DemandSpec, DisruptionSpec, TopologySpec
from repro.online import CrewSpec, EventSpec, FogSpec, OnlineScenarioSpec


def make_spec(**changes) -> OnlineScenarioSpec:
    defaults = dict(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("gaussian", kwargs={"variance": 2.0}),
        demand=DemandSpec("routable-far-apart", num_pairs=2, flow_per_pair=2.0),
        seed=7,
        epochs=3,
        events=(EventSpec(kind="cascade", probability=0.5),),
    )
    defaults.update(changes)
    return OnlineScenarioSpec(**defaults)


class TestCrewSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrewSpec(count=0)
        with pytest.raises(ValueError):
            CrewSpec(travel_hours=-1.0)

    def test_work_hours_by_kind(self):
        crews = CrewSpec(node_hours=5.0, edge_hours=3.0)
        assert crews.work_hours("node") == 5.0
        assert crews.work_hours("edge") == 3.0

    def test_round_trip(self):
        crews = CrewSpec(count=3, node_hours=6.0, edge_hours=1.5, travel_hours=0.5)
        assert CrewSpec.from_dict(json.loads(json.dumps(crews.to_dict()))) == crews


class TestFogSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FogSpec(hidden_fraction=1.5)
        with pytest.raises(ValueError):
            FogSpec(reveal_per_epoch=-1)

    def test_round_trip(self):
        fog = FogSpec(hidden_fraction=0.25, reveal_per_epoch=3)
        assert FogSpec.from_dict(json.loads(json.dumps(fog.to_dict()))) == fog


class TestEventSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventSpec(kind="meteor", probability=0.5)

    def test_needs_a_trigger(self):
        with pytest.raises(ValueError, match="needs a trigger"):
            EventSpec(kind="cascade")

    def test_unknown_model_kwargs_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown aftershock event parameter"):
            EventSpec(kind="aftershock", kwargs={"variance": 2.0, "blast": 9}, every=1)

    def test_invalid_model_kwargs_rejected_eagerly(self):
        # variance is required by the aftershock model; the spec must fail
        # at construction, not halfway into a campaign.
        with pytest.raises(ValueError):
            EventSpec(kind="aftershock", every=1)

    def test_scheduling(self):
        event = EventSpec(kind="attack", kwargs={"node_budget": 1}, at_epochs=(2,), every=2)
        # at_epochs is index-based, every is 1-based cadence.
        assert not event.scheduled(0)
        assert event.scheduled(1)  # every=2 -> epochs 1, 3, ...
        assert event.scheduled(2)  # listed explicitly
        assert event.scheduled(3)

    def test_attack_defaults_to_adaptive(self):
        event = EventSpec(kind="attack", kwargs={"node_budget": 1}, every=1)
        assert event.build_model().adaptive is True

    def test_round_trip(self):
        event = EventSpec(
            kind="aftershock",
            kwargs={"variance": 4.0, "num_epicenters": 1},
            at_epochs=(1, 3),
            probability=0.25,
        )
        assert EventSpec.from_dict(json.loads(json.dumps(event.to_dict()))) == event


class TestOnlineScenarioSpec:
    def test_unknown_algorithms_rejected(self):
        with pytest.raises(KeyError):
            make_spec(algorithm="NOPE")
        with pytest.raises(KeyError):
            make_spec(baseline_algorithm="NOPE")

    def test_algorithm_names_upper_cased(self):
        spec = make_spec(algorithm="isp", baseline_algorithm="opt")
        assert spec.algorithm == "ISP"
        assert spec.baseline_algorithm == "OPT"

    def test_timeline_validation(self):
        with pytest.raises(ValueError):
            make_spec(epochs=0)
        with pytest.raises(ValueError):
            make_spec(epoch_hours=0.0)
        with pytest.raises(ValueError, match="travel_hours"):
            make_spec(epoch_hours=1.0, crews=CrewSpec(travel_hours=2.0))

    def test_dict_events_coerced(self):
        spec = make_spec(events=({"kind": "cascade", "probability": 0.5},))
        assert isinstance(spec.events[0], EventSpec)
        assert spec.events[0].kind == "cascade"

    def test_round_trip_through_json(self):
        spec = make_spec(
            algorithm="SRT",
            crews=CrewSpec(count=3),
            fog=FogSpec(hidden_fraction=0.2),
            opt_time_limit=12.5,
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert OnlineScenarioSpec.from_dict(payload) == spec

    def test_digest_is_stable_and_discriminating(self):
        spec = make_spec()
        assert spec.digest() == make_spec().digest()
        assert spec.digest() != make_spec(seed=8).digest()
        assert spec.digest() != make_spec(fog=FogSpec(hidden_fraction=0.1)).digest()
