"""Sharded-backend specifics: the ring, the manifest, routing and wakeups.

The cross-backend behaviour (dedup, claims, recovery, ...) is covered by
the contract suite in ``test_store_contract.py``; this file tests what
only the sharded fleet has — deterministic consistent-hash routing, the
pinned shard manifest, the on-disk layout, the ``open_store`` layout
decisions, and the per-shard wakeup targeting the daemon layers on top.
"""

import json

import pytest

from repro.api.requests import (
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
)
from repro.server.stores import (
    ConsistentHashRing,
    JobStore,
    ShardedJobStore,
    StoreSchemaError,
    open_store,
    shard_count,
)
from repro.server.workers import WakeupNotifier


def grid_request(seed: int = 1) -> RecoveryRequest:
    return RecoveryRequest(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(num_pairs=1, flow_per_pair=5.0),
        algorithms=("ISP",),
        seed=seed,
    )


class TestConsistentHashRing:
    def test_routing_is_deterministic_across_instances(self):
        first = ConsistentHashRing(4)
        second = ConsistentHashRing(4)
        keys = [f"digest-{index}" for index in range(200)]
        assert [first.shard_of(key) for key in keys] == [
            second.shard_of(key) for key in keys
        ]

    def test_every_shard_owns_a_reasonable_keyspace_share(self):
        ring = ConsistentHashRing(4)
        owners = [ring.shard_of(f"digest-{index}") for index in range(2000)]
        for shard in range(4):
            share = owners.count(shard) / len(owners)
            assert 0.10 < share < 0.45  # ~0.25 each; vnodes keep it close

    def test_growing_the_ring_moves_a_minority_of_keys(self):
        before = ConsistentHashRing(4)
        after = ConsistentHashRing(5)
        keys = [f"digest-{index}" for index in range(2000)]
        moved = sum(1 for key in keys if before.shard_of(key) != after.shard_of(key))
        # consistent hashing moves ~1/N of the keyspace, not ~all of it
        assert moved / len(keys) < 0.40

    def test_rejects_an_empty_ring(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)


class TestLayoutAndManifest:
    def test_creates_shard_files_and_a_manifest(self, tmp_path):
        with ShardedJobStore(tmp_path / "jobs.db", shards=3) as store:
            assert store.shards == 3
        root = tmp_path / "jobs.db"
        names = sorted(path.name for path in root.iterdir() if path.suffix == ".db")
        assert names == ["shard-00.db", "shard-01.db", "shard-02.db"]
        manifest = json.loads((root / "shards.json").read_text())
        assert manifest == {"layout": "sharded", "shards": 3}

    def test_manifest_pins_the_shard_count(self, tmp_path):
        with ShardedJobStore(tmp_path / "jobs.db", shards=3):
            pass
        with pytest.raises(StoreSchemaError, match="pinned to 3"):
            ShardedJobStore(tmp_path / "jobs.db", shards=4)

    def test_rejects_sharding_an_existing_single_file(self, tmp_path):
        with JobStore(tmp_path / "jobs.db"):
            pass
        with pytest.raises(StoreSchemaError, match="single-file"):
            ShardedJobStore(tmp_path / "jobs.db", shards=2)

    def test_rejects_fewer_than_two_shards(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedJobStore(tmp_path / "jobs.db", shards=1)

    def test_shard_count_reads_the_manifest(self, tmp_path):
        assert shard_count(tmp_path / "missing.db") is None
        with JobStore(tmp_path / "single.db"):
            pass
        assert shard_count(tmp_path / "single.db") is None
        with ShardedJobStore(tmp_path / "fleet.db", shards=5):
            pass
        assert shard_count(tmp_path / "fleet.db") == 5


class TestOpenStore:
    def test_auto_detects_the_layout(self, tmp_path):
        with ShardedJobStore(tmp_path / "fleet.db", shards=3):
            pass
        with open_store(tmp_path / "fleet.db") as attached:
            assert isinstance(attached, ShardedJobStore)
            assert attached.shards == 3
        with open_store(tmp_path / "single.db") as fresh:
            assert isinstance(fresh, JobStore)

    def test_explicit_counts_must_agree_with_the_manifest(self, tmp_path):
        with open_store(tmp_path / "fleet.db", shards=4):
            pass
        with open_store(tmp_path / "fleet.db", shards=4):
            pass  # matching reopen is fine
        with pytest.raises(StoreSchemaError):
            open_store(tmp_path / "fleet.db", shards=2)
        with pytest.raises(StoreSchemaError):
            open_store(tmp_path / "fleet.db", shards=1)

    def test_rejects_nonpositive_shard_counts(self, tmp_path):
        with pytest.raises(ValueError):
            open_store(tmp_path / "jobs.db", shards=0)


class TestRouting:
    def test_a_job_lives_on_exactly_its_ring_shard(self, tmp_path):
        with ShardedJobStore(tmp_path / "jobs.db", shards=4) as store:
            records = [store.submit(grid_request(seed))[0] for seed in range(12)]
            for record in records:
                owner = store.shard_of(record.digest)
                for index, shard in enumerate(store._stores):
                    held = shard.get(record.digest)
                    assert (held is not None) == (index == owner)

    def test_merged_views_cover_every_shard(self, tmp_path):
        with ShardedJobStore(tmp_path / "jobs.db", shards=4) as store:
            records = [store.submit(grid_request(seed))[0] for seed in range(12)]
            owners = {store.shard_of(record.digest) for record in records}
            assert len(owners) > 1  # the pool genuinely spans shards
            assert store.queue_depth() == 12
            assert store.counts()["queued"] == 12
            assert len(store.jobs(state="queued", limit=100)) == 12


class TestPerShardWakeups:
    class _Writer:
        """A fake pipe writer recording notification bytes."""

        def __init__(self, fd_pair):
            import os

            self._read_fd, self._write_fd = fd_pair
            self.os = os

        def fileno(self):
            return self._write_fd

        def pending(self) -> int:
            import select

            total = 0
            while select.select([self._read_fd], [], [], 0)[0]:
                total += len(self.os.read(self._read_fd, 4096))
            return total

    @pytest.fixture()
    def writers(self):
        import os

        pairs = [self._Writer(os.pipe()) for _ in range(3)]
        yield pairs
        for writer in pairs:
            for fd in (writer._read_fd, writer._write_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass

    def test_targeted_notify_wakes_only_matching_homes(self, writers):
        notifier = WakeupNotifier()
        for shard, writer in enumerate(writers):
            notifier.attach(writer, shard=shard)
        notifier.notify(shards=[1])
        assert [writer.pending() for writer in writers] == [0, 1, 0]

    def test_unmatched_target_falls_back_to_broadcast(self, writers):
        notifier = WakeupNotifier()
        for shard, writer in enumerate(writers):
            notifier.attach(writer, shard=shard)
        notifier.notify(shards=[7])  # no writer is homed there
        assert [writer.pending() for writer in writers] == [1, 1, 1]

    def test_untargeted_notify_broadcasts(self, writers):
        notifier = WakeupNotifier()
        for writer in writers:
            notifier.attach(writer)  # no home shard recorded
        notifier.notify()
        notifier.notify(shards=[0])  # nobody homed: broadcast again
        assert [writer.pending() for writer in writers] == [2, 2, 2]
