"""Tests for the MinR MILP (the paper's OPT)."""

import pytest

from repro.flows.milp import minr_solution_to_plan, solve_minimum_recovery
from repro.network.demand import DemandGraph
from repro.network.supply import SupplyGraph
from repro.topologies.grids import grid_topology, ring_topology


class TestSimpleInstances:
    def test_no_demand_costs_nothing(self, line_supply):
        line_supply.break_all()
        solution = solve_minimum_recovery(line_supply, DemandGraph())
        assert solution.optimal
        assert solution.objective == pytest.approx(0.0)

    def test_nothing_broken_costs_nothing(self, line_supply, single_demand):
        solution = solve_minimum_recovery(line_supply, single_demand)
        assert solution.optimal
        assert solution.objective == pytest.approx(0.0)
        assert not solution.repaired_nodes and not solution.repaired_edges

    def test_line_complete_destruction(self, line_supply, single_demand):
        line_supply.break_all()
        solution = solve_minimum_recovery(line_supply, single_demand)
        assert solution.optimal
        # The only way to connect a and e is the full path: 5 nodes + 4 edges.
        assert len(solution.repaired_nodes) == 5
        assert len(solution.repaired_edges) == 4
        assert solution.objective == pytest.approx(9.0)

    def test_single_broken_edge(self, line_supply, single_demand):
        line_supply.break_edge("b", "c")
        solution = solve_minimum_recovery(line_supply, single_demand)
        assert solution.optimal
        assert solution.repaired_edges == {("b", "c")}
        assert solution.objective == pytest.approx(1.0)

    def test_infeasible_when_capacity_insufficient(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 100.0)
        solution = solve_minimum_recovery(line_supply, demand)
        assert solution.status == "infeasible"

    def test_costs_influence_choice(self):
        # Two parallel broken 2-hop paths; the cheap one must be chosen.
        supply = SupplyGraph()
        for node in ("s", "cheap", "pricey", "t"):
            supply.add_node(node)
        supply.add_edge("s", "cheap", capacity=10.0, repair_cost=1.0)
        supply.add_edge("cheap", "t", capacity=10.0, repair_cost=1.0)
        supply.add_edge("s", "pricey", capacity=10.0, repair_cost=10.0)
        supply.add_edge("pricey", "t", capacity=10.0, repair_cost=10.0)
        supply.break_edge("s", "cheap")
        supply.break_edge("cheap", "t")
        supply.break_edge("s", "pricey")
        supply.break_edge("pricey", "t")
        demand = DemandGraph()
        demand.add("s", "t", 5.0)
        solution = solve_minimum_recovery(supply, demand)
        assert solution.optimal
        assert solution.objective == pytest.approx(2.0)
        assert all("pricey" not in edge for edge in solution.repaired_edges)

    def test_capacity_forces_both_paths(self, diamond_supply, diamond_demand):
        diamond_supply.break_all()
        solution = solve_minimum_recovery(diamond_supply, diamond_demand)
        assert solution.optimal
        # 12 units need both the capacity-10 and the capacity-4 branch.
        assert len(solution.repaired_nodes) == 4
        assert len(solution.repaired_edges) == 4

    def test_low_demand_uses_single_branch(self, diamond_supply):
        diamond_supply.break_all()
        demand = DemandGraph()
        demand.add("s", "t", 8.0)
        solution = solve_minimum_recovery(diamond_supply, demand)
        assert solution.optimal
        assert len(solution.repaired_nodes) == 3
        assert len(solution.repaired_edges) == 2


class TestSteinerLikeInstances:
    def test_ring_shortcut(self):
        # On a broken 6-ring, connecting neighbours 0 and 1 needs one edge.
        supply = ring_topology(6, capacity=100.0)
        supply.break_all()
        demand = DemandGraph()
        demand.add(0, 1, 1.0)
        solution = solve_minimum_recovery(supply, demand)
        assert solution.optimal
        assert len(solution.repaired_edges) == 1
        assert len(solution.repaired_nodes) == 2

    def test_grid_two_pairs_share_repairs(self):
        supply = grid_topology(3, 3, capacity=100.0)
        supply.break_all()
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 1.0)
        demand.add((0, 2), (2, 0), 1.0)
        solution = solve_minimum_recovery(supply, demand)
        assert solution.optimal
        # Sharing the centre keeps the repair count below two disjoint paths.
        total = len(solution.repaired_nodes) + len(solution.repaired_edges)
        assert total <= 16


class TestPlanConversion:
    def test_plan_has_routes(self, line_supply, single_demand):
        line_supply.break_all()
        solution = solve_minimum_recovery(line_supply, single_demand)
        plan = minr_solution_to_plan(solution)
        assert plan.algorithm == "OPT"
        assert plan.total_repairs == 9
        assert plan.total_satisfied() == pytest.approx(5.0)
        assert plan.validate_routing(line_supply, single_demand) == []

    def test_infeasible_plan_is_empty(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 1000.0)
        solution = solve_minimum_recovery(line_supply, demand)
        plan = minr_solution_to_plan(solution)
        assert plan.total_repairs == 0
        assert plan.metadata["status"] == "infeasible"

    def test_metadata_carries_objective(self, line_supply, single_demand):
        line_supply.break_edge("a", "b")
        plan = minr_solution_to_plan(solve_minimum_recovery(line_supply, single_demand))
        assert plan.metadata["objective"] == pytest.approx(1.0)
