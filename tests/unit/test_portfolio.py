"""Unit tests of the portfolio racer: staging helpers and two-stage solves."""

import json

import pytest

from repro.api.requests import (
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
)
from repro.api.results import AlgorithmRun, RecoveryResult
from repro.api.service import RecoveryService
from repro.portfolio import (
    PORTFOLIO_KEY,
    annotation,
    can_stage,
    execution_order,
    is_exact,
    pending_algorithms,
    proven_exact_runs,
    split_algorithms,
    solve_two_stage,
)
from repro.verification import audit_result


def staged_request(seed: int = 3, algorithms=("OPT", "ISP", "SRT")) -> RecoveryRequest:
    return RecoveryRequest(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(num_pairs=2, flow_per_pair=4.0),
        algorithms=algorithms,
        seed=seed,
        opt_time_limit=60.0,
    )


def _run(algorithm: str, status: str = "optimal") -> AlgorithmRun:
    return AlgorithmRun(algorithm=algorithm, metrics={}, plan={"status": status}, solver={})


class TestStagingHelpers:
    def test_exactness_is_case_insensitive(self):
        assert is_exact("OPT") and is_exact("opt")
        assert not is_exact("ISP")

    def test_split_preserves_each_classes_order(self):
        assert split_algorithms(["OPT", "SRT", "ISP"]) == (["SRT", "ISP"], ["OPT"])

    def test_execution_order_runs_heuristics_first(self):
        assert execution_order(["OPT", "ISP", "SRT"]) == ["ISP", "SRT", "OPT"]

    def test_staging_needs_both_classes(self):
        assert can_stage(["ISP", "OPT"])
        assert not can_stage(["ISP", "SRT"])  # nothing slow to race
        assert not can_stage(["OPT"])  # no early answer to publish

    def test_annotation_shape(self):
        payload = annotation("heuristic", pending=["OPT"])
        assert payload == {
            "stage": "heuristic",
            "pending": ["OPT"],
            "upgraded": False,
            "proven_exact_runs": 0,
            "exact_runs": 0,
        }
        assert "error" not in payload
        assert annotation("heuristic", error="boom")["error"] == "boom"

    def test_pending_algorithms_tolerates_malformed_envelopes(self):
        assert pending_algorithms(None) == []
        assert pending_algorithms({"results": []}) == []
        assert pending_algorithms({PORTFOLIO_KEY: "junk"}) == []
        assert pending_algorithms({PORTFOLIO_KEY: {"pending": ["OPT"]}}) == ["OPT"]
        assert pending_algorithms({PORTFOLIO_KEY: {"pending": []}}) == []

    def test_proven_exact_runs_judges_by_solver_status(self):
        runs = [_run("ISP"), _run("OPT", "optimal"), _run("OPT", "feasible")]
        assert proven_exact_runs(runs) == (1, 2)


class TestSolveTwoStage:
    def test_heuristic_envelope_is_published_before_the_exact_lands(self):
        service = RecoveryService()
        request = staged_request()
        published = []
        envelope, info = solve_two_stage(
            service, request, publish=lambda early: published.append(early) or True
        )

        assert info == {"staged": True, "published": True, "proven": 1, "exact": 1}
        (stage1,) = published
        marker = stage1[PORTFOLIO_KEY]
        assert marker["stage"] == "heuristic"
        assert marker["pending"] == ["OPT"]
        assert marker["upgraded"] is False
        assert [run["algorithm"] for run in stage1["results"]] == ["ISP", "SRT"]

        final = envelope[PORTFOLIO_KEY]
        assert final["stage"] == "exact"
        assert final["pending"] == []
        assert final["upgraded"] is True
        # the envelope keeps the *requested* order, exacts included
        assert [run["algorithm"] for run in envelope["results"]] == ["OPT", "ISP", "SRT"]
        opt = envelope["results"][0]["plan"]
        assert opt["status"] == "optimal"
        assert opt["seeded"] is True

    def test_upgraded_envelope_is_audit_clean(self):
        service = RecoveryService()
        request = staged_request()
        envelope, _ = solve_two_stage(service, request, publish=lambda early: True)
        result = RecoveryResult.from_dict(envelope)
        report = audit_result(service, request, result, context=service.context)
        assert report.ok, "; ".join(map(str, report.violations))
        assert report.unproven_baselines == 0
        assert report.opt_gaps == [0.0]

    def test_published_bytes_round_trip_the_store_unchanged(self, tmp_path):
        from repro.server.store import JobStore

        service = RecoveryService()
        request = staged_request(seed=5)
        with JobStore(tmp_path / "jobs.db") as store:
            store.submit(request)
            record = store.claim("w0")

            snapshots = []

            def publish(early):
                landed = store.complete(record.digest, early, worker="w0")
                snapshots.append(json.dumps(store.get(record.digest).result, sort_keys=True))
                return landed

            envelope, info = solve_two_stage(service, request, publish=publish)
            # the stored stage-1 row was exactly the published envelope, and
            # it stayed byte-stable until the upgrade replaced it
            assert info["published"] is True
            assert snapshots == [
                json.dumps(store.get(record.digest).result, sort_keys=True)
            ]
            assert store.upgrade_result(record.digest, envelope, worker="w0")
            assert store.get(record.digest).result == envelope
            assert pending_algorithms(store.get(record.digest).result) == []

    def test_requests_with_nothing_to_race_fall_back_to_single_stage(self):
        service = RecoveryService()
        request = staged_request(algorithms=("ISP", "SRT"))
        envelope, info = solve_two_stage(service, request, publish=lambda early: True)
        assert info["staged"] is False
        assert info["published"] is False
        assert PORTFOLIO_KEY not in envelope
        assert [run["algorithm"] for run in envelope["results"]] == ["ISP", "SRT"]

    def test_duplicate_algorithm_names_run_once(self):
        service = RecoveryService()
        request = staged_request(algorithms=("ISP", "ISP", "OPT"))
        envelope, info = solve_two_stage(service, request)
        assert info["staged"] is True
        assert [run["algorithm"] for run in envelope["results"]] == ["ISP", "OPT"]

    def test_stage2_failure_keeps_the_heuristic_answer(self, monkeypatch):
        from repro.heuristics.base import RecoveryAlgorithm

        original = RecoveryAlgorithm.solve

        def exploding(self, supply, demand, **extra):
            if self.name == "OPT":
                raise RuntimeError("milp exploded")
            return original(self, supply, demand, **extra)

        monkeypatch.setattr(RecoveryAlgorithm, "solve", exploding)
        service = RecoveryService()
        request = staged_request()
        published = []
        envelope, info = solve_two_stage(
            service, request, publish=lambda early: published.append(early) or True
        )

        assert info["staged"] and info["published"]
        assert info["proven"] == 0 and info["exact"] == 0
        marker = envelope[PORTFOLIO_KEY]
        assert marker["stage"] == "heuristic"
        assert "milp exploded" in marker["error"]
        # pending is cleared: the heuristic answer is final, caches may admit it
        assert marker["pending"] == []
        assert pending_algorithms(envelope) == []
        assert [run["algorithm"] for run in envelope["results"]] == ["ISP", "SRT"]
