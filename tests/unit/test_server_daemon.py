"""In-process tests of the daemon coroutine and the serve/loadtest CLI glue."""

import asyncio
import json
import threading

import pytest

from repro.api.requests import (
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
)
from repro.cli import main
from repro.server.client import ServiceClient
from repro.server.daemon import ServerConfig, serve
from repro.server.store import JobStore
from repro.server.workers import worker_loop


def grid_request(seed: int = 1) -> RecoveryRequest:
    return RecoveryRequest(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(num_pairs=1, flow_per_pair=5.0),
        algorithms=("ISP",),
        seed=seed,
    )


class TestServeCoroutine:
    def test_serve_requeues_orphans_before_workers_start(self, tmp_path, capsys):
        """A crashed run's ``running`` job is queued again by the next boot."""
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            store.submit(grid_request(seed=4))
            assert store.claim("crashed-worker") is not None  # orphan it

        config = ServerConfig(db=str(db), port=0, workers=1, poll_interval=0.05)

        async def boot_and_cancel() -> None:
            ready = asyncio.Event()
            task = asyncio.ensure_future(serve(config, ready=ready))
            await asyncio.wait_for(ready.wait(), timeout=30)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(boot_and_cancel())
        stderr = capsys.readouterr().err
        assert "requeued 1 orphaned running job(s)" in stderr
        assert "repro.server listening on" in stderr
        assert "drained and stopped" in stderr
        with JobStore(db) as store:
            # the worker may or may not have finished it before the drain,
            # but the orphan is never stuck in 'running' after shutdown
            assert store.get(grid_request(seed=4).digest()).state in ("queued", "done")


    def test_serve_adopts_an_existing_fleet_without_a_shards_flag(self, tmp_path, capsys):
        """Restarting a sharded daemon with the default config auto-detects
        the layout from the manifest instead of demanding ``--shards`` again."""
        from repro.server.stores import ShardedJobStore

        db = tmp_path / "fleet.db"
        with ShardedJobStore(db, shards=3) as store:
            store.submit(grid_request(seed=9))
            assert store.claim("crashed-worker") is not None  # orphan it

        config = ServerConfig(db=str(db), port=0, workers=1, poll_interval=0.05)

        async def boot_and_cancel() -> None:
            ready = asyncio.Event()
            task = asyncio.ensure_future(serve(config, ready=ready))
            await asyncio.wait_for(ready.wait(), timeout=30)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(boot_and_cancel())
        stderr = capsys.readouterr().err
        assert "shards=3" in stderr
        assert "requeued 1 orphaned running job(s)" in stderr


class TestServeValidation:
    def test_bad_backend_fails_before_any_worker_spawns(self, tmp_path):
        config = ServerConfig(db=str(tmp_path / "x.db"), port=0, lp_backend="nope")
        with pytest.raises(ValueError, match="unknown LP backend"):
            asyncio.run(serve(config))

    def test_malformed_topology_cache_env_fails_before_any_worker_spawns(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TOPOLOGY_CACHE", "banana")
        config = ServerConfig(db=str(tmp_path / "x.db"), port=0)
        with pytest.raises(ValueError, match="REPRO_TOPOLOGY_CACHE"):
            asyncio.run(serve(config))


class TestCliServe:
    def test_serve_rejects_bad_worker_count(self, tmp_path):
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", "--db", str(tmp_path / "x.db"), "--workers", "0"])

    def test_serve_rejects_bad_queue_depth(self, tmp_path):
        with pytest.raises(SystemExit, match="--max-queue-depth"):
            main(["serve", "--db", str(tmp_path / "x.db"), "--max-queue-depth", "0"])

    def test_serve_rejects_bad_claim_batch(self, tmp_path):
        with pytest.raises(SystemExit, match="--claim-batch"):
            main(["serve", "--db", str(tmp_path / "x.db"), "--claim-batch", "0"])

    def test_serve_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(SystemExit, match="--shards"):
            main(["serve", "--db", str(tmp_path / "x.db"), "--shards", "0"])

    def test_serve_rejects_a_shard_count_disagreeing_with_the_manifest(self, tmp_path):
        from repro.server.stores import ShardedJobStore

        db = tmp_path / "fleet.db"
        with ShardedJobStore(db, shards=4):
            pass
        with pytest.raises(SystemExit, match="pinned to 4"):
            main(["serve", "--db", str(db), "--shards", "2", "--port", "0"])


class TestArrivalModels:
    def test_uniform_offsets_pace_evenly(self):
        from repro.server.loadtest import arrival_offsets

        assert arrival_offsets(5, 10.0) == [0.0, 0.1, 0.2, 0.3, 0.4]

    def test_bursty_offsets_are_deterministic_and_monotone(self):
        from repro.server.loadtest import arrival_offsets

        first = arrival_offsets(300, 25.0, arrival="bursty", seed=11)
        assert first == arrival_offsets(300, 25.0, arrival="bursty", seed=11)
        assert first != arrival_offsets(300, 25.0, arrival="bursty", seed=12)
        assert first == sorted(first)
        assert len(first) == 300

    def test_bursty_offsets_keep_the_long_run_rate(self):
        from repro.server.loadtest import arrival_offsets

        offsets = arrival_offsets(1000, 50.0, arrival="bursty", seed=3)
        rate = len(offsets) / offsets[-1]
        assert 30.0 < rate < 85.0  # ~50 rps, delivered in spikes

    def test_bursty_offsets_actually_burst(self):
        from repro.server.loadtest import arrival_offsets

        offsets = arrival_offsets(200, 20.0, arrival="bursty", seed=5)
        simultaneous = len(offsets) - len(set(offsets))
        assert simultaneous > 50  # many arrivals share a burst instant

    def test_unknown_arrival_model_is_rejected(self):
        from repro.server.loadtest import arrival_offsets, run_loadtest

        with pytest.raises(ValueError, match="unknown arrival model"):
            arrival_offsets(10, 5.0, arrival="diurnal")
        with pytest.raises(ValueError, match="unknown arrival model"):
            run_loadtest("http://127.0.0.1:1", rps=5, duration=1, arrival="diurnal")


class TestCliLoadtest:
    def test_loadtest_round_trip_against_inprocess_daemon(self, tmp_path, capsys):
        """`repro.cli loadtest` against a live in-process front end + worker."""
        db = tmp_path / "jobs.db"
        store = JobStore(db)

        ports = {}
        ready = threading.Event()
        stop_box = {}

        def front_end() -> None:
            from repro.server.http import RecoveryServer

            async def run() -> None:
                server = RecoveryServer(store, workers_alive=lambda: 1)
                await server.start(port=0)
                ports["port"] = server.port
                stop_box["loop"] = asyncio.get_running_loop()
                stop_box["stop"] = asyncio.Event()
                ready.set()
                await stop_box["stop"].wait()
                await server.stop()

            asyncio.run(run())

        class Flag:
            def __init__(self):
                self.value = False

            def set(self):
                self.value = True

            def is_set(self):
                return self.value

        flag = Flag()
        server_thread = threading.Thread(target=front_end, daemon=True)
        worker_thread = threading.Thread(
            target=worker_loop,
            args=(str(db), "w0"),
            kwargs={"poll_interval": 0.02, "stop": flag},
            daemon=True,
        )
        server_thread.start()
        assert ready.wait(timeout=10)
        worker_thread.start()
        try:
            out = tmp_path / "BENCH_server.json"
            code = main(
                [
                    "loadtest",
                    "--url",
                    f"http://127.0.0.1:{ports['port']}",
                    "--rps",
                    "10",
                    "--duration",
                    "1",
                    "--distinct",
                    "3",
                    "--seed",
                    "7",
                    "--out",
                    str(out),
                    "--json",
                ]
            )
            assert code == 0
            bench = json.loads(out.read_text())
            assert bench["ok"] is True
            assert bench["failed_jobs"] == 0
            assert bench["dedup_hits"] > 0
            printed = json.loads(capsys.readouterr().out)
            assert printed["kind"] == "server-bench"
        finally:
            flag.set()
            stop_box["loop"].call_soon_threadsafe(stop_box["stop"].set)
            server_thread.join(timeout=10)
            worker_thread.join(timeout=10)
            store.close()

    def test_loadtest_rejects_bad_scenario_space(self):
        with pytest.raises(SystemExit, match="unknown scenario space"):
            main(["loadtest", "--url", "http://127.0.0.1:1", "--scenario-space", "galaxy"])

    def test_loadtest_unreachable_daemon_exits_cleanly(self, tmp_path):
        code = main(
            [
                "loadtest",
                "--url",
                "http://127.0.0.1:9",
                "--rps",
                "3",
                "--duration",
                "1",
                "--distinct",
                "2",
                "--wait-timeout",
                "2",
                "--out",
                str(tmp_path / "bench.json"),
            ]
        )
        assert code == 1  # transport errors are reported, not crashed on


class TestLoadtestOverheadMeasurement:
    def test_measure_direct_records_the_overhead_ratio(self, tmp_path):
        """measure_direct adds the served-vs-direct trajectory fields."""
        from repro.server.loadtest import run_loadtest

        db = tmp_path / "jobs.db"
        store = JobStore(db)

        ports = {}
        ready = threading.Event()
        stop_box = {}

        def front_end() -> None:
            from repro.server.http import RecoveryServer

            async def run() -> None:
                server = RecoveryServer(store, workers_alive=lambda: 1)
                await server.start(port=0)
                ports["port"] = server.port
                stop_box["loop"] = asyncio.get_running_loop()
                stop_box["stop"] = asyncio.Event()
                ready.set()
                await stop_box["stop"].wait()
                await server.stop()

            asyncio.run(run())

        flag = threading.Event()
        server_thread = threading.Thread(target=front_end, daemon=True)
        worker_thread = threading.Thread(
            target=worker_loop,
            args=(str(db), "w0"),
            kwargs={"poll_interval": 0.02, "stop": flag},
            daemon=True,
        )
        server_thread.start()
        assert ready.wait(timeout=10)
        worker_thread.start()
        try:
            out = tmp_path / "BENCH_server.json"
            report = run_loadtest(
                f"http://127.0.0.1:{ports['port']}",
                rps=8,
                duration=0.5,
                distinct=2,
                seed=3,
                out=str(out),
                measure_direct=True,
            )
            assert report.ok
            assert report.served_solves_per_sec > 0
            assert report.direct_solves_per_sec > 0
            assert report.paced_vs_direct_pct is not None
            bench = json.loads(out.read_text())
            assert bench["schema_version"] == 2
            assert bench["direct_seconds"] > 0
            assert bench["paced_vs_direct_pct"] == pytest.approx(report.paced_vs_direct_pct)
            # the ratio is self-consistent with the recorded rates
            expected = (bench["direct_solves_per_sec"] / bench["served_solves_per_sec"] - 1) * 100
            assert bench["paced_vs_direct_pct"] == pytest.approx(expected)
        finally:
            flag.set()
            stop_box["loop"].call_soon_threadsafe(stop_box["stop"].set)
            server_thread.join(timeout=10)
            worker_thread.join(timeout=10)
            store.close()

    def test_plain_loadtest_leaves_direct_fields_empty(self, tmp_path):
        from repro.server.loadtest import LoadtestReport

        payload = LoadtestReport(target_rps=1.0, duration_seconds=1.0).to_dict()
        assert payload["direct_seconds"] == 0.0
        assert payload["paced_vs_direct_pct"] is None
