"""The backend contract suite: every JobStore backend, one set of invariants.

Each test here runs once per backend (single-file SQLite and the sharded
fleet) through the parametrized ``store`` fixture.  The suite *is* the
contract documented in ``repro/server/stores/base.py`` — dedup, lifecycle,
claim races, claim-holder guards, the poison budget, crash recovery, the
warm-topology sidecar and worker beacons must behave identically whether
there is one store file or eight, because ``http``/``workers``/``daemon``
cannot know (and must not care) which backend they got.

Backend-specific behaviour (schema migrations, shard manifests, SQL-level
write skipping) lives in ``test_server_store.py`` and
``test_store_sharded.py``.
"""

import threading
import time

import pytest

from repro.api.requests import (
    AssessmentRequest,
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
)
from repro.server.stores import (
    DEFAULT_MAX_ATTEMPTS,
    JobStoreBackend,
    open_store,
)

BACKENDS = {"sqlite": 1, "sharded": 3}


def grid_request(seed: int = 1, pairs: int = 1) -> RecoveryRequest:
    return RecoveryRequest(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(num_pairs=pairs, flow_per_pair=5.0),
        algorithms=("ISP",),
        seed=seed,
    )


def assess_request(seed: int = 1) -> AssessmentRequest:
    return AssessmentRequest(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(num_pairs=1, flow_per_pair=5.0),
        seed=seed,
    )


@pytest.fixture(params=sorted(BACKENDS))
def backend_name(request):
    return request.param


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "jobs.db"


@pytest.fixture()
def store(backend_name, store_path):
    with open_store(store_path, shards=BACKENDS[backend_name]) as handle:
        yield handle


class TestProtocol:
    def test_backend_satisfies_the_protocol(self, store):
        assert isinstance(store, JobStoreBackend)


class TestSubmission:
    def test_submit_creates_a_queued_job(self, store):
        record, created = store.submit(grid_request())
        assert created
        assert record.state == "queued"
        assert record.attempts == 0
        assert record.first_finished_at is None
        assert store.queue_depth() == 1

    def test_resubmission_is_deduplicated(self, store):
        first, created = store.submit(grid_request())
        again, created_again = store.submit(grid_request())
        assert created and not created_again
        assert first.digest == again.digest
        assert store.queue_depth() == 1

    def test_dict_and_object_submissions_share_a_digest(self, store):
        record, _ = store.submit(grid_request())
        same, created = store.submit(grid_request().to_dict())
        assert not created
        assert same.digest == record.digest

    def test_kinds_get_distinct_digests(self, store):
        solve, _ = store.submit(grid_request())
        assess, created = store.submit(assess_request())
        assert created
        assert solve.digest != assess.digest
        assert assess.kind == "assessment"

    def test_failed_job_is_requeued_by_resubmission(self, store):
        record, _ = store.submit(grid_request())
        claimed = store.claim("w1")
        store.fail(claimed.digest, "boom", worker="w1")
        requeued, created = store.submit(grid_request())
        assert not created  # still the same job, not a new row
        assert requeued.state == "queued"
        assert requeued.error is None
        assert requeued.attempts == 0
        assert requeued.first_finished_at is None

    def test_submit_many_matches_per_item_submit(self, store):
        requests = [grid_request(seed) for seed in range(4)] + [grid_request(0)]
        outcomes = store.submit_many(requests)
        assert len(outcomes) == 5
        assert [created for _, created in outcomes] == [True, True, True, True, False]
        assert outcomes[4][0].digest == outcomes[0][0].digest  # in-batch dedup
        assert len({record.digest for record, _ in outcomes}) == 4
        assert store.queue_depth() == 4

    def test_submit_many_keeps_input_order(self, store):
        requests = [grid_request(seed) for seed in range(6)]
        outcomes = store.submit_many(requests)
        expected = [store.submit(request)[0].digest for request in requests]
        assert [record.digest for record, _ in outcomes] == expected


class TestClaims:
    def test_claims_are_globally_fifo(self, store):
        digests = []
        for seed in range(8):
            record, _ = store.submit(grid_request(seed))
            digests.append(record.digest)
            time.sleep(0.002)  # distinct created_at, so order is by age
        claimed = [store.claim("w1").digest for _ in range(8)]
        assert claimed == digests

    def test_claim_batch_respects_limit_and_order(self, store):
        expected = []
        for seed in range(6):
            record, _ = store.submit(grid_request(seed))
            expected.append(record.digest)
            time.sleep(0.002)
        batch = store.claim_batch("w1", limit=4)
        assert [record.digest for record in batch] == expected[:4]
        assert all(record.state == "running" for record in batch)
        assert all(record.worker == "w1" for record in batch)
        assert store.queue_depth() == 2

    def test_racing_claimers_get_each_job_exactly_once(self, store, store_path):
        for seed in range(12):
            store.submit(grid_request(seed))
        results = {}
        barrier = threading.Barrier(3)

        def racer(name):
            handle = open_store(store_path)  # own connection, like a worker
            try:
                barrier.wait()
                got = []
                while True:
                    batch = handle.claim_batch(name, limit=2)
                    if not batch:
                        break
                    got.extend(record.digest for record in batch)
                results[name] = got
            finally:
                handle.close()

        threads = [threading.Thread(target=racer, args=(f"w{i}",)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        claimed = [digest for got in results.values() for digest in got]
        assert len(claimed) == 12
        assert len(set(claimed)) == 12  # exactly once, no duplicates
        assert store.queue_depth() == 0

    def test_claim_on_empty_queue_returns_none(self, store):
        assert store.claim("w1") is None
        assert store.claim_batch("w1", limit=8) == []


class TestClaimHolderGuard:
    def test_wrong_worker_cannot_complete(self, store):
        record, _ = store.submit(grid_request())
        store.claim("w1")
        assert not store.complete(record.digest, {"x": 1}, worker="intruder")
        assert store.get(record.digest).state == "running"
        assert store.complete(record.digest, {"x": 1}, worker="w1")
        assert store.get(record.digest).state == "done"

    def test_wrong_worker_cannot_fail(self, store):
        record, _ = store.submit(grid_request())
        store.claim("w1")
        assert not store.fail(record.digest, "boom", worker="intruder")
        assert store.get(record.digest).state == "running"

    def test_terminal_rows_cannot_be_completed_again(self, store):
        record, _ = store.submit(grid_request())
        store.claim("w1")
        store.complete(record.digest, {"x": 1}, worker="w1")
        assert not store.complete(record.digest, {"x": 2}, worker="w1")
        assert not store.fail(record.digest, "late", worker="w1")
        assert store.get(record.digest).result == {"x": 1}

    def test_requeued_row_rejects_the_old_holder(self, store):
        record, _ = store.submit(grid_request())
        store.claim("w1")
        store.requeue_orphans()  # daemon restart while w1 still runs
        store.claim("w2")
        assert not store.complete(record.digest, {"stale": True}, worker="w1")
        assert store.complete(record.digest, {"fresh": True}, worker="w2")
        assert store.get(record.digest).result == {"fresh": True}


class TestUpgradeResult:
    def test_upgrade_replaces_a_done_envelope_in_place(self, store):
        record, _ = store.submit(grid_request())
        store.claim("w1")
        store.complete(record.digest, {"stage": 1}, worker="w1")
        assert store.upgrade_result(record.digest, {"stage": 2}, worker="w1")
        final = store.get(record.digest)
        assert final.state == "done"
        assert final.result == {"stage": 2}

    def test_upgrade_requires_a_done_row(self, store):
        record, _ = store.submit(grid_request())
        assert not store.upgrade_result(record.digest, {"early": True})
        store.claim("w1")
        assert not store.upgrade_result(record.digest, {"early": True}, worker="w1")
        assert store.get(record.digest).result is None

    def test_upgrade_never_touches_first_completion_time(self, store):
        """The satellite-1 regression, as a contract: claim -> *first* answer.

        An upgraded job must keep its original completion stamp for the
        latency histogram — ``finished_at`` moves (the envelope changed),
        ``first_finished_at`` must not.
        """
        record, _ = store.submit(grid_request())
        store.claim("w1")
        store.complete(record.digest, {"stage": 1}, worker="w1")
        first = store.get(record.digest)
        time.sleep(0.05)
        assert store.upgrade_result(record.digest, {"stage": 2}, worker="w1")
        upgraded = store.get(record.digest)
        assert upgraded.first_finished_at == first.first_finished_at
        assert upgraded.finished_at > first.finished_at
        # and the histogram samples measure claim -> first completion
        [(completed_at, seconds)] = store.solve_latency_samples()
        assert completed_at == first.first_finished_at
        assert seconds == pytest.approx(first.first_finished_at - first.started_at)
        assert seconds < 0.05  # not polluted by the 50 ms upgrade delay


class TestPoisonBudget:
    def _exhaust(self, store, digest):
        """Burn the oldest queued job's whole attempt budget via crashes.

        FIFO makes single claims deterministic: the target (submitted
        first) is re-claimed every round, other jobs never touched.
        """
        for _ in range(DEFAULT_MAX_ATTEMPTS):
            [claimed] = store.claim_batch("w1", limit=1)
            assert claimed.digest == digest
            store.requeue_orphans()  # the worker "crashed" mid-execution

    def test_exhausted_job_is_failed_not_reclaimed(self, store):
        record, _ = store.submit(grid_request())
        self._exhaust(store, record.digest)
        assert store.claim("w1") is None
        final = store.get(record.digest)
        assert final.state == "failed"
        assert "gave up" in final.error

    def test_sweep_preserves_the_root_cause_error(self, store):
        """The satellite-2 regression: the give-up text appends, not overwrites.

        The requeue breadcrumb names the worker that vanished; the poison
        sweep must carry it into the terminal error instead of replacing
        it with only the generic give-up message.
        """
        record, _ = store.submit(grid_request())
        self._exhaust(store, record.digest)
        store.claim("w2")  # triggers the sweep
        final = store.get(record.digest)
        assert final.state == "failed"
        assert "gave up after 3 failed attempt(s)" in final.error
        assert "vanished mid-execution" in final.error
        assert "w1" in final.error

    def test_healthy_jobs_are_unaffected_by_the_sweep(self, store):
        poisoned, _ = store.submit(grid_request(1))
        time.sleep(0.002)  # distinct created_at: the poisoned job is oldest
        healthy, _ = store.submit(grid_request(2))
        self._exhaust(store, poisoned.digest)
        claimed = store.claim_batch("w2", limit=10)
        assert [record.digest for record in claimed] == [healthy.digest]
        assert store.get(poisoned.digest).state == "failed"
        assert store.get(healthy.digest).state == "running"


class TestCrashRecovery:
    def test_requeue_orphans_returns_running_rows_to_the_queue(self, store):
        record, _ = store.submit(grid_request())
        claimed = store.claim("w1")
        assert claimed.attempts == 1
        assert store.requeue_orphans() == 1
        requeued = store.get(record.digest)
        assert requeued.state == "queued"
        assert requeued.attempts == 1  # the budget is spent, not reset
        assert requeued.worker is None
        assert requeued.started_at is None
        assert "vanished mid-execution" in requeued.error

    def test_requeue_orphans_spares_terminal_rows(self, store):
        done, _ = store.submit(grid_request(1))
        failed, _ = store.submit(grid_request(2))
        for _ in range(2):
            store.claim("w1")
        store.complete(done.digest, {"x": 1}, worker="w1")
        store.fail(failed.digest, "boom", worker="w1")
        assert store.requeue_orphans() == 0
        assert store.get(done.digest).state == "done"
        assert store.get(failed.digest).state == "failed"

    def test_mid_batch_crash_loses_nothing(self, store):
        digests = [store.submit(grid_request(seed))[0].digest for seed in range(3)]
        batch = store.claim_batch("w1", limit=3)
        assert len(batch) == 3
        store.complete(batch[0].digest, {"x": 1}, worker="w1")
        # the worker dies here; the two un-executed claims are orphans
        assert store.requeue_orphans() == 2
        states = {digest: store.get(digest).state for digest in digests}
        assert sorted(states.values()) == ["done", "queued", "queued"]

    def test_clean_completion_clears_the_breadcrumb(self, store):
        record, _ = store.submit(grid_request())
        store.claim("w1")
        store.requeue_orphans()
        assert store.get(record.digest).error is not None
        store.claim("w2")
        store.complete(record.digest, {"x": 1}, worker="w2")
        final = store.get(record.digest)
        assert final.state == "done"
        assert final.error is None  # a done row answered cleanly


class TestIntrospection:
    def test_counts_cover_every_state(self, store):
        assert store.counts() == {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for seed in range(4):
            store.submit(grid_request(seed))
        store.claim("w1")
        claimed = store.claim("w1")
        store.complete(claimed.digest, {"x": 1}, worker="w1")
        assert store.counts() == {"queued": 2, "running": 1, "done": 1, "failed": 0}
        assert store.queue_depth() == 2

    def test_jobs_filters_by_state_and_orders_newest_first(self, store):
        digests = []
        for seed in range(5):
            record, _ = store.submit(grid_request(seed))
            digests.append(record.digest)
            time.sleep(0.002)
        store.claim("w1")
        queued = store.jobs(state="queued")
        assert [record.digest for record in queued] == digests[1:][::-1]
        assert len(store.jobs(limit=2)) == 2
        with pytest.raises(ValueError):
            store.jobs(state="nonsense")

    def test_solve_latencies_cover_all_done_jobs(self, store):
        for seed in range(3):
            store.submit(grid_request(seed))
        for _ in range(3):
            claimed = store.claim("w1")
            store.complete(claimed.digest, {"x": 1}, worker="w1")
        latencies = store.solve_latencies()
        assert len(latencies) == 3
        assert all(value >= 0.0 for value in latencies)
        samples = store.solve_latency_samples()
        assert [stamp for stamp, _ in samples] == sorted(
            (stamp for stamp, _ in samples), reverse=True
        )


class TestTopologySidecar:
    def test_save_is_write_once_per_digest(self, store):
        assert store.save_topology("abc", b"first")
        assert not store.save_topology("abc", b"second")
        assert store.load_topologies()["abc"] == b"first"

    def test_load_excludes_known_digests(self, store):
        store.save_topology("abc", b"blob-a")
        store.save_topology("def", b"blob-b")
        assert store.load_topologies(exclude=["abc"]) == {"def": b"blob-b"}
        assert sorted(store.topology_digests()) == ["abc", "def"]

    def test_every_handle_sees_every_saved_topology(self, store, store_path):
        """Sidecar reads are fleet-wide regardless of which handle wrote."""
        for index in range(8):
            store.save_topology(f"digest-{index}", b"blob")
        other = open_store(store_path)
        try:
            assert len(other.load_topologies()) == 8
        finally:
            other.close()


class TestWorkerBeacons:
    def test_worker_ids_list_every_reporter(self, store):
        assert store.worker_ids() == []
        store.record_worker_stats("w1", {"jobs_done": 1})
        store.record_worker_stats("w0", {"jobs_done": 2})
        assert store.worker_ids() == ["w0", "w1"]

    def test_totals_sum_each_worker_once(self, store):
        store.record_worker_stats("w0", {"jobs_done": 2, "busy_seconds": 0.5})
        store.record_worker_stats("w1", {"jobs_done": 3})
        store.record_worker_stats("w0", {"jobs_done": 4, "busy_seconds": 1.0})  # upsert
        totals = store.worker_stats_totals()
        assert totals["jobs_done"] == 7.0
        assert totals["busy_seconds"] == 1.0


class TestTelemetry:
    """Schema-v4 telemetry surface: trace ids, span sidecar, stage samples.

    All of it is observability-only — it must never perturb digests or
    result envelopes — but the *storage* behaviour is part of the backend
    contract: the HTTP layer stamps ids and the trace endpoint reads span
    trees without knowing which backend it got.
    """

    def test_submit_stamps_the_creating_trace_id(self, store):
        record, created = store.submit(grid_request(), trace_id="trace-created-01")
        assert created
        assert record.trace_id == "trace-created-01"
        assert store.get(record.digest).trace_id == "trace-created-01"
        assert store.get(record.digest).to_dict()["trace_id"] == "trace-created-01"

    def test_dedup_keeps_the_creators_trace_id(self, store):
        first, _ = store.submit(grid_request(), trace_id="trace-original-1")
        again, created = store.submit(grid_request(), trace_id="trace-retry-0002")
        assert not created
        assert again.trace_id == "trace-original-1"
        assert store.get(first.digest).trace_id == "trace-original-1"

    def test_submit_many_stamps_every_created_row(self, store):
        requests = [grid_request(seed=s) for s in (1, 2, 3)]
        results = store.submit_many(requests, trace_id="trace-batch-0001")
        assert all(created for _, created in results)
        for record, _ in results:
            assert store.get(record.digest).trace_id == "trace-batch-0001"

    def test_untraced_submission_leaves_trace_id_none(self, store):
        record, _ = store.submit(grid_request())
        assert record.trace_id is None
        assert store.get(record.digest).to_dict()["trace_id"] is None

    def test_trace_id_never_perturbs_the_digest(self, store):
        """Golden: telemetry rides beside the request, never inside it."""
        with_trace, _ = store.submit(grid_request(seed=7), trace_id="trace-golden-001")
        bare = grid_request(seed=7).digest()
        assert with_trace.digest == bare

    def test_span_sidecar_round_trips_by_source(self, store):
        record, _ = store.submit(grid_request(), trace_id="trace-spans-0001")
        frontend = {"trace_id": "trace-spans-0001", "pid": 1, "spans": [], "dropped_spans": 0}
        worker = {
            "trace_id": "trace-spans-0001",
            "pid": 2,
            "spans": [{"name": "worker.execute", "wall_seconds": 0.5, "cpu_seconds": 0.4}],
            "dropped_spans": 0,
        }
        store.save_spans(record.digest, "frontend", frontend, trace_id="trace-spans-0001")
        store.save_spans(record.digest, "worker", worker, trace_id="trace-spans-0001")
        loaded = store.load_spans(record.digest)
        assert loaded == {"frontend": frontend, "worker": worker}
        assert store.load_spans("unknown-digest") == {}

    def test_span_sidecar_upserts_per_source(self, store):
        record, _ = store.submit(grid_request())
        stale = {"trace_id": None, "pid": 3, "spans": [], "dropped_spans": 0}
        fresh = {
            "trace_id": None,
            "pid": 4,
            "spans": [{"name": "worker.execute", "wall_seconds": 0.1, "cpu_seconds": 0.1}],
            "dropped_spans": 0,
        }
        store.save_spans(record.digest, "worker", stale)
        store.save_spans(record.digest, "worker", fresh)  # retry replaces
        assert store.load_spans(record.digest) == {"worker": fresh}

    def test_stage_latency_samples_cover_done_jobs(self, store):
        record, _ = store.submit(grid_request())
        store.claim("w1")
        store.complete(record.digest, {"x": 1}, worker="w1")
        stages = store.stage_latency_samples()
        assert set(stages) == {"queue_wait", "serialize", "served"}
        assert len(stages["queue_wait"]) == 1
        assert len(stages["serialize"]) == 1
        assert len(stages["served"]) == 1
        assert all(value >= 0.0 for samples in stages.values() for value in samples)

    def test_stage_latency_samples_empty_store(self, store):
        stages = store.stage_latency_samples()
        assert set(stages) == {"queue_wait", "serialize", "served"}
        assert all(samples == [] for samples in stages.values())

    def test_layout_info_names_the_backend(self, store, backend_name):
        layout = store.layout_info()
        assert layout["backend"] == backend_name
        assert layout["shards"] == BACKENDS[backend_name]
        assert len(layout["shard_queue_depths"]) == BACKENDS[backend_name]
        store.submit(grid_request())
        assert sum(store.layout_info()["shard_queue_depths"]) == 1
