"""Tests for the scenario generator and the fuzz harness."""

import dataclasses

import pytest

from repro.api.service import RecoveryService
from repro.scenarios import DEFAULT_SPACE, ScenarioGenerator, ScenarioSpace, run_fuzz
from repro.verification import audit_result

SMALL_SPACE = ScenarioSpace(
    topologies=(("grid", {"rows": (3,), "cols": (3,), "capacity": (20.0,)}),),
    disruptions=(("complete", {}), ("targeted", {"node_budget": (2,)})),
    algorithms=("ISP", "SRT", "ALL"),
    num_pairs=(1, 2),
    flow_per_pair=(4.0,),
)


class TestScenarioSpace:
    def test_default_space_uses_all_algorithms(self):
        from repro.heuristics.registry import available_algorithms

        assert DEFAULT_SPACE.resolved_algorithms() == tuple(available_algorithms())

    def test_explicit_algorithms_win(self):
        assert SMALL_SPACE.resolved_algorithms() == ("ISP", "SRT", "ALL")


class TestScenarioGenerator:
    def test_budget_requests(self):
        requests = ScenarioGenerator(space=SMALL_SPACE, seed=1).requests(5)
        assert len(requests) == 5
        assert all(request.topology.name == "grid" for request in requests)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            ScenarioGenerator(space=SMALL_SPACE).requests(0)

    def test_overconstrained_space_raises(self):
        # barabasi-albert with num_nodes <= attachment can never build.
        broken = dataclasses.replace(
            SMALL_SPACE,
            topologies=(("barabasi-albert", {"num_nodes": (2,), "attachment": (5,)}),),
        )
        generator = ScenarioGenerator(space=broken, seed=0, max_attempts=3)
        with pytest.raises(RuntimeError):
            generator.sample_request()
        assert generator.discarded == 3

    def test_distinct_seeds_give_distinct_streams(self):
        a = ScenarioGenerator(space=SMALL_SPACE, seed=1).requests(4)
        b = ScenarioGenerator(space=SMALL_SPACE, seed=2).requests(4)
        assert [r.digest() for r in a] != [r.digest() for r in b]

    def test_sample_request_is_the_single_draw_primitive(self):
        # requests(n) is exactly n sample_request() calls on the same
        # stream: interleaving the two APIs must give identical draws.
        batch = ScenarioGenerator(space=SMALL_SPACE, seed=3).requests(3)
        generator = ScenarioGenerator(space=SMALL_SPACE, seed=3)
        singles = [generator.sample_request() for _ in range(3)]
        assert [r.digest() for r in singles] == [r.digest() for r in batch]

    def test_sample_request_materialises(self):
        import numpy as np

        from repro.api.requests import materialise_instance
        from repro.engine.tasks import cell_seed_sequence, root_entropy

        request = ScenarioGenerator(space=SMALL_SPACE, seed=11).sample_request()
        rng = np.random.default_rng(cell_seed_sequence(root_entropy(request.seed), 0, 0))
        supply, demand, _ = materialise_instance(
            request.topology, request.disruption, request.demand, rng
        )
        assert demand.total_demand > 0


class TestSampleOnlineSpec:
    def test_sampled_spec_is_valid_and_seeded(self):
        from repro.online import OnlineScenarioSpec

        spec = ScenarioGenerator(space=SMALL_SPACE, seed=5).sample_online_spec(epochs=3)
        assert isinstance(spec, OnlineScenarioSpec)
        assert spec.epochs == 3
        assert len(spec.events) == 1
        assert spec.opt_time_limit == SMALL_SPACE.opt_time_limit

    def test_sampling_is_deterministic(self):
        a = ScenarioGenerator(space=SMALL_SPACE, seed=5).sample_online_spec()
        b = ScenarioGenerator(space=SMALL_SPACE, seed=5).sample_online_spec()
        assert a.digest() == b.digest()

    def test_distinct_seeds_vary_the_temporal_layer(self):
        digests = {
            ScenarioGenerator(space=SMALL_SPACE, seed=seed).sample_online_spec().digest()
            for seed in range(6)
        }
        assert len(digests) > 1

    def test_custom_events_menu(self):
        menu = ({"kind": "cascade", "probability": 0.9},)
        spec = ScenarioGenerator(space=SMALL_SPACE, seed=5).sample_online_spec(
            events_menu=menu
        )
        assert spec.events[0].kind == "cascade"
        assert spec.events[0].probability == 0.9


class TestRunFuzz:
    def test_verified_campaign_is_clean(self):
        report = run_fuzz(budget=3, seed=5, space=SMALL_SPACE)
        assert report.ok
        assert report.audit.checked == 3 * 3  # requests x algorithms
        assert len(report.envelopes) == 3
        payload = report.to_dict()
        assert payload["kind"] == "fuzz-report"
        assert payload["ok"] is True
        assert len(payload["requests"]) == 3

    def test_unverified_campaign_skips_audit(self):
        report = run_fuzz(budget=2, seed=5, space=SMALL_SPACE, verify=False)
        assert report.audit.checked == 0
        assert report.ok  # no audit, no violations

    def test_campaign_is_reproducible(self):
        a = run_fuzz(budget=2, seed=9, space=SMALL_SPACE, verify=False)
        b = run_fuzz(budget=2, seed=9, space=SMALL_SPACE, verify=False)
        assert [r.digest() for r in a.requests] == [r.digest() for r in b.requests]
        for left, right in zip(a.envelopes, b.envelopes):
            for run_a, run_b in zip(left.results, right.results):
                assert run_a.plan == run_b.plan

    def test_cache_dir_makes_campaigns_resumable(self, tmp_path):
        first = run_fuzz(
            budget=2, seed=3, space=SMALL_SPACE, verify=False, cache_dir=str(tmp_path)
        )
        assert not any(run.cached for env in first.envelopes for run in env.results)
        second = run_fuzz(
            budget=2, seed=3, space=SMALL_SPACE, verify=False, cache_dir=str(tmp_path)
        )
        assert all(run.cached for env in second.envelopes for run in env.results)

    def test_rows_align_with_requests(self):
        report = run_fuzz(budget=2, seed=5, space=SMALL_SPACE, verify=False)
        rows = report.rows()
        assert len(rows) == 2
        assert rows[0]["request"] == report.requests[0].digest()[:12]
        assert {row["disruption"] for row in rows} <= {"complete", "targeted"}


class TestAuditEnvelope:
    def test_audit_result_matches_in_process_solve(self):
        service = RecoveryService()
        generator = ScenarioGenerator(space=SMALL_SPACE, seed=7)
        request = generator.sample_request()
        envelope = service.solve(request)
        report = audit_result(service, request, envelope, context=service.context)
        assert report.ok
        assert report.checked == len(request.algorithms)
