"""Edge cases of the damage-assessment report.

The online engine runs :func:`assess_damage` on every epoch's *believed*
network, which routinely pushes the assessment into corners the batch path
rarely sees: demand graphs with nothing in them, demand pairs whose
endpoints live in permanently separate components, and pristine networks
(full fog hides all damage, so the believed network can look untouched).
"""

import pytest

from repro.extensions.assessment import assess_damage
from repro.network.demand import DemandGraph
from repro.network.supply import SupplyGraph


def two_islands() -> SupplyGraph:
    """Two components that no repair could ever join: a-b and c-d."""
    supply = SupplyGraph()
    for index, node in enumerate(["a", "b", "c", "d"]):
        supply.add_node(node, pos=(float(index), 0.0))
    supply.add_edge("a", "b", capacity=10.0)
    supply.add_edge("c", "d", capacity=10.0)
    return supply


class TestDisconnectedPairs:
    def test_pair_across_islands_is_disconnected_even_when_pristine(self):
        demand = DemandGraph()
        demand.add("a", "d", 5.0)
        assessment = assess_damage(two_islands(), demand)
        assert assessment.broken_nodes == 0
        assert assessment.disconnected_pairs == [("a", "d")]
        assert assessment.fully_cut_off

    def test_mixed_island_demand_counts_only_the_unroutable_pair(self):
        demand = DemandGraph()
        demand.add("a", "d", 5.0)
        demand.add("a", "b", 5.0)
        assessment = assess_damage(two_islands(), demand)
        assert assessment.disconnected_pairs == [("a", "d")]
        assert assessment.pre_recovery_satisfied_fraction == pytest.approx(0.5)
        assert not assessment.fully_cut_off

    def test_broken_endpoint_disconnects_its_pair(self, line_supply):
        line_supply.break_node("e")
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        assessment = assess_damage(line_supply, demand)
        assert assessment.disconnected_pairs == [("a", "e")]
        assert assessment.fully_cut_off


class TestZeroDemand:
    def test_empty_demand_graph_is_vacuously_satisfied(self, line_supply):
        assessment = assess_damage(line_supply, DemandGraph())
        assert assessment.disconnected_pairs == []
        assert assessment.pre_recovery_satisfied_fraction == pytest.approx(1.0)
        assert not assessment.fully_cut_off
        assert assessment.summary()["pre_recovery_satisfied_pct"] == 100.0

    def test_empty_demand_on_destroyed_network_is_still_satisfied(self, line_supply):
        """No demand means nothing is cut off, no matter the damage."""
        line_supply.break_all()
        assessment = assess_damage(line_supply, DemandGraph())
        assert assessment.broken_fraction == pytest.approx(1.0)
        assert assessment.pre_recovery_satisfied_fraction == pytest.approx(1.0)
        assert not assessment.fully_cut_off


class TestPristineNetwork:
    def test_pristine_network_reports_clean_bill(self, line_supply, single_demand):
        assessment = assess_damage(line_supply, single_demand)
        assert assessment.broken_nodes == 0
        assert assessment.broken_edges == 0
        assert assessment.broken_fraction == 0.0
        assert assessment.working_components == 1
        assert assessment.largest_working_component == line_supply.number_of_nodes
        assert assessment.disconnected_pairs == []
        assert assessment.pre_recovery_satisfied_fraction == pytest.approx(1.0)

    def test_empty_supply_graph(self):
        """A supply graph with no nodes at all must not crash the report."""
        assessment = assess_damage(SupplyGraph(), DemandGraph())
        assert assessment.total_nodes == 0
        assert assessment.broken_fraction == 0.0
        assert assessment.working_components == 0
        assert assessment.largest_working_component == 0
        assert not assessment.fully_cut_off
