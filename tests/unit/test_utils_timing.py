"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Timer, timed


class TestTimer:
    def test_elapsed_after_exit(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_elapsed_while_running(self):
        with Timer() as timer:
            first = timer.elapsed
            time.sleep(0.005)
            second = timer.elapsed
        assert second >= first >= 0.0

    def test_unstarted_timer_raises(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            _ = timer.elapsed

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= first


class TestTimed:
    def test_returns_result_and_duration(self):
        @timed
        def add(a, b):
            return a + b

        result, elapsed = add(2, 3)
        assert result == 5
        assert elapsed >= 0.0

    def test_preserves_function_name(self):
        @timed
        def my_function():
            return None

        assert my_function.__name__ == "my_function"

    def test_kwargs_forwarded(self):
        @timed
        def concat(a, b=""):
            return a + b

        result, _ = concat("x", b="y")
        assert result == "xy"
