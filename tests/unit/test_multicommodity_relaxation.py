"""Tests for the multi-commodity relaxation (Section VI-A)."""

import pytest

from repro.flows.multicommodity import solve_multicommodity_recovery
from repro.network.demand import DemandGraph
from repro.network.supply import SupplyGraph


class TestRelaxation:
    def test_empty_demand(self, line_supply):
        line_supply.break_all()
        result = solve_multicommodity_recovery(line_supply, DemandGraph())
        assert result.feasible
        assert result.best.total_repairs == 0
        assert result.worst.total_repairs == 0

    def test_forced_path_is_repaired(self, line_supply, single_demand):
        line_supply.break_all()
        result = solve_multicommodity_recovery(line_supply, single_demand)
        assert result.feasible
        # Only one possible routing: the whole path must be repaired by both.
        assert result.best.total_repairs == 9
        assert result.worst.total_repairs == 9

    def test_best_at_most_worst(self, grid3_supply):
        grid3_supply.break_all()
        demand = DemandGraph()
        demand.add((0, 0), (2, 2), 5.0)
        demand.add((0, 2), (2, 0), 5.0)
        result = solve_multicommodity_recovery(grid3_supply, demand)
        assert result.feasible
        assert result.best.total_repairs <= result.worst.total_repairs

    def test_infeasible_demand(self, line_supply):
        line_supply.break_all()
        demand = DemandGraph()
        demand.add("a", "e", 1000.0)
        result = solve_multicommodity_recovery(line_supply, demand)
        assert not result.feasible
        assert result.best.metadata["status"] == "infeasible"

    def test_avoids_broken_edges_when_working_alternative_exists(self, diamond_supply):
        # Only the narrow branch is broken; the wide working branch suffices.
        diamond_supply.break_edge("s", "b")
        diamond_supply.break_edge("b", "t")
        demand = DemandGraph()
        demand.add("s", "t", 8.0)
        result = solve_multicommodity_recovery(diamond_supply, demand)
        assert result.feasible
        assert result.best.total_repairs == 0

    def test_plans_have_routes(self, line_supply, single_demand):
        line_supply.break_all()
        result = solve_multicommodity_recovery(line_supply, single_demand)
        assert result.best.total_satisfied() == pytest.approx(5.0)
        assert result.worst.total_satisfied() == pytest.approx(5.0)

    def test_algorithm_labels(self, line_supply, single_demand):
        line_supply.break_all()
        result = solve_multicommodity_recovery(line_supply, single_demand)
        assert result.best.algorithm == "MCB"
        assert result.worst.algorithm == "MCW"
