"""Tests for the deterministic crew dispatch model."""

import pytest

from repro.online import CrewSimulator, CrewSpec

NODE_A = ("node", "a")
NODE_B = ("node", "b")
NODE_C = ("node", "c")
EDGE_AB = ("edge", ("a", "b"))


class TestDispatch:
    def test_single_crew_executes_a_prefix_in_plan_order(self):
        # 8h day, node = 1h travel + 4h work -> 5h, edge -> 3h: the crew
        # finishes one node and one edge, the second node never starts.
        crews = CrewSimulator(CrewSpec(count=1), epoch_hours=8.0)
        done = crews.execute_epoch([NODE_A, EDGE_AB, NODE_B])
        assert done == [NODE_A, EDGE_AB]
        assert crews.carryover() == 0

    def test_more_crews_complete_more(self):
        one = CrewSimulator(CrewSpec(count=1), epoch_hours=8.0)
        two = CrewSimulator(CrewSpec(count=2), epoch_hours=8.0)
        steps = [NODE_A, NODE_B, NODE_C, EDGE_AB]
        assert len(two.execute_epoch(steps)) > len(one.execute_epoch(steps))

    def test_zero_work_hours_still_pay_travel(self):
        crews = CrewSimulator(
            CrewSpec(count=1, node_hours=0.0, travel_hours=3.0), epoch_hours=10.0
        )
        # Each dispatch costs 3h travel: 3 sites fit in 10h, the 4th does not.
        done = crews.execute_epoch([NODE_A, NODE_B, NODE_C, ("node", "d")])
        assert done == [NODE_A, NODE_B, NODE_C]

    def test_epoch_must_exceed_travel(self):
        with pytest.raises(ValueError):
            CrewSimulator(CrewSpec(travel_hours=8.0), epoch_hours=8.0)


class TestPartialProgress:
    def test_big_job_carries_over_and_finishes_next_epoch(self):
        # node needs 10h work but a day is 6h: 5h progress in epoch one
        # (1h travel), complete in epoch two (1h travel + 5h remaining).
        crews = CrewSimulator(CrewSpec(count=1, node_hours=10.0), epoch_hours=6.0)
        assert crews.execute_epoch([NODE_A]) == []
        assert crews.carryover() == 1
        assert crews.execute_epoch([NODE_A]) == [NODE_A]
        assert crews.carryover() == 0

    def test_progress_survives_replans_that_drop_the_step(self):
        crews = CrewSimulator(CrewSpec(count=1, node_hours=10.0), epoch_hours=6.0)
        crews.execute_epoch([NODE_A])  # 5h progress accrued
        crews.execute_epoch([NODE_B])  # replan ignores a entirely
        assert crews.carryover() == 2  # b also went partial (5h of 10h)
        # When the plan wants a again, the old progress still counts.
        assert crews.execute_epoch([NODE_A]) == [NODE_A]

    def test_travel_is_paid_again_on_revisit(self):
        # 10h job, 6h epochs, 2h travel: 4h progress per epoch; the job
        # needs three epochs (4+4+2), not two — travel never accumulates.
        crews = CrewSimulator(
            CrewSpec(count=1, node_hours=10.0, travel_hours=2.0), epoch_hours=6.0
        )
        assert crews.execute_epoch([NODE_A]) == []
        assert crews.execute_epoch([NODE_A]) == []
        assert crews.execute_epoch([NODE_A]) == [NODE_A]


class TestDeterminism:
    def test_same_steps_same_completions(self):
        steps = [NODE_A, EDGE_AB, NODE_B, NODE_C]
        runs = []
        for _ in range(3):
            crews = CrewSimulator(CrewSpec(count=2), epoch_hours=8.0)
            runs.append(crews.execute_epoch(steps))
        assert runs[0] == runs[1] == runs[2]
