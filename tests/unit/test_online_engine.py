"""Tests for the online episode loop and the campaign runner."""

import pytest

from repro.api.requests import DemandSpec, DisruptionSpec, TopologySpec
from repro.api.results import OnlineResult
from repro.online import (
    REGRET_TOLERANCE,
    CrewSpec,
    EventSpec,
    FogSpec,
    OnlineScenarioSpec,
    Timeline,
    episode_seeds,
    run_campaign,
    run_episode,
)


def make_spec(**changes) -> OnlineScenarioSpec:
    defaults = dict(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
        disruption=DisruptionSpec("gaussian", kwargs={"variance": 2.0, "intensity": 0.9}),
        demand=DemandSpec("routable-far-apart", num_pairs=2, flow_per_pair=2.0),
        seed=7,
        epochs=3,
        epoch_hours=12.0,
        crews=CrewSpec(count=2),
        opt_time_limit=15.0,
    )
    defaults.update(changes)
    return OnlineScenarioSpec(**defaults)


class TestTimeline:
    def test_epochs_and_hours(self):
        timeline = Timeline(epochs=3, epoch_hours=8.0)
        assert len(timeline) == 3
        epochs = list(timeline)
        assert [epoch.index for epoch in epochs] == [0, 1, 2]
        assert [epoch.start_hour for epoch in epochs] == [0.0, 8.0, 16.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Timeline(epochs=0, epoch_hours=8.0)
        with pytest.raises(ValueError):
            Timeline(epochs=1, epoch_hours=0.0)


class TestRunEpisode:
    def test_trace_shape_and_envelope_round_trip(self):
        result = run_episode(make_spec(), verify=True)
        assert len(result.epochs) == 3
        assert result.violations == []
        assert result.ok
        rebuilt = OnlineResult.from_dict(result.to_dict())
        assert rebuilt.fingerprint() == result.fingerprint()

    def test_same_seed_same_fingerprint(self):
        spec = make_spec(
            fog=FogSpec(hidden_fraction=0.3, reveal_per_epoch=1),
            events=(
                EventSpec(kind="aftershock", kwargs={"variance": 2.0}, at_epochs=(1,)),
                EventSpec(kind="cascade", probability=0.5),
            ),
        )
        assert run_episode(spec, verify=True).fingerprint() == run_episode(
            spec, verify=True
        ).fingerprint()

    def test_different_seeds_diverge(self):
        assert run_episode(make_spec(seed=1)).fingerprint() != run_episode(
            make_spec(seed=2)
        ).fingerprint()

    def test_regret_non_negative_against_proven_baseline(self):
        result = run_episode(make_spec(), verify=True)
        if result.regret["baseline_proven"]:
            assert result.regret["regret"] >= -REGRET_TOLERANCE

    def test_no_damage_episode_skips_solving(self):
        result = run_episode(make_spec(disruption=DisruptionSpec("none")), verify=True)
        assert result.final["executed_cost"] == 0.0
        assert result.final["satisfied_pct"] == pytest.approx(100.0)
        assert result.regret["regret"] == pytest.approx(0.0)
        assert all(record["solver"] == {} for record in result.epochs)

    def test_zero_fog_no_events_matches_clairvoyant_satisfaction(self):
        # With full knowledge and a static world, enough epochs let the
        # online runner execute its whole plan: satisfaction must match the
        # clairvoyant baseline and regret reduces to the cost gap.
        result = run_episode(make_spec(epochs=5, epoch_hours=40.0), verify=True)
        assert result.final["satisfied_pct"] == pytest.approx(
            result.baseline["satisfied_pct"]
        )
        assert result.regret["cost_regret"] is not None
        assert result.regret["cost_regret"] >= -REGRET_TOLERANCE

    def test_fog_only_delays_never_corrupts(self):
        # Full fog at epoch 0: the planner sees no damage, plans nothing,
        # and the belief subset invariant keeps every executed repair legal.
        result = run_episode(
            make_spec(fog=FogSpec(hidden_fraction=1.0, reveal_per_epoch=3), epochs=4),
            verify=True,
        )
        assert result.epochs[0]["believed_broken"] == 0
        assert result.epochs[0]["executed_repairs"] == 0
        assert result.violations == []


class TestRunCampaign:
    def test_episode_seeds_are_stable_under_extension(self):
        spec = make_spec()
        assert episode_seeds(spec, 2) == episode_seeds(spec, 4)[:2]
        with pytest.raises(ValueError):
            episode_seeds(spec, 0)

    def test_serial_and_parallel_agree(self):
        spec = make_spec(epochs=2)
        serial = run_campaign(spec, episodes=2, jobs=1)
        parallel = run_campaign(spec, episodes=2, jobs=2)
        assert [episode.fingerprint() for episode in serial.episodes] == [
            episode.fingerprint() for episode in parallel.episodes
        ]

    def test_cache_resumes_without_recompute(self, tmp_path):
        spec = make_spec(epochs=2)
        first = run_campaign(spec, episodes=2, cache_dir=tmp_path)
        second = run_campaign(spec, episodes=3, cache_dir=tmp_path)
        assert first.cached_episodes == 0
        assert second.cached_episodes == 2
        assert [episode.fingerprint() for episode in second.episodes[:2]] == [
            episode.fingerprint() for episode in first.episodes
        ]

    def test_campaign_envelope_and_rows(self):
        campaign = run_campaign(make_spec(epochs=2), episodes=2, verify=True)
        payload = campaign.to_dict()
        assert payload["kind"] == "online-campaign"
        assert payload["summary"]["episodes"] == 2
        assert len(campaign.rows()) == 2
        assert campaign.ok
