"""Tests for the fog-of-war belief state and the event triggers."""

import numpy as np
import pytest

from repro.network.supply import SupplyGraph
from repro.online import (
    BeliefState,
    EventSpec,
    FogSpec,
    apply_event,
    broken_elements,
    event_fires,
)


def damaged_line(broken=("b", "d")) -> SupplyGraph:
    supply = SupplyGraph()
    nodes = ["a", "b", "c", "d", "e"]
    for index, node in enumerate(nodes):
        supply.add_node(node, pos=(float(index), 0.0))
    for u, v in zip(nodes, nodes[1:]):
        supply.add_edge(u, v, capacity=10.0)
    for node in broken:
        supply.break_node(node)
    supply.break_edge("a", "b")
    return supply


class TestBeliefState:
    def test_no_fog_means_full_knowledge(self):
        supply = damaged_line()
        belief = BeliefState(supply, FogSpec(hidden_fraction=0.0), np.random.default_rng(0))
        assert belief.hidden == set()
        believed = belief.believed_supply(supply)
        assert believed.broken_nodes == supply.broken_nodes
        assert believed.broken_edges == supply.broken_edges

    def test_full_fog_hides_everything(self):
        supply = damaged_line()
        belief = BeliefState(supply, FogSpec(hidden_fraction=1.0), np.random.default_rng(0))
        assert belief.hidden == set(broken_elements(supply))
        believed = belief.believed_supply(supply)
        assert believed.broken_nodes == set()
        assert believed.broken_edges == set()

    def test_believed_broken_is_subset_of_true_broken(self):
        supply = damaged_line()
        for seed in range(10):
            belief = BeliefState(
                supply, FogSpec(hidden_fraction=0.5), np.random.default_rng(seed)
            )
            believed = belief.believed_supply(supply)
            assert believed.broken_nodes <= supply.broken_nodes
            assert believed.broken_edges <= supply.broken_edges

    def test_reveal_uncover_in_canonical_order_and_shrinks_fog(self):
        supply = damaged_line()
        belief = BeliefState(supply, FogSpec(hidden_fraction=1.0), np.random.default_rng(0))
        expected = sorted(belief.hidden, key=repr)[:2]
        assert belief.reveal(2) == expected
        assert len(belief.hidden) == len(broken_elements(supply)) - 2
        assert belief.reveal(0) == []

    def test_repaired_elements_are_no_longer_hidden(self):
        supply = damaged_line()
        belief = BeliefState(supply, FogSpec(hidden_fraction=1.0), np.random.default_rng(0))
        belief.note_repaired([("node", "b")])
        assert ("node", "b") not in belief.hidden

    def test_fog_stream_is_deterministic(self):
        supply = damaged_line()
        hidden = [
            BeliefState(supply, FogSpec(hidden_fraction=0.5), np.random.default_rng(3)).hidden
            for _ in range(2)
        ]
        assert hidden[0] == hidden[1]


class TestEventFires:
    def test_scheduled_trigger(self):
        event = EventSpec(kind="attack", kwargs={"node_budget": 1}, at_epochs=(1,))
        rng = np.random.default_rng(0)
        assert not event_fires(event, 0, rng, repairs_completed=0)
        assert event_fires(event, 1, rng, repairs_completed=0)

    def test_probability_draw_is_consumed_even_when_scheduled(self):
        # Stream alignment: the Bernoulli draw happens whether or not the
        # deterministic trigger already fired, so downstream draws agree.
        event = EventSpec(kind="attack", kwargs={"node_budget": 1}, at_epochs=(0,), probability=0.5)
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        event_fires(event, 0, rng_a, repairs_completed=0)  # scheduled anyway
        rng_b.random()
        assert rng_a.random() == rng_b.random()

    def test_cascade_needs_completed_repairs(self):
        event = EventSpec(kind="cascade", at_epochs=(0,))
        rng = np.random.default_rng(0)
        assert not event_fires(event, 0, rng, repairs_completed=0)
        assert event_fires(event, 0, rng, repairs_completed=1)


class TestApplyEvent:
    def test_returns_only_newly_broken_elements(self):
        supply = damaged_line()
        before_nodes = set(supply.broken_nodes)
        event = EventSpec(
            kind="aftershock", kwargs={"variance": 100.0, "intensity": 1.0}, at_epochs=(0,)
        )
        struck, fresh, error = apply_event(event, supply, np.random.default_rng(0))
        assert error is None
        for kind, element in fresh:
            if kind == "node":
                assert element not in before_nodes
                assert struck.is_broken_node(element)

    def test_original_supply_is_not_mutated(self):
        supply = damaged_line()
        before = (set(supply.broken_nodes), set(supply.broken_edges))
        event = EventSpec(
            kind="aftershock", kwargs={"variance": 100.0, "intensity": 1.0}, at_epochs=(0,)
        )
        apply_event(event, supply, np.random.default_rng(0))
        assert (set(supply.broken_nodes), set(supply.broken_edges)) == before

    def test_misconfigured_event_reports_error_instead_of_raising(self):
        # An aftershock needs node positions; a bare graph has none.
        supply = SupplyGraph()
        supply.add_node("a")
        supply.add_node("b")
        supply.add_edge("a", "b", capacity=1.0)
        event = EventSpec(kind="aftershock", kwargs={"variance": 2.0}, at_epochs=(0,))
        struck, fresh, error = apply_event(event, supply, np.random.default_rng(0))
        assert struck is supply
        assert fresh == []
        assert error
