"""Warm-start and strategy parity: acceleration never changes the optimum.

The contract of the exact-solve acceleration layer (docs/solver.md) is
that incumbent seeding and the decomposition strategies only change *how
fast* the MinR optimum is found and proven — never which optimum comes
back.  This suite pins that contract on small instances across every
available LP backend and every strategy, plus the strategy knob's
resolution order.
"""

import numpy as np
import pytest

from repro.api.requests import (
    DemandSpec,
    DisruptionSpec,
    TopologySpec,
    materialise_instance,
)
from repro.flows.milp import (
    OPT_STRATEGIES,
    OPT_STRATEGY_ENV_VAR,
    default_opt_strategy,
    resolve_opt_strategy,
    set_default_opt_strategy,
    solve_minimum_recovery,
)
from repro.flows.solver.backends import available_backends
from repro.flows.solver.stats import collect_solver_stats
from repro.heuristics.registry import get_algorithm


def small_instance(seed: int = 3):
    supply, demand, _ = materialise_instance(
        TopologySpec("grid", kwargs={"rows": 3, "cols": 3, "capacity": 20.0}),
        DisruptionSpec("complete"),
        DemandSpec("routable-far-apart", num_pairs=2, flow_per_pair=4.0),
        np.random.default_rng(seed),
    )
    return supply, demand


def heuristic_seeds(supply, demand):
    return [
        get_algorithm(name).solve(supply.copy(), demand) for name in ("ISP", "SRT")
    ]


@pytest.fixture()
def clean_strategy_state(monkeypatch):
    """Keep the process-wide strategy knob untouched by each test."""
    monkeypatch.delenv(OPT_STRATEGY_ENV_VAR, raising=False)
    yield
    set_default_opt_strategy(None)


class TestWarmStartParity:
    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("strategy", OPT_STRATEGIES)
    def test_seeding_never_changes_the_optimal_objective(self, backend, strategy):
        supply, demand = small_instance()
        seeds = heuristic_seeds(supply, demand)

        plain = solve_minimum_recovery(supply, demand, backend=backend, strategy=strategy)
        seeded = solve_minimum_recovery(
            supply, demand, backend=backend, strategy=strategy, seed_plans=seeds
        )

        assert plain.status == "optimal" and seeded.status == "optimal"
        assert seeded.objective == pytest.approx(plain.objective, abs=1e-9)
        assert seeded.seeded is True
        # a proven optimum's dual bound closes on the objective
        assert seeded.bound == pytest.approx(seeded.objective, abs=1e-6)

    @pytest.mark.parametrize("strategy", OPT_STRATEGIES)
    def test_seeded_solves_are_deterministic(self, strategy):
        supply, demand = small_instance(seed=7)
        seeds = heuristic_seeds(supply, demand)

        first = solve_minimum_recovery(supply, demand, strategy=strategy, seed_plans=seeds)
        second = solve_minimum_recovery(supply, demand, strategy=strategy, seed_plans=seeds)

        assert first.status == second.status == "optimal"
        assert first.objective == second.objective
        assert first.repaired_nodes == second.repaired_nodes
        assert first.repaired_edges == second.repaired_edges
        assert first.strategy == second.strategy

    def test_incumbent_seeding_is_counted_in_solver_stats(self):
        supply, demand = small_instance()
        seeds = heuristic_seeds(supply, demand)
        with collect_solver_stats() as stats:
            solution = solve_minimum_recovery(
                supply, demand, strategy="decomposed", seed_plans=seeds
            )
        assert solution.status == "optimal"
        assert stats.incumbent_seeds >= 1

    def test_solution_records_its_strategy(self):
        supply, demand = small_instance()
        mono = solve_minimum_recovery(supply, demand, strategy="monolithic")
        dec = solve_minimum_recovery(supply, demand, strategy="decomposed")
        assert mono.strategy == "monolithic"
        assert dec.strategy == "decomposed"
        assert mono.seeded is False


class TestStrategyKnob:
    def test_resolution_order_override_beats_env(self, clean_strategy_state, monkeypatch):
        assert default_opt_strategy() == "auto"
        monkeypatch.setenv(OPT_STRATEGY_ENV_VAR, "monolithic")
        assert default_opt_strategy() == "monolithic"
        set_default_opt_strategy("decomposed")
        assert default_opt_strategy() == "decomposed"
        assert resolve_opt_strategy() == "decomposed"
        assert resolve_opt_strategy("monolithic") == "monolithic"

    def test_unknown_strategies_are_rejected(self, clean_strategy_state, monkeypatch):
        with pytest.raises(ValueError, match="unknown OPT strategy"):
            set_default_opt_strategy("simulated-annealing")
        with pytest.raises(ValueError, match="unknown OPT strategy"):
            resolve_opt_strategy("simulated-annealing")
        monkeypatch.setenv(OPT_STRATEGY_ENV_VAR, "banana")
        with pytest.raises(ValueError, match="unknown OPT strategy"):
            resolve_opt_strategy()
