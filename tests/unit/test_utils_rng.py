"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=10)
        b = ensure_rng(42).integers(0, 1_000_000, size=10)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=10)
        b = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert list(a) != list(b)

    def test_existing_generator_passthrough(self):
        rng = np.random.default_rng(7)
        assert ensure_rng(rng) is rng

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(5)
        assert isinstance(ensure_rng(seed), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            ensure_rng(3.14)


class TestSpawnRng:
    def test_spawn_is_deterministic(self):
        parent = ensure_rng(99)
        child_a = spawn_rng(parent, 0)
        parent2 = ensure_rng(99)
        child_b = spawn_rng(parent2, 0)
        assert list(child_a.integers(0, 1000, 5)) == list(child_b.integers(0, 1000, 5))

    def test_different_streams_differ(self):
        parent = ensure_rng(99)
        a = spawn_rng(parent, 0).integers(0, 1_000_000, size=10)
        b = spawn_rng(parent, 1).integers(0, 1_000_000, size=10)
        assert list(a) != list(b)

    def test_negative_stream_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(1), -1)

    def test_requires_generator(self):
        with pytest.raises(TypeError):
            spawn_rng(42, 0)


class TestEnsureSeedSequence:
    def test_none_gives_fresh_entropy(self):
        from repro.utils.rng import ensure_seed_sequence

        a = ensure_seed_sequence(None)
        b = ensure_seed_sequence(None)
        assert isinstance(a, np.random.SeedSequence)
        assert a.entropy != b.entropy

    def test_int_seed_is_deterministic(self):
        from repro.utils.rng import ensure_seed_sequence

        a = ensure_seed_sequence(42).generate_state(4)
        b = ensure_seed_sequence(42).generate_state(4)
        assert list(a) == list(b)

    def test_sequence_passthrough(self):
        from repro.utils.rng import ensure_seed_sequence

        seq = np.random.SeedSequence(7)
        assert ensure_seed_sequence(seq) is seq

    def test_generator_uses_its_seed_sequence(self):
        from repro.utils.rng import ensure_seed_sequence

        rng = np.random.default_rng(11)
        seq = ensure_seed_sequence(rng)
        assert list(seq.generate_state(2)) == list(
            np.random.SeedSequence(11).generate_state(2)
        )

    def test_spawned_children_are_independent(self):
        from repro.utils.rng import ensure_seed_sequence

        children = ensure_seed_sequence(3).spawn(4)
        states = {tuple(child.generate_state(2)) for child in children}
        assert len(states) == 4

    def test_rejects_strings(self):
        from repro.utils.rng import ensure_seed_sequence

        with pytest.raises(TypeError):
            ensure_seed_sequence("nope")
