"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.topology == "bell-canada"
        assert args.disruption == "complete"
        assert args.algorithms == ["ISP", "SRT", "ALL"]

    def test_topology_args_parsed(self):
        args = build_parser().parse_args(
            ["solve", "--topology", "grid", "--topology-arg", "rows=3", "--topology-arg", "cols=4"]
        )
        assert args.topology_arg == ["rows=3", "cols=4"]

    def test_serve_observability_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.log_level == "info"
        assert args.log_format == "json"
        assert args.slow_request_threshold == 1.0

    def test_serve_observability_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--log-level", "debug",
                "--log-format", "text",
                "--slow-request-threshold", "0.25",
            ]
        )
        assert args.log_level == "debug"
        assert args.log_format == "text"
        assert args.slow_request_threshold == 0.25

    def test_serve_rejects_unknown_log_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--log-level", "loud"])

    def test_serve_rejects_nonpositive_slow_threshold(self):
        with pytest.raises(SystemExit):
            main(["serve", "--slow-request-threshold", "0"])

    def test_trace_subcommand_parses(self):
        args = build_parser().parse_args(["trace", "a" * 64, "--json"])
        assert args.digest == "a" * 64
        assert args.json is True

    def test_trace_unreachable_daemon_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["trace", "a" * 64, "--url", "http://127.0.0.1:1"])


class TestCommands:
    def test_list_topologies(self, capsys):
        assert main(["topologies"]) == 0
        output = capsys.readouterr().out
        assert "bell-canada" in output
        assert "erdos-renyi" in output

    def test_list_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        assert "ISP" in output and "OPT" in output

    def test_solve_on_small_grid(self, capsys):
        exit_code = main(
            [
                "solve",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "complete",
                "--pairs",
                "1",
                "--flow",
                "5",
                "--algorithms",
                "ISP",
                "ALL",
                "--seed",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ISP" in output and "ALL" in output
        assert "total_repairs" in output

    def test_assess_on_grid(self, capsys):
        exit_code = main(
            [
                "assess",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "gaussian",
                "--variance",
                "2.0",
                "--pairs",
                "1",
                "--flow",
                "2",
                "--seed",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Damage assessment" in output
        assert "broken_fraction" in output

    def test_no_disruption(self, capsys):
        exit_code = main(
            [
                "solve",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=2",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "none",
                "--pairs",
                "1",
                "--flow",
                "1",
                "--algorithms",
                "SRT",
            ]
        )
        assert exit_code == 0
        assert "SRT" in capsys.readouterr().out

    def test_bad_topology_arg(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve",
                    "--topology",
                    "grid",
                    "--topology-arg",
                    "rows-3",
                    "--pairs",
                    "1",
                ]
            )


GRID_SOLVE_ARGS = [
    "solve",
    "--topology",
    "grid",
    "--topology-arg",
    "rows=3",
    "--topology-arg",
    "cols=3",
    "--pairs",
    "1",
    "--flow",
    "5",
    "--algorithms",
    "ISP",
    "ALL",
    "--seed",
    "3",
]


class TestJsonOutput:
    def test_solve_json_prints_versioned_envelope(self, capsys):
        assert main(GRID_SOLVE_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "recovery-result"
        assert payload["schema_version"] == 1
        assert payload["request"]["kind"] == "recovery"
        assert payload["request"]["algorithms"] == ["ISP", "ALL"]
        algorithms = [run["algorithm"] for run in payload["results"]]
        assert algorithms == ["ISP", "ALL"]
        for run in payload["results"]:
            assert set(run["metrics"]) >= {"total_repairs", "satisfied_pct"}
            assert "repaired_nodes" in run["plan"]
            assert "lp_solves" in run["solver"]

    def test_solve_json_matches_direct_service_call(self, capsys):
        """Golden check: the CLI envelope is the service envelope."""
        from repro.api import (
            DemandSpec,
            DisruptionSpec,
            RecoveryRequest,
            RecoveryService,
            TopologySpec,
        )

        assert main(GRID_SOLVE_ARGS + ["--json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        request = RecoveryRequest(
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
            disruption=DisruptionSpec("complete"),
            demand=DemandSpec("routable-far-apart", num_pairs=1, flow_per_pair=5.0),
            algorithms=("ISP", "ALL"),
            seed=3,
            opt_time_limit=120.0,
        )
        service_payload = RecoveryService().solve(request).to_dict()
        assert cli_payload["request"] == service_payload["request"]
        for cli_run, service_run in zip(cli_payload["results"], service_payload["results"]):
            assert cli_run["plan"] == service_run["plan"]
            for key, value in service_run["metrics"].items():
                if key != "elapsed_seconds":
                    assert cli_run["metrics"][key] == value

    def test_solve_json_round_trips_into_result(self, capsys):
        from repro.api import RecoveryResult

        assert main(GRID_SOLVE_ARGS + ["--json"]) == 0
        result = RecoveryResult.from_dict(json.loads(capsys.readouterr().out))
        assert result.run("ISP").metrics["total_repairs"] > 0

    def test_assess_json_envelope(self, capsys):
        assert (
            main(
                [
                    "assess",
                    "--topology",
                    "grid",
                    "--topology-arg",
                    "rows=3",
                    "--topology-arg",
                    "cols=3",
                    "--disruption",
                    "gaussian",
                    "--variance",
                    "2.0",
                    "--pairs",
                    "1",
                    "--flow",
                    "2",
                    "--seed",
                    "5",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "assessment-result"
        assert payload["schema_version"] == 1
        assert "pre_recovery_satisfied_pct" in payload["summary"]


class TestSweepCommands:
    def test_list_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "bellcanada-demand-pairs" in output
        assert "Figure 4" in output
        assert "num_pairs" in output

    def test_sweep_by_alias(self, capsys):
        exit_code = main(
            [
                "sweep",
                "figure4",
                "--values",
                "1",
                "2",
                "--runs",
                "1",
                "--seed",
                "2",
                "--algorithms",
                "SRT",
                "ALL",
                "--quiet",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "bellcanada-demand-pairs" in output
        assert "SRT" in output and "ALL" in output

    def test_sweep_with_jobs_and_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "bellcanada-demand-pairs",
            "--values",
            "1",
            "--runs",
            "1",
            "--seed",
            "4",
            "--algorithms",
            "SRT",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path),
            "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.json"))) == 1
        # Re-running resumes from the cache and prints the same table.
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_sweep_progress_on_stderr(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "figure4",
                    "--values",
                    "1",
                    "--runs",
                    "1",
                    "--seed",
                    "2",
                    "--algorithms",
                    "SRT",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "[1/1]" in captured.err

    def test_sweep_unknown_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "no-such-spec", "--quiet"])


ZOO_SOLVE_ARGS = [
    "solve",
    "--topology",
    "barabasi-albert",
    "--topology-arg",
    "num_nodes=14",
    "--topology-arg",
    "attachment=2",
    "--disruption",
    "cascading",
    "--disruption-arg",
    "num_triggers=2",
    "--disruption-arg",
    "propagation_factor=1.5",
    "--pairs",
    "1",
    "--flow",
    "3",
    "--algorithms",
    "ISP",
    "ALL",
    "--seed",
    "5",
]


class TestZooJsonGolden:
    """Golden envelope regression: zoo topology x compound failure."""

    def test_solve_json_envelope_on_zoo_instance(self, capsys):
        assert main(ZOO_SOLVE_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "recovery-result"
        assert payload["schema_version"] == 1
        request = payload["request"]
        assert request["topology"]["name"] == "barabasi-albert"
        assert request["topology"]["kwargs"] == {"attachment": 2, "num_nodes": 14}
        assert request["disruption"]["kind"] == "cascading"
        assert request["disruption"]["kwargs"] == {
            "num_triggers": 2,
            "propagation_factor": 1.5,
        }
        assert [run["algorithm"] for run in payload["results"]] == ["ISP", "ALL"]
        assert payload["broken_elements"] > 2  # the cascade spread
        for run in payload["results"]:
            assert run["metrics"]["satisfied_pct"] == 100.0
            assert run["plan"]["repaired_nodes"] or run["plan"]["repaired_edges"]

    def test_zoo_envelope_matches_direct_service_call(self, capsys):
        from repro.api import (
            DemandSpec,
            DisruptionSpec,
            RecoveryRequest,
            RecoveryService,
            TopologySpec,
        )

        assert main(ZOO_SOLVE_ARGS + ["--json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        request = RecoveryRequest(
            topology=TopologySpec("barabasi-albert", kwargs={"num_nodes": 14, "attachment": 2}),
            disruption=DisruptionSpec(
                "cascading", kwargs={"num_triggers": 2, "propagation_factor": 1.5}
            ),
            demand=DemandSpec("routable-far-apart", num_pairs=1, flow_per_pair=3.0),
            algorithms=("ISP", "ALL"),
            seed=5,
            opt_time_limit=120.0,
        )
        service_payload = RecoveryService().solve(request).to_dict()
        assert cli_payload["request"] == service_payload["request"]
        for cli_run, service_run in zip(cli_payload["results"], service_payload["results"]):
            assert cli_run["plan"] == service_run["plan"]

    def test_targeted_assess_json(self, capsys):
        assert (
            main(
                [
                    "assess",
                    "--topology",
                    "fat-tree",
                    "--topology-arg",
                    "pods=4",
                    "--disruption",
                    "targeted",
                    "--disruption-arg",
                    "node_budget=2",
                    "--pairs",
                    "1",
                    "--flow",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "assessment-result"
        assert payload["request"]["disruption"]["kind"] == "targeted"

    def test_bad_disruption_arg(self):
        with pytest.raises(SystemExit):
            main(["solve", "--disruption", "targeted", "--disruption-arg", "node_budget:2"])


class TestFuzzCommand:
    def test_fuzz_budget_5_smoke(self, capsys):
        exit_code = main(
            [
                "fuzz",
                "--budget",
                "5",
                "--seed",
                "7",
                "--verify",
                "--algorithms",
                "ISP",
                "SRT",
                "ALL",
                "--quiet",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Fuzz campaign" in captured.out
        assert "0 invariant violation(s)" in captured.err

    def test_fuzz_json_envelope(self, capsys):
        exit_code = main(
            [
                "fuzz",
                "--budget",
                "2",
                "--seed",
                "3",
                "--verify",
                "--algorithms",
                "SRT",
                "--quiet",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "fuzz-report"
        assert payload["ok"] is True
        assert payload["plans_checked"] == 2
        assert len(payload["requests"]) == 2

    def test_fuzz_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--budget", "1", "--jobs", "-2"])


class TestArgumentParsingFixes:
    def test_boolean_disruption_args_parse(self):
        from repro.cli import _parse_value

        assert _parse_value("false") is False
        assert _parse_value("True") is True
        assert _parse_value("3") == 3
        assert _parse_value("1.5") == 1.5
        assert _parse_value("degree") == "degree"

    def test_adaptive_false_stays_false(self, capsys):
        exit_code = main(
            [
                "solve",
                "--topology",
                "ring",
                "--topology-arg",
                "num_nodes=8",
                "--disruption",
                "targeted",
                "--disruption-arg",
                "node_budget=2",
                "--disruption-arg",
                "adaptive=false",
                "--pairs",
                "1",
                "--algorithms",
                "ALL",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["request"]["disruption"]["kwargs"]["adaptive"] is False

    def test_variance_flag_covers_multi_gaussian(self, capsys):
        exit_code = main(
            [
                "assess",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "multi-gaussian",
                "--variance",
                "2.0",
                "--pairs",
                "1",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["request"]["disruption"]["kwargs"]["variance"] == 2.0

    def test_missing_required_disruption_parameter_exits_cleanly(self):
        with pytest.raises(SystemExit, match="budget"):
            main(
                [
                    "solve",
                    "--topology",
                    "ring",
                    "--topology-arg",
                    "num_nodes=6",
                    "--disruption",
                    "targeted",  # requires a budget
                    "--pairs",
                    "1",
                ]
            )


ONLINE_BASE = [
    "online",
    "--topology",
    "grid",
    "--topology-arg",
    "rows=3",
    "--topology-arg",
    "cols=3",
    "--disruption",
    "gaussian",
    "--variance",
    "2",
    "--pairs",
    "2",
    "--flow",
    "2",
    "--seed",
    "7",
    "--epochs",
    "2",
    "--opt-time-limit",
    "15",
    "--quiet",
]


class TestOnlineCommand:
    def test_online_campaign_table(self, capsys):
        exit_code = main(ONLINE_BASE + ["--episodes", "2", "--verify"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Online campaign" in captured.out
        assert "0 violation(s)" in captured.err

    def test_online_json_envelope(self, capsys):
        exit_code = main(
            ONLINE_BASE
            + [
                "--verify",
                "--fog",
                "0.3",
                "--event",
                "aftershock,variance=2,at=1",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "online-campaign"
        assert payload["ok"] is True
        assert payload["summary"]["violations"] == 0
        assert len(payload["episodes"]) == 1
        assert len(payload["episodes"][0]["epochs"]) == 2
        assert payload["spec"]["events"][0]["kind"] == "aftershock"

    def test_online_out_writes_atomic_artifact(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        exit_code = main(ONLINE_BASE + ["--verify", "--out", str(out)])
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "online-campaign"

    def test_online_rejects_bad_event(self):
        with pytest.raises(SystemExit, match="unknown event kind"):
            main(ONLINE_BASE + ["--event", "meteor,p=0.5"])
        with pytest.raises(SystemExit, match="key=value"):
            main(ONLINE_BASE + ["--event", "cascade,oops"])

    def test_online_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            main(ONLINE_BASE + ["--jobs", "-2"])

    def test_online_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(ONLINE_BASE + ["--algorithm", "NOPE"])
