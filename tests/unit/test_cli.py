"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.topology == "bell-canada"
        assert args.disruption == "complete"
        assert args.algorithms == ["ISP", "SRT", "ALL"]

    def test_topology_args_parsed(self):
        args = build_parser().parse_args(
            ["solve", "--topology", "grid", "--topology-arg", "rows=3", "--topology-arg", "cols=4"]
        )
        assert args.topology_arg == ["rows=3", "cols=4"]


class TestCommands:
    def test_list_topologies(self, capsys):
        assert main(["topologies"]) == 0
        output = capsys.readouterr().out
        assert "bell-canada" in output
        assert "erdos-renyi" in output

    def test_list_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        assert "ISP" in output and "OPT" in output

    def test_solve_on_small_grid(self, capsys):
        exit_code = main(
            [
                "solve",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "complete",
                "--pairs",
                "1",
                "--flow",
                "5",
                "--algorithms",
                "ISP",
                "ALL",
                "--seed",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ISP" in output and "ALL" in output
        assert "total_repairs" in output

    def test_assess_on_grid(self, capsys):
        exit_code = main(
            [
                "assess",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "gaussian",
                "--variance",
                "2.0",
                "--pairs",
                "1",
                "--flow",
                "2",
                "--seed",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Damage assessment" in output
        assert "broken_fraction" in output

    def test_no_disruption(self, capsys):
        exit_code = main(
            [
                "solve",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=2",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "none",
                "--pairs",
                "1",
                "--flow",
                "1",
                "--algorithms",
                "SRT",
            ]
        )
        assert exit_code == 0
        assert "SRT" in capsys.readouterr().out

    def test_bad_topology_arg(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve",
                    "--topology",
                    "grid",
                    "--topology-arg",
                    "rows-3",
                    "--pairs",
                    "1",
                ]
            )
