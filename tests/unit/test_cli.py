"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.topology == "bell-canada"
        assert args.disruption == "complete"
        assert args.algorithms == ["ISP", "SRT", "ALL"]

    def test_topology_args_parsed(self):
        args = build_parser().parse_args(
            ["solve", "--topology", "grid", "--topology-arg", "rows=3", "--topology-arg", "cols=4"]
        )
        assert args.topology_arg == ["rows=3", "cols=4"]


class TestCommands:
    def test_list_topologies(self, capsys):
        assert main(["topologies"]) == 0
        output = capsys.readouterr().out
        assert "bell-canada" in output
        assert "erdos-renyi" in output

    def test_list_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        assert "ISP" in output and "OPT" in output

    def test_solve_on_small_grid(self, capsys):
        exit_code = main(
            [
                "solve",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "complete",
                "--pairs",
                "1",
                "--flow",
                "5",
                "--algorithms",
                "ISP",
                "ALL",
                "--seed",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ISP" in output and "ALL" in output
        assert "total_repairs" in output

    def test_assess_on_grid(self, capsys):
        exit_code = main(
            [
                "assess",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "gaussian",
                "--variance",
                "2.0",
                "--pairs",
                "1",
                "--flow",
                "2",
                "--seed",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Damage assessment" in output
        assert "broken_fraction" in output

    def test_no_disruption(self, capsys):
        exit_code = main(
            [
                "solve",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=2",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "none",
                "--pairs",
                "1",
                "--flow",
                "1",
                "--algorithms",
                "SRT",
            ]
        )
        assert exit_code == 0
        assert "SRT" in capsys.readouterr().out

    def test_bad_topology_arg(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve",
                    "--topology",
                    "grid",
                    "--topology-arg",
                    "rows-3",
                    "--pairs",
                    "1",
                ]
            )


class TestSweepCommands:
    def test_list_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "bellcanada-demand-pairs" in output
        assert "Figure 4" in output
        assert "num_pairs" in output

    def test_sweep_by_alias(self, capsys):
        exit_code = main(
            [
                "sweep",
                "figure4",
                "--values",
                "1",
                "2",
                "--runs",
                "1",
                "--seed",
                "2",
                "--algorithms",
                "SRT",
                "ALL",
                "--quiet",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "bellcanada-demand-pairs" in output
        assert "SRT" in output and "ALL" in output

    def test_sweep_with_jobs_and_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "bellcanada-demand-pairs",
            "--values",
            "1",
            "--runs",
            "1",
            "--seed",
            "4",
            "--algorithms",
            "SRT",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path),
            "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.json"))) == 1
        # Re-running resumes from the cache and prints the same table.
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_sweep_progress_on_stderr(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "figure4",
                    "--values",
                    "1",
                    "--runs",
                    "1",
                    "--seed",
                    "2",
                    "--algorithms",
                    "SRT",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "[1/1]" in captured.err

    def test_sweep_unknown_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "no-such-spec", "--quiet"])
