"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.topology == "bell-canada"
        assert args.disruption == "complete"
        assert args.algorithms == ["ISP", "SRT", "ALL"]

    def test_topology_args_parsed(self):
        args = build_parser().parse_args(
            ["solve", "--topology", "grid", "--topology-arg", "rows=3", "--topology-arg", "cols=4"]
        )
        assert args.topology_arg == ["rows=3", "cols=4"]


class TestCommands:
    def test_list_topologies(self, capsys):
        assert main(["topologies"]) == 0
        output = capsys.readouterr().out
        assert "bell-canada" in output
        assert "erdos-renyi" in output

    def test_list_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        assert "ISP" in output and "OPT" in output

    def test_solve_on_small_grid(self, capsys):
        exit_code = main(
            [
                "solve",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "complete",
                "--pairs",
                "1",
                "--flow",
                "5",
                "--algorithms",
                "ISP",
                "ALL",
                "--seed",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ISP" in output and "ALL" in output
        assert "total_repairs" in output

    def test_assess_on_grid(self, capsys):
        exit_code = main(
            [
                "assess",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "gaussian",
                "--variance",
                "2.0",
                "--pairs",
                "1",
                "--flow",
                "2",
                "--seed",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Damage assessment" in output
        assert "broken_fraction" in output

    def test_no_disruption(self, capsys):
        exit_code = main(
            [
                "solve",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=2",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "none",
                "--pairs",
                "1",
                "--flow",
                "1",
                "--algorithms",
                "SRT",
            ]
        )
        assert exit_code == 0
        assert "SRT" in capsys.readouterr().out

    def test_bad_topology_arg(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve",
                    "--topology",
                    "grid",
                    "--topology-arg",
                    "rows-3",
                    "--pairs",
                    "1",
                ]
            )


GRID_SOLVE_ARGS = [
    "solve",
    "--topology",
    "grid",
    "--topology-arg",
    "rows=3",
    "--topology-arg",
    "cols=3",
    "--pairs",
    "1",
    "--flow",
    "5",
    "--algorithms",
    "ISP",
    "ALL",
    "--seed",
    "3",
]


class TestJsonOutput:
    def test_solve_json_prints_versioned_envelope(self, capsys):
        assert main(GRID_SOLVE_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "recovery-result"
        assert payload["schema_version"] == 1
        assert payload["request"]["kind"] == "recovery"
        assert payload["request"]["algorithms"] == ["ISP", "ALL"]
        algorithms = [run["algorithm"] for run in payload["results"]]
        assert algorithms == ["ISP", "ALL"]
        for run in payload["results"]:
            assert set(run["metrics"]) >= {"total_repairs", "satisfied_pct"}
            assert "repaired_nodes" in run["plan"]
            assert "lp_solves" in run["solver"]

    def test_solve_json_matches_direct_service_call(self, capsys):
        """Golden check: the CLI envelope is the service envelope."""
        from repro.api import (
            DemandSpec,
            DisruptionSpec,
            RecoveryRequest,
            RecoveryService,
            TopologySpec,
        )

        assert main(GRID_SOLVE_ARGS + ["--json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        request = RecoveryRequest(
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
            disruption=DisruptionSpec("complete"),
            demand=DemandSpec("routable-far-apart", num_pairs=1, flow_per_pair=5.0),
            algorithms=("ISP", "ALL"),
            seed=3,
            opt_time_limit=120.0,
        )
        service_payload = RecoveryService().solve(request).to_dict()
        assert cli_payload["request"] == service_payload["request"]
        for cli_run, service_run in zip(cli_payload["results"], service_payload["results"]):
            assert cli_run["plan"] == service_run["plan"]
            for key, value in service_run["metrics"].items():
                if key != "elapsed_seconds":
                    assert cli_run["metrics"][key] == value

    def test_solve_json_round_trips_into_result(self, capsys):
        from repro.api import RecoveryResult

        assert main(GRID_SOLVE_ARGS + ["--json"]) == 0
        result = RecoveryResult.from_dict(json.loads(capsys.readouterr().out))
        assert result.run("ISP").metrics["total_repairs"] > 0

    def test_assess_json_envelope(self, capsys):
        assert (
            main(
                [
                    "assess",
                    "--topology",
                    "grid",
                    "--topology-arg",
                    "rows=3",
                    "--topology-arg",
                    "cols=3",
                    "--disruption",
                    "gaussian",
                    "--variance",
                    "2.0",
                    "--pairs",
                    "1",
                    "--flow",
                    "2",
                    "--seed",
                    "5",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "assessment-result"
        assert payload["schema_version"] == 1
        assert "pre_recovery_satisfied_pct" in payload["summary"]


class TestSweepCommands:
    def test_list_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "bellcanada-demand-pairs" in output
        assert "Figure 4" in output
        assert "num_pairs" in output

    def test_sweep_by_alias(self, capsys):
        exit_code = main(
            [
                "sweep",
                "figure4",
                "--values",
                "1",
                "2",
                "--runs",
                "1",
                "--seed",
                "2",
                "--algorithms",
                "SRT",
                "ALL",
                "--quiet",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "bellcanada-demand-pairs" in output
        assert "SRT" in output and "ALL" in output

    def test_sweep_with_jobs_and_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "bellcanada-demand-pairs",
            "--values",
            "1",
            "--runs",
            "1",
            "--seed",
            "4",
            "--algorithms",
            "SRT",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path),
            "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.json"))) == 1
        # Re-running resumes from the cache and prints the same table.
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_sweep_progress_on_stderr(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "figure4",
                    "--values",
                    "1",
                    "--runs",
                    "1",
                    "--seed",
                    "2",
                    "--algorithms",
                    "SRT",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "[1/1]" in captured.err

    def test_sweep_unknown_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "no-such-spec", "--quiet"])
