"""Tests of the shared atomic JSON artefact writer and the CLI --out flag."""

import json

import pytest

from repro.cli import main
from repro.utils.jsonio import emit_json, write_json


class TestWriteJson:
    def test_writes_parseable_json_with_trailing_newline(self, tmp_path):
        target = tmp_path / "artefact.json"
        write_json({"alpha": 1, "beta": [1, 2]}, target)
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"alpha": 1, "beta": [1, 2]}

    def test_creates_missing_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "artefact.json"
        write_json([1, 2, 3], target)
        assert json.loads(target.read_text()) == [1, 2, 3]

    def test_overwrite_is_atomic_no_temp_residue(self, tmp_path):
        target = tmp_path / "artefact.json"
        write_json({"version": 1}, target)
        write_json({"version": 2}, target)
        assert json.loads(target.read_text()) == {"version": 2}
        assert [path.name for path in tmp_path.iterdir()] == ["artefact.json"]

    def test_unserialisable_payload_raises_and_leaves_no_partial_file(self, tmp_path):
        """No default= fallback: a type bug in the producer fails loudly."""
        target = tmp_path / "artefact.json"
        with pytest.raises(TypeError, match="not JSON serializable"):
            write_json({"bad": object()}, target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []


class TestEmitJson:
    def test_none_out_prints_to_stdout(self, capsys):
        emit_json({"x": 1})
        assert json.loads(capsys.readouterr().out) == {"x": 1}

    def test_out_writes_the_file_and_prints_nothing(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        emit_json({"x": 1}, out=target)
        assert capsys.readouterr().out == ""
        assert json.loads(target.read_text()) == {"x": 1}


class TestCliOut:
    SOLVE_ARGS = [
        "solve",
        "--topology",
        "grid",
        "--topology-arg",
        "rows=3",
        "--topology-arg",
        "cols=3",
        "--pairs",
        "1",
        "--flow",
        "5",
        "--algorithms",
        "ISP",
        "--seed",
        "3",
    ]

    def test_solve_out_writes_the_envelope_file(self, tmp_path, capsys):
        target = tmp_path / "solve.json"
        assert main(self.SOLVE_ARGS + ["--out", str(target)]) == 0
        assert capsys.readouterr().out == ""
        envelope = json.loads(target.read_text())
        assert envelope["kind"] == "recovery-result"
        assert envelope["results"][0]["algorithm"] == "ISP"

    def test_solve_out_matches_stdout_json(self, tmp_path, capsys):
        assert main(self.SOLVE_ARGS + ["--json"]) == 0
        printed = json.loads(capsys.readouterr().out)
        target = tmp_path / "solve.json"
        assert main(self.SOLVE_ARGS + ["--out", str(target)]) == 0
        written = json.loads(target.read_text())
        # identical instances modulo wall-clock fields
        for envelope in (printed, written):
            envelope.pop("wall_seconds")
            for run in envelope["results"]:
                run["metrics"].pop("elapsed_seconds")
                run.pop("solver")
        assert written == printed

    def test_assess_out_writes_the_envelope_file(self, tmp_path, capsys):
        target = tmp_path / "assess.json"
        code = main(
            [
                "assess",
                "--topology",
                "grid",
                "--topology-arg",
                "rows=3",
                "--topology-arg",
                "cols=3",
                "--disruption",
                "gaussian",
                "--variance",
                "2",
                "--pairs",
                "1",
                "--flow",
                "2",
                "--out",
                str(target),
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""
        assert json.loads(target.read_text())["kind"] == "assessment-result"

    def test_fuzz_out_writes_the_report_file(self, tmp_path, capsys):
        target = tmp_path / "fuzz.json"
        code = main(
            [
                "fuzz",
                "--budget",
                "2",
                "--seed",
                "3",
                "--algorithms",
                "ISP",
                "--quiet",
                "--out",
                str(target),
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""
        report = json.loads(target.read_text())
        assert report["kind"] == "fuzz-report"
        assert report["budget"] == 2
