"""Tests for the topology builders."""

import networkx as nx
import pytest

from repro.topologies.bellcanada import (
    ACCESS_CAPACITY,
    EXPECTED_EDGES,
    EXPECTED_NODES,
    PRIMARY_BACKBONE,
    PRIMARY_BACKBONE_CAPACITY,
    SECONDARY_BACKBONE_CAPACITY,
    bell_canada,
)
from repro.topologies.caida_like import caida_like
from repro.topologies.grids import grid_topology, ring_topology, star_topology
from repro.topologies.random_graphs import erdos_renyi, geometric_graph
from repro.topologies.registry import (
    available_topologies,
    build_topology,
    register_topology,
)


class TestBellCanada:
    def test_size_matches_topology_zoo(self):
        supply = bell_canada()
        assert supply.number_of_nodes == EXPECTED_NODES == 48
        assert supply.number_of_edges == EXPECTED_EDGES == 64

    def test_connected(self):
        assert bell_canada().stats()["connected"]

    def test_deterministic(self):
        a, b = bell_canada(), bell_canada()
        assert set(a.edges) == set(b.edges)

    def test_every_node_has_position(self):
        supply = bell_canada()
        assert all(supply.position(node) is not None for node in supply.nodes)

    def test_capacity_tiers(self):
        supply = bell_canada()
        capacities = {supply.capacity(u, v) for u, v in supply.edges}
        assert capacities == {
            ACCESS_CAPACITY,
            SECONDARY_BACKBONE_CAPACITY,
            PRIMARY_BACKBONE_CAPACITY,
        }

    def test_primary_backbone_capacity(self):
        supply = bell_canada()
        for u, v in zip(PRIMARY_BACKBONE, PRIMARY_BACKBONE[1:]):
            assert supply.capacity(u, v) == PRIMARY_BACKBONE_CAPACITY

    def test_unit_repair_costs_by_default(self):
        supply = bell_canada()
        assert all(supply.node_repair_cost(n) == 1.0 for n in supply.nodes)
        assert all(supply.edge_repair_cost(u, v) == 1.0 for u, v in supply.edges)

    def test_custom_capacities(self):
        supply = bell_canada(primary_capacity=99.0, secondary_capacity=55.0, access_capacity=11.0)
        capacities = {supply.capacity(u, v) for u, v in supply.edges}
        assert capacities == {99.0, 55.0, 11.0}


class TestCaidaLike:
    def test_default_size(self):
        supply = caida_like(seed=0)
        assert supply.number_of_nodes == 825
        assert supply.number_of_edges == 1018

    def test_connected(self):
        assert caida_like(num_nodes=120, num_edges=150, seed=1).stats()["connected"]

    def test_deterministic_with_seed(self):
        a = caida_like(num_nodes=100, num_edges=130, seed=5)
        b = caida_like(num_nodes=100, num_edges=130, seed=5)
        assert set(a.edges) == set(b.edges)

    def test_heavy_tailed_degrees(self):
        supply = caida_like(num_nodes=300, num_edges=380, seed=2)
        degrees = sorted((supply.degree(n) for n in supply.nodes), reverse=True)
        assert degrees[0] >= 10  # a few hubs
        assert sum(1 for d in degrees if d <= 2) > len(degrees) / 2  # many leaves

    def test_two_capacity_tiers(self):
        supply = caida_like(num_nodes=200, num_edges=260, seed=3)
        capacities = {supply.capacity(u, v) for u, v in supply.edges}
        assert capacities <= {25.0, 100.0}

    def test_rejects_too_few_edges(self):
        with pytest.raises(ValueError):
            caida_like(num_nodes=10, num_edges=5)

    def test_positions_present(self):
        supply = caida_like(num_nodes=50, num_edges=60, seed=4)
        assert all(supply.position(n) is not None for n in supply.nodes)


class TestErdosRenyi:
    def test_node_count(self):
        supply = erdos_renyi(num_nodes=40, edge_probability=0.2, seed=1)
        assert supply.number_of_nodes == 40

    def test_connected_by_default(self):
        supply = erdos_renyi(num_nodes=40, edge_probability=0.15, seed=2)
        assert supply.stats()["connected"]

    def test_uniform_capacity(self):
        supply = erdos_renyi(num_nodes=20, edge_probability=0.3, capacity=123.0, seed=3)
        assert all(supply.capacity(u, v) == 123.0 for u, v in supply.edges)

    def test_deterministic_with_seed(self):
        a = erdos_renyi(num_nodes=25, edge_probability=0.3, seed=9)
        b = erdos_renyi(num_nodes=25, edge_probability=0.3, seed=9)
        assert set(a.edges) == set(b.edges)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi(num_nodes=10, edge_probability=1.5)

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            erdos_renyi(num_nodes=1)

    def test_low_probability_falls_back_to_giant_component(self):
        supply = erdos_renyi(num_nodes=30, edge_probability=0.02, seed=4, max_attempts=3)
        assert supply.stats()["connected"] or supply.number_of_nodes <= 30


class TestGeometric:
    def test_connected(self):
        supply = geometric_graph(num_nodes=40, radius=0.3, seed=1)
        assert supply.stats()["connected"]

    def test_positions_scaled(self):
        supply = geometric_graph(num_nodes=20, radius=0.4, seed=2)
        xs = [supply.position(n)[0] for n in supply.nodes]
        assert max(xs) <= 100.0 and min(xs) >= 0.0


class TestRegularTopologies:
    def test_grid_size(self):
        supply = grid_topology(3, 4)
        assert supply.number_of_nodes == 12
        assert supply.number_of_edges == 3 * 3 + 4 * 2  # rows*(cols-1) + cols*(rows-1)

    def test_grid_positions(self):
        supply = grid_topology(2, 2)
        assert supply.position((1, 1)) == (1.0, 1.0)

    def test_grid_rejects_zero(self):
        with pytest.raises(ValueError):
            grid_topology(0, 3)

    def test_ring_size(self):
        supply = ring_topology(6)
        assert supply.number_of_nodes == 6
        assert supply.number_of_edges == 6

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_star_size(self):
        supply = star_topology(5)
        assert supply.number_of_nodes == 6
        assert supply.number_of_edges == 5
        assert supply.degree(0) == 5

    def test_star_minimum(self):
        with pytest.raises(ValueError):
            star_topology(0)


class TestRegistry:
    def test_available_contains_paper_topologies(self):
        names = available_topologies()
        assert "bell-canada" in names
        assert "erdos-renyi" in names
        assert "caida-like" in names

    def test_build_by_name(self):
        supply = build_topology("grid", rows=2, cols=2)
        assert supply.number_of_nodes == 4

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown topology"):
            build_topology("does-not-exist")

    def test_register_custom(self):
        def tiny(**kwargs):
            return grid_topology(1, 2)

        register_topology("tiny-test-topology", tiny, overwrite=True)
        assert build_topology("tiny-test-topology").number_of_nodes == 2

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_topology("grid", grid_topology)


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        from repro.topologies.zoo import barabasi_albert

        supply = barabasi_albert(num_nodes=30, attachment=2, seed=3)
        assert supply.number_of_nodes == 30
        # BA adds `attachment` edges per new node after the seed clique.
        assert supply.number_of_edges == (30 - 2) * 2
        assert supply.stats()["connected"]

    def test_deterministic_for_seed(self):
        from repro.topologies.zoo import barabasi_albert

        a = barabasi_albert(num_nodes=25, seed=11)
        b = barabasi_albert(num_nodes=25, seed=11)
        assert set(a.edges) == set(b.edges)
        assert all(a.position(n) == b.position(n) for n in a.nodes)

    def test_positions_assigned(self):
        from repro.topologies.zoo import barabasi_albert

        supply = barabasi_albert(num_nodes=20, seed=1)
        assert all(supply.position(n) is not None for n in supply.nodes)

    def test_heavy_tail(self):
        from repro.topologies.zoo import barabasi_albert

        supply = barabasi_albert(num_nodes=80, attachment=2, seed=5)
        stats = supply.stats()
        assert stats["max_degree"] > 3 * stats["mean_degree"]

    def test_invalid_parameters(self):
        from repro.topologies.zoo import barabasi_albert

        with pytest.raises(ValueError):
            barabasi_albert(num_nodes=2, attachment=2)
        with pytest.raises(ValueError):
            barabasi_albert(attachment=0)


class TestWattsStrogatz:
    def test_size_and_connectivity(self):
        from repro.topologies.zoo import watts_strogatz

        supply = watts_strogatz(num_nodes=24, nearest_neighbors=4, seed=3)
        assert supply.number_of_nodes == 24
        # Rewiring preserves the edge count of the ring lattice.
        assert supply.number_of_edges == 24 * 4 // 2
        assert supply.stats()["connected"]

    def test_deterministic_for_seed(self):
        from repro.topologies.zoo import watts_strogatz

        a = watts_strogatz(num_nodes=20, seed=7)
        b = watts_strogatz(num_nodes=20, seed=7)
        assert set(a.edges) == set(b.edges)

    def test_positions_on_circle(self):
        from repro.topologies.zoo import watts_strogatz

        supply = watts_strogatz(num_nodes=12, seed=1)
        for node in supply.nodes:
            x, y = supply.position(node)
            assert (x - 50.0) ** 2 + (y - 50.0) ** 2 == pytest.approx(50.0**2)

    def test_invalid_parameters(self):
        from repro.topologies.zoo import watts_strogatz

        with pytest.raises(ValueError):
            watts_strogatz(num_nodes=2)
        with pytest.raises(ValueError):
            watts_strogatz(rewire_probability=1.5)


class TestFatTree:
    def test_four_pod_fabric(self):
        from repro.topologies.zoo import fat_tree

        supply = fat_tree(pods=4)
        # (k/2)^2 core + k * (k/2 agg + k/2 edge) switches.
        assert supply.number_of_nodes == 4 + 4 * (2 + 2)
        # Per pod: (k/2)^2 edge-agg + (k/2)^2 agg-core links.
        assert supply.number_of_edges == 4 * (4 + 4)
        assert supply.stats()["connected"]

    def test_deterministic_without_seed(self):
        from repro.topologies.zoo import fat_tree

        assert set(fat_tree().edges) == set(fat_tree().edges)

    def test_capacity_tiers(self):
        from repro.topologies.zoo import fat_tree

        supply = fat_tree(pods=4, access_capacity=10.0, core_capacity=40.0)
        capacities = {supply.capacity(u, v) for u, v in supply.edges}
        assert capacities == {10.0, 40.0}
        assert supply.capacity("agg-0-0", "core-0") == 40.0
        assert supply.capacity("edge-0-0", "agg-0-0") == 10.0

    def test_odd_pod_count_rejected(self):
        from repro.topologies.zoo import fat_tree

        with pytest.raises(ValueError):
            fat_tree(pods=3)


class TestFromFile:
    def test_json_round_trip(self, tmp_path):
        from repro.topologies.io import save_supply_json, topology_from_file

        # JSON node ids must be scalars, so use an integer-labelled ring.
        original = ring_topology(8, capacity=7.0)
        path = tmp_path / "ring.json"
        save_supply_json(original, path)
        loaded = topology_from_file(str(path))
        assert loaded.number_of_nodes == original.number_of_nodes
        assert loaded.number_of_edges == original.number_of_edges

    def test_graphml(self, tmp_path):
        from repro.topologies.io import topology_from_file

        graph = nx.Graph()
        graph.add_node("n0", label="A", Latitude=45.0, Longitude=-73.0)
        graph.add_node("n1", label="B", Latitude=46.0, Longitude=-74.0)
        graph.add_edge("n0", "n1")
        path = tmp_path / "tiny.graphml"
        nx.write_graphml(graph, path)
        loaded = topology_from_file(str(path), default_capacity=5.0)
        assert loaded.number_of_nodes == 2
        assert loaded.capacity("A", "B") == 5.0

    def test_unknown_format_rejected(self, tmp_path):
        from repro.topologies.io import topology_from_file

        with pytest.raises(ValueError):
            topology_from_file(str(tmp_path / "net.bin"))

    def test_registered_and_reachable_via_spec(self, tmp_path):
        from repro.api.requests import TopologySpec
        from repro.topologies.io import save_supply_json

        path = tmp_path / "net.json"
        save_supply_json(ring_topology(9), path)
        spec = TopologySpec("from-file", kwargs={"path": str(path)})
        # File-backed builds are never treated as cacheable-pristine: the
        # file can change under an unchanged spec.
        assert not spec.deterministic
        import numpy as np

        supply = spec.build(np.random.default_rng(0), {})
        assert supply.number_of_nodes == 9

    def test_edited_file_is_re_read_by_a_service_session(self, tmp_path):
        from repro.api.requests import AssessmentRequest, TopologySpec
        from repro.api.service import RecoveryService
        from repro.topologies.io import save_supply_json

        path = tmp_path / "net.json"
        save_supply_json(ring_topology(6), path)
        service = RecoveryService()
        request = AssessmentRequest(
            topology=TopologySpec("from-file", kwargs={"path": str(path)})
        )
        supply, _, _ = service.build_instance(request)
        assert supply.number_of_nodes == 6
        save_supply_json(ring_topology(10), path)
        supply, _, _ = service.build_instance(request)
        assert supply.number_of_nodes == 10


class TestZooRegistry:
    def test_zoo_names_registered(self):
        names = available_topologies()
        for name in ("barabasi-albert", "watts-strogatz", "fat-tree", "from-file"):
            assert name in names

    def test_build_via_registry(self):
        supply = build_topology("barabasi-albert", num_nodes=15, seed=2)
        assert supply.number_of_nodes == 15
