"""Tests for the resumable on-disk result cache."""

import json

import pytest

from repro.api.requests import DemandSpec, DisruptionSpec, TopologySpec
from repro.engine import executor as executor_module
from repro.engine.cache import ResultCache
from repro.engine.executor import run_tasks
from repro.engine.experiment import run_experiment
from repro.engine.spec import ExperimentSpec, SweepAxis
from repro.engine.tasks import execute_task, expand_tasks


def grid_spec(**changes):
    spec = ExperimentSpec(
        name="cache-grid",
        figure="Unit",
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3, "capacity": 10.0}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec("random", num_pairs=1, flow_per_pair=5.0),
        sweep=SweepAxis(parameter="num_pairs", values=(1, 2), target="demand.num_pairs"),
        algorithms=("SRT", "ALL"),
        runs=2,
    )
    return spec.replace(**changes) if changes else spec


def strip_timing(rows):
    return [
        {key: value for key, value in row.items() if key != "elapsed_seconds"}
        for row in rows
    ]


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = expand_tasks(grid_spec(), seed=3)[0]
        assert cache.get(task) is None
        result = execute_task(task)
        cache.put(task, result)
        restored = cache.get(task)
        assert restored is not None
        assert restored.cached
        assert restored.metrics == result.metrics
        assert restored.broken_elements == result.broken_elements
        assert len(cache) == 1
        assert task in cache

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = expand_tasks(grid_spec(), seed=3)[0]
        cache.put(task, execute_task(task))
        path = next(tmp_path.glob("*.json"))
        path.write_text("{ not json")
        assert cache.get(task) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        """A file cut off mid-write (e.g. a killed run) must read as a miss."""
        cache = ResultCache(tmp_path)
        task = expand_tasks(grid_spec(), seed=3)[0]
        cache.put(task, execute_task(task))
        path = next(tmp_path.glob("*.json"))
        content = path.read_text()
        for cut in (0, len(content) // 2):
            path.write_text(content[:cut])
            assert cache.get(task) is None
        # A syntactically valid file missing the result payload is also a miss.
        path.write_text(json.dumps({"key": "x", "task": {}}))
        assert cache.get(task) is None

    def test_entries_skip_corrupt_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = expand_tasks(grid_spec(), seed=3)
        for task in tasks[:2]:
            cache.put(task, execute_task(task))
        (tmp_path / "zz-corrupt.json").write_text("{ cut off mid-wri")
        assert len(list(cache.entries())) == 2

    def test_atomic_put_leaves_no_temp_debris(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = expand_tasks(grid_spec(), seed=3)[0]
        result = execute_task(task)
        for _ in range(3):
            cache.put(task, result)
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(cache) == 1
        # Leftover temp files from a crashed writer never shadow real entries.
        (tmp_path / "orphan.tmp").write_text("partial")
        assert len(cache) == 1
        assert len(list(cache.entries())) == 1

    def test_entries_expose_task_description(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = expand_tasks(grid_spec(), seed=3)[0]
        cache.put(task, execute_task(task))
        (entry,) = cache.entries()
        assert entry["task"]["spec"] == "cache-grid"
        assert entry["task"]["cell"]["algorithm"] == "SRT"
        json.dumps(entry)  # stays JSON-serialisable end to end

    def test_different_seeds_use_different_keys(self, tmp_path):
        a = expand_tasks(grid_spec(), seed=3)[0]
        b = expand_tasks(grid_spec(), seed=4)[0]
        assert a.cache_key() != b.cache_key()


class TestResume:
    def test_second_run_never_recomputes(self, tmp_path, monkeypatch):
        spec = grid_spec()
        first = run_experiment(spec, seed=3, cache_dir=tmp_path)

        def boom(task):
            raise AssertionError("cache should have served every cell")

        monkeypatch.setattr(executor_module, "execute_task", boom)
        second = run_experiment(spec, seed=3, cache_dir=tmp_path)
        assert strip_timing(second.rows) == strip_timing(first.rows)

    def test_extended_sweep_computes_only_new_cells(self, tmp_path, monkeypatch):
        run_experiment(grid_spec(), seed=3, cache_dir=tmp_path)
        cells_before = len(list(tmp_path.glob("*.json")))

        computed = []
        real_execute = executor_module.execute_task

        def counting(task):
            computed.append(task)
            return real_execute(task)

        monkeypatch.setattr(executor_module, "execute_task", counting)
        extended = grid_spec(sweep_values=(1, 2, 3))
        tasks = expand_tasks(extended, seed=3)
        run_tasks(tasks, jobs=1, cache=ResultCache(tmp_path))
        # Only the cells of the new sweep value ran; the rest came from disk.
        assert all(task.sweep_value == 3 for task in computed)
        assert len(computed) == len(extended.algorithms) * extended.runs
        assert len(list(tmp_path.glob("*.json"))) == cells_before + len(computed)

    def test_interrupted_run_resumes(self, tmp_path):
        spec = grid_spec()
        tasks = expand_tasks(spec, seed=3)
        cache = ResultCache(tmp_path)
        # Simulate an interrupted sweep: only half the cells completed.
        for task in tasks[: len(tasks) // 2]:
            cache.put(task, execute_task(task))
        result = run_experiment(spec, seed=3, cache_dir=tmp_path)
        assert len(result.rows) == 2 * 2  # every (value, algorithm) cell present
        assert len(list(tmp_path.glob("*.json"))) == len(tasks)

    def test_cache_ignores_opt_time_limit_for_heuristics(self, tmp_path, monkeypatch):
        run_experiment(grid_spec(opt_time_limit=30.0), seed=3, cache_dir=tmp_path)

        def boom(task):
            raise AssertionError("heuristic cells must not depend on the MILP limit")

        monkeypatch.setattr(executor_module, "execute_task", boom)
        run_experiment(grid_spec(opt_time_limit=99.0), seed=3, cache_dir=tmp_path)
