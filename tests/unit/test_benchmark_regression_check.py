"""Unit tests of the served-throughput regression gate (scripts/)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "benchmark_regression_check.py"
_spec = importlib.util.spec_from_file_location("benchmark_regression_check", _SCRIPT)
check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check)


def _artefact(tmp_path, name: str, payload: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def _baseline(**overrides) -> dict:
    payload = {
        "completed_rps": 1.0,
        "served_solves_per_sec": 2.0,
        "overhead_benchmark": {"served_solves_per_sec": 25.0},
    }
    payload.update(overrides)
    return payload


class TestLookup:
    def test_dotted_paths_resolve_nested_metrics(self):
        assert check.lookup(_baseline(), "overhead_benchmark.served_solves_per_sec") == 25.0
        assert check.lookup(_baseline(), "completed_rps") == 1.0

    def test_missing_and_non_numeric_values_are_none(self):
        assert check.lookup({}, "completed_rps") is None
        assert check.lookup({"completed_rps": "fast"}, "completed_rps") is None
        assert check.lookup({"completed_rps": True}, "completed_rps") is None


class TestVerdicts:
    def test_equal_throughput_passes(self, tmp_path, capsys):
        baseline = _artefact(tmp_path, "base.json", _baseline())
        current = _artefact(tmp_path, "curr.json", _baseline())
        assert check.main(["--baseline", baseline, "--current", current]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path):
        baseline = _artefact(tmp_path, "base.json", _baseline())
        current = _artefact(tmp_path, "curr.json", _baseline(completed_rps=5.0))
        assert check.main(["--baseline", baseline, "--current", current]) == 0

    def test_drop_within_tolerance_passes(self, tmp_path):
        baseline = _artefact(tmp_path, "base.json", _baseline(completed_rps=10.0))
        current = _artefact(tmp_path, "curr.json", _baseline(completed_rps=8.5))
        assert check.main(["--baseline", baseline, "--current", current]) == 0

    def test_regression_beyond_tolerance_fails(self, tmp_path, capsys):
        baseline = _artefact(tmp_path, "base.json", _baseline(completed_rps=10.0))
        current = _artefact(tmp_path, "curr.json", _baseline(completed_rps=7.0))
        assert check.main(["--baseline", baseline, "--current", current]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "completed_rps" in out

    def test_nested_benchmark_metric_is_gated(self, tmp_path):
        baseline = _artefact(tmp_path, "base.json", _baseline())
        current = _artefact(
            tmp_path,
            "curr.json",
            _baseline(overhead_benchmark={"served_solves_per_sec": 5.0}),
        )
        assert check.main(["--baseline", baseline, "--current", current]) == 1

    def test_tolerance_flag_widens_the_floor(self, tmp_path):
        baseline = _artefact(tmp_path, "base.json", _baseline(completed_rps=10.0))
        current = _artefact(tmp_path, "curr.json", _baseline(completed_rps=6.0))
        args = ["--baseline", baseline, "--current", current]
        assert check.main(args) == 1
        assert check.main(args + ["--tolerance", "0.5"]) == 0

    def test_metrics_absent_from_one_side_are_skipped(self, tmp_path, capsys):
        baseline = _artefact(tmp_path, "base.json", _baseline())
        current = _artefact(tmp_path, "curr.json", {"completed_rps": 1.0})
        assert check.main(["--baseline", baseline, "--current", current]) == 0
        assert "[skip]" in capsys.readouterr().out


def _opt_baseline(**overrides) -> dict:
    payload = {
        "kind": "opt-bench",
        "geomean_speedup": 2.3,
        "seeded_geomean_speedup": 2.6,
        "proven_fraction": 1.0,
    }
    payload.update(overrides)
    return payload


class TestArtefactKinds:
    def test_unmarked_artefacts_default_to_server_bench(self):
        assert check.artefact_kind(_baseline()) == "server-bench"
        assert check.artefact_kind({"kind": "mystery"}) == "server-bench"
        assert check.artefact_kind(_opt_baseline()) == "opt-bench"

    def test_opt_bench_metrics_are_gated(self, tmp_path, capsys):
        baseline = _artefact(tmp_path, "base.json", _opt_baseline())
        current = _artefact(tmp_path, "curr.json", _opt_baseline(geomean_speedup=1.0))
        assert check.main(["--baseline", baseline, "--current", current]) == 1
        out = capsys.readouterr().out
        assert "[opt-bench]" in out
        assert "geomean_speedup" in out

    def test_opt_bench_within_tolerance_passes(self, tmp_path):
        baseline = _artefact(tmp_path, "base.json", _opt_baseline())
        current = _artefact(
            tmp_path, "curr.json", _opt_baseline(seeded_geomean_speedup=2.2)
        )
        assert check.main(["--baseline", baseline, "--current", current]) == 0

    def test_proven_fraction_collapse_fails(self, tmp_path):
        baseline = _artefact(tmp_path, "base.json", _opt_baseline())
        current = _artefact(tmp_path, "curr.json", _opt_baseline(proven_fraction=0.5))
        assert check.main(["--baseline", baseline, "--current", current]) == 1

    def test_mismatched_kinds_are_a_hard_failure(self, tmp_path, capsys):
        baseline = _artefact(tmp_path, "base.json", _baseline())
        current = _artefact(tmp_path, "curr.json", _opt_baseline())
        assert check.main(["--baseline", baseline, "--current", current]) == 2
        assert "kinds differ" in capsys.readouterr().out


class TestHardFailures:
    def test_no_comparable_metric_is_a_hard_failure(self, tmp_path, capsys):
        baseline = _artefact(tmp_path, "base.json", {"unrelated": 1})
        current = _artefact(tmp_path, "curr.json", _baseline())
        assert check.main(["--baseline", baseline, "--current", current]) == 2
        assert "nothing gated" in capsys.readouterr().out

    def test_unreadable_artefact_is_a_hard_failure(self, tmp_path, capsys):
        current = _artefact(tmp_path, "curr.json", _baseline())
        code = check.main(["--baseline", str(tmp_path / "missing.json"), "--current", current])
        assert code == 2
        assert "cannot read" in capsys.readouterr().out

    def test_invalid_tolerance_is_rejected(self, tmp_path):
        baseline = _artefact(tmp_path, "base.json", _baseline())
        with pytest.raises(SystemExit):
            check.main(["--baseline", baseline, "--current", baseline, "--tolerance", "1.5"])
