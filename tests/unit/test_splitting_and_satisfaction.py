"""Tests for the split-amount LP and the max-satisfiable-demand LP."""

import pytest

from repro.flows.demand_satisfaction import max_satisfiable_flow
from repro.flows.splitting_lp import maximum_splittable_amount
from repro.network.demand import DemandGraph


class TestMaximumSplittableAmount:
    def test_full_split_on_intermediate_node(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        graph = line_supply.full_graph()
        dx = maximum_splittable_amount(graph, demand, ("a", "e"), "c")
        assert dx == pytest.approx(5.0)

    def test_split_limited_by_capacity(self, diamond_supply):
        demand = DemandGraph()
        demand.add("s", "t", 12.0)
        graph = diamond_supply.full_graph()
        # Node b sits on the capacity-4 branch: at most 4 units can go through it
        # while the instance stays routable.
        dx = maximum_splittable_amount(graph, demand, ("s", "t"), "b")
        assert dx == pytest.approx(4.0)

    def test_split_limited_by_demand(self, diamond_supply):
        demand = DemandGraph()
        demand.add("s", "t", 3.0)
        graph = diamond_supply.full_graph()
        dx = maximum_splittable_amount(graph, demand, ("s", "t"), "a")
        assert dx == pytest.approx(3.0)

    def test_split_with_conflicting_demand(self, line_supply):
        # Another demand already needs 6 of the 10 units on the shared path.
        demand = DemandGraph()
        demand.add("a", "e", 4.0)
        demand.add("b", "d", 6.0)
        graph = line_supply.full_graph()
        dx = maximum_splittable_amount(graph, demand, ("a", "e"), "c")
        assert dx == pytest.approx(4.0)

    def test_unreachable_via_gives_zero(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        graph = line_supply.full_graph()
        graph.remove_node("c")
        # c is gone from the graph: nothing can be split through it.
        assert maximum_splittable_amount(graph, demand, ("a", "e"), "c") == 0.0

    def test_via_equal_to_endpoint_rejected(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        graph = line_supply.full_graph()
        with pytest.raises(ValueError):
            maximum_splittable_amount(graph, demand, ("a", "e"), "a")

    def test_unknown_pair_gives_zero(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        graph = line_supply.full_graph()
        assert maximum_splittable_amount(graph, demand, ("a", "d"), "c") == 0.0

    def test_zero_demand_gives_zero(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        graph = line_supply.full_graph()
        assert maximum_splittable_amount(graph, demand, ("b", "d"), "c") == 0.0


class TestMaxSatisfiableFlow:
    def test_everything_satisfied(self, line_supply, single_demand):
        graph = line_supply.working_graph()
        result = max_satisfiable_flow(graph, single_demand)
        assert result.fraction == pytest.approx(1.0)
        assert result.total_satisfied == pytest.approx(5.0)

    def test_capacity_limits_satisfaction(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "e", 25.0)
        result = max_satisfiable_flow(line_supply.working_graph(), demand)
        assert result.total_satisfied == pytest.approx(10.0)
        assert result.fraction == pytest.approx(0.4)

    def test_disconnected_pair_gets_zero(self, line_supply):
        line_supply.break_node("c")
        demand = DemandGraph()
        demand.add("a", "e", 5.0)
        demand.add("a", "b", 5.0)
        result = max_satisfiable_flow(line_supply.working_graph(), demand)
        assert result.satisfied[("a", "e")] == 0.0
        assert result.satisfied[("a", "b")] == pytest.approx(5.0)
        assert result.fraction == pytest.approx(0.5)

    def test_empty_demand(self, line_supply):
        result = max_satisfiable_flow(line_supply.working_graph(), DemandGraph())
        assert result.fraction == 1.0
        assert result.total_satisfied == 0.0

    def test_sharing_respects_capacity(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "c", 8.0)
        demand.add("b", "e", 8.0)
        result = max_satisfiable_flow(line_supply.working_graph(), demand)
        # The shared edge (b, c) caps the total at 10.
        assert result.total_satisfied == pytest.approx(10.0)

    def test_missing_endpoint(self, line_supply):
        demand = DemandGraph()
        demand.add("a", "not-there", 5.0)
        result = max_satisfiable_flow(line_supply.working_graph(), demand)
        assert result.total_satisfied == 0.0
