"""Unit tests of structured logging (``repro.obs.logging``).

Covers the JSON line schema (trace-id correlation included), idempotent
configuration with env-var export for spawned workers, and the
rate-limited warning used to replace silent exception swallows.
"""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    LOG_FORMAT_ENV_VAR,
    LOG_LEVEL_ENV_VAR,
    JsonFormatter,
    _reset_rate_limits,
    configure_from_env,
    configure_logging,
    get_logger,
    warn_rate_limited,
)
from repro.obs.trace import trace_context


@pytest.fixture(autouse=True)
def _clean_logging(monkeypatch):
    """Keep each test's handlers/env/rate-limits from leaking to the next."""
    monkeypatch.delenv(LOG_LEVEL_ENV_VAR, raising=False)
    monkeypatch.delenv(LOG_FORMAT_ENV_VAR, raising=False)
    _reset_rate_limits()
    root = logging.getLogger("repro")
    before = list(root.handlers)
    before_level = root.level
    before_propagate = root.propagate
    root.propagate = True  # let caplog's root handler see repro.* records
    yield
    for handler in list(root.handlers):
        if handler not in before:
            root.removeHandler(handler)
    root.setLevel(before_level)
    root.propagate = before_propagate
    _reset_rate_limits()


class TestJsonFormatter:
    def _format(self, **extra):
        logger = get_logger("repro.test.fmt")
        record = logger.makeRecord(
            logger.name, logging.INFO, __file__, 1, "thing happened", (), None,
            extra=extra,
        )
        return json.loads(JsonFormatter().format(record))

    def test_schema_fields(self):
        payload = self._format(digest="ab12", seconds=0.5)
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test.fmt"
        assert payload["event"] == "thing happened"
        assert isinstance(payload["ts"], float)
        assert payload["digest"] == "ab12"
        assert payload["seconds"] == 0.5
        assert "trace_id" not in payload  # no active trace, none given

    def test_trace_id_attached_from_active_trace(self):
        with trace_context("fmt-trace-12345678") as trace:
            payload = self._format()
        assert payload["trace_id"] == trace.trace_id

    def test_explicit_trace_id_wins(self):
        with trace_context("ambient-trace-0001"):
            payload = self._format(trace_id="explicit-trace-01")
        assert payload["trace_id"] == "explicit-trace-01"

    def test_output_is_one_json_line(self):
        logger = get_logger("repro.test.fmt")
        record = logger.makeRecord(
            logger.name, logging.WARNING, __file__, 1, "multi\nline", (), None
        )
        line = JsonFormatter().format(record)
        assert "\n" not in line
        assert json.loads(line)["event"] == "multi\nline"


class TestConfigureLogging:
    def test_writes_json_lines_to_the_stream(self):
        stream = io.StringIO()
        configure_logging(level="info", log_format="json", stream=stream)
        get_logger("repro.test.cfg").info("hello", extra={"n": 3})
        payload = json.loads(stream.getvalue().strip())
        assert payload["event"] == "hello"
        assert payload["n"] == 3

    def test_reconfigure_replaces_rather_than_stacks(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging(stream=first)
        configure_logging(stream=second)
        get_logger("repro.test.cfg").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("\n") == 1

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging(level="warning", stream=stream)
        logger = get_logger("repro.test.cfg")
        logger.info("quiet")
        logger.warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_exports_env_for_spawned_workers(self, monkeypatch):
        configure_logging(level="debug", log_format="text", stream=io.StringIO())
        import os

        assert os.environ[LOG_LEVEL_ENV_VAR] == "debug"
        assert os.environ[LOG_FORMAT_ENV_VAR] == "text"

    def test_rejects_unknown_settings(self):
        with pytest.raises(ValueError):
            configure_logging(level="loudest")
        with pytest.raises(ValueError):
            configure_logging(log_format="xml")

    def test_text_format_carries_fields(self):
        stream = io.StringIO()
        configure_logging(log_format="text", stream=stream)
        get_logger("repro.test.cfg").info("job done", extra={"digest": "ab12"})
        assert "job done" in stream.getvalue()
        assert "digest=ab12" in stream.getvalue()


class TestConfigureFromEnv:
    def test_no_env_configures_nothing(self):
        assert configure_from_env(stream=io.StringIO()) is None

    def test_picks_up_daemon_exports(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV_VAR, "warning")
        monkeypatch.setenv(LOG_FORMAT_ENV_VAR, "json")
        stream = io.StringIO()
        root = configure_from_env(stream=stream)
        assert root is not None and root.level == logging.WARNING
        get_logger("repro.test.env").warning("from worker")
        assert json.loads(stream.getvalue().strip())["event"] == "from worker"

    def test_garbage_env_falls_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV_VAR, "shout")
        monkeypatch.setenv(LOG_FORMAT_ENV_VAR, "xml")
        root = configure_from_env(stream=io.StringIO())
        assert root is not None and root.level == logging.INFO


class TestWarnRateLimited:
    def test_first_emits_then_suppresses(self, caplog):
        logger = get_logger("repro.test.rate")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert warn_rate_limited(logger, "k1", "bad thing", error="x")
            assert not warn_rate_limited(logger, "k1", "bad thing", error="x")
            assert not warn_rate_limited(logger, "k1", "bad thing", error="x")
        assert len(caplog.records) == 1
        assert caplog.records[0].error == "x"

    def test_suppressed_count_surfaces_on_next_emit(self, caplog):
        logger = get_logger("repro.test.rate")
        with caplog.at_level(logging.WARNING, logger="repro"):
            warn_rate_limited(logger, "k3", "bad thing")  # emits
            warn_rate_limited(logger, "k3", "bad thing")  # suppressed
            warn_rate_limited(logger, "k3", "bad thing")  # suppressed
            # interval=0 lets the window lapse immediately: the next call
            # emits again and carries the count of what it swallowed
            warn_rate_limited(logger, "k3", "bad thing", interval=0.0)
        emitted = [r for r in caplog.records if getattr(r, "suppressed", 0)]
        assert len(emitted) == 1
        assert emitted[0].suppressed == 2

    def test_interval_zero_always_emits(self, caplog):
        logger = get_logger("repro.test.rate")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert warn_rate_limited(logger, "k2", "bad thing", interval=0.0)
            assert warn_rate_limited(logger, "k2", "bad thing", interval=0.0)
        assert len(caplog.records) == 2

    def test_keys_are_independent(self, caplog):
        logger = get_logger("repro.test.rate")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert warn_rate_limited(logger, "a-key", "a failed")
            assert warn_rate_limited(logger, "b-key", "b failed")
        assert len(caplog.records) == 2
