"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    require,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_accepts_int(self):
        assert check_positive(3, "x") == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="strictly positive"):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("5", "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_accepts_positive(self):
        assert check_non_negative(1.5, "x") == 1.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative(-0.1, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")

    def test_error_message_includes_name(self):
        with pytest.raises(ValueError, match="my_prob"):
            check_probability(2.0, "my_prob")
