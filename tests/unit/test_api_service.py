"""Tests for the RecoveryService session layer (repro.api.service)."""

import json

import pytest

from repro.api import (
    AssessmentRequest,
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    RecoveryResult,
    RecoveryService,
    TopologySpec,
)
from repro.flows.solver.incremental import clear_structure_cache


def grid_request(**changes):
    defaults = dict(
        topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3, "capacity": 10.0}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec("far-apart", num_pairs=1, flow_per_pair=5.0),
        algorithms=("ISP", "ALL"),
        seed=3,
    )
    defaults.update(changes)
    return RecoveryRequest(**defaults)


def deterministic_metrics(run):
    return {k: v for k, v in run.metrics.items() if k != "elapsed_seconds"}


class TestSolve:
    def test_solve_returns_one_run_per_algorithm(self):
        result = RecoveryService().solve(grid_request())
        assert [run.algorithm for run in result.results] == ["ISP", "ALL"]
        assert result.broken_elements > 0
        for run in result.results:
            assert run.metrics["total_repairs"] > 0
            assert run.plan["repaired_nodes"] or run.plan["repaired_edges"]

    def test_solve_is_deterministic_across_sessions(self):
        first = RecoveryService().solve(grid_request())
        second = RecoveryService().solve(grid_request())
        for a, b in zip(first.results, second.results):
            assert deterministic_metrics(a) == deterministic_metrics(b)
            assert a.plan == b.plan

    def test_result_envelope_round_trips_through_json(self):
        result = RecoveryService().solve(grid_request())
        payload = json.loads(json.dumps(result.to_dict()))
        restored = RecoveryResult.from_dict(payload)
        # Tuple-valued grid node ids come back as tuples, not lists.
        assert restored.run("ISP").plan == result.run("ISP").plan
        assert restored == result

    def test_plan_reconstruction(self):
        result = RecoveryService().solve(grid_request(algorithms=("ISP",)))
        plan = result.run("ISP").to_plan()
        assert plan.total_repairs == int(result.run("ISP").metrics["total_repairs"])

    def test_algorithm_kwargs_are_honoured(self):
        # Forcing the bottleneck split mode must still produce a working plan.
        result = RecoveryService().solve(
            grid_request(
                algorithms=("ISP",),
                algorithm_kwargs={"ISP": {"split_amount_mode": "bottleneck"}},
            )
        )
        assert result.run("ISP").metrics["satisfied_pct"] == pytest.approx(100.0)


class TestSessionReuse:
    def test_repeated_solve_hits_structure_cache_and_warm_start_store(self):
        clear_structure_cache()
        service = RecoveryService()
        request = grid_request(algorithms=("ISP",))
        first = service.solve(request).run("ISP").solver
        second = service.solve(request).run("ISP").solver
        # First solve of the session pays the structure builds ...
        assert first["structure_misses"] > 0
        # ... the repeat is served entirely from the topology-structure cache
        assert second["structure_misses"] == 0
        assert second["structure_hits"] > 0
        # and the session's context offers the remembered audit solution.
        assert second["warm_start_attempts"] >= 1

    def test_topology_lru_reuses_pristine_build(self):
        service = RecoveryService()
        service.solve(grid_request(seed=3))
        service.solve(grid_request(seed=4))
        info = service.cache_info()
        assert info["topology_cache_misses"] == 1
        assert info["topology_cache_hits"] == 1
        assert info["topology_cache_size"] == 1

    def test_request_backend_does_not_leak(self):
        from repro.flows.solver.backends import default_backend_name

        before = default_backend_name()
        # 'scipy' always exists; a request naming it explicitly must leave
        # the process default untouched afterwards.
        RecoveryService().solve(grid_request(algorithms=("SRT",), lp_backend="scipy"))
        assert default_backend_name() == before

    def test_pinned_seed_topologies_are_cached(self):
        service = RecoveryService()
        request = grid_request(
            topology=TopologySpec(
                "erdos-renyi",
                kwargs={"num_nodes": 12, "edge_probability": 0.4, "capacity": 100.0, "seed": 5},
            ),
            demand=DemandSpec("random", num_pairs=1, flow_per_pair=1.0),
            algorithms=("SRT",),
        )
        first = service.solve(request)
        second = service.solve(request)
        info = service.cache_info()
        assert info["topology_cache_misses"] == 1
        assert info["topology_cache_hits"] == 1
        assert deterministic_metrics(first.results[0]) == deterministic_metrics(
            second.results[0]
        )

    def test_seeded_topologies_bypass_the_lru(self):
        service = RecoveryService()
        request = grid_request(
            topology=TopologySpec(
                "erdos-renyi",
                kwargs={"num_nodes": 12, "edge_probability": 0.4, "capacity": 100.0},
            ),
            demand=DemandSpec("random", num_pairs=1, flow_per_pair=1.0),
            algorithms=("SRT",),
        )
        service.solve(request)
        service.solve(request)
        assert service.cache_info()["topology_cache_size"] == 0


class TestAssess:
    def test_assess_matches_direct_assessment(self):
        request = AssessmentRequest(
            topology=TopologySpec("grid", kwargs={"rows": 3, "cols": 3}),
            disruption=DisruptionSpec("gaussian", kwargs={"variance": 2.0}),
            demand=DemandSpec("far-apart", num_pairs=1, flow_per_pair=2.0),
            seed=5,
        )
        service = RecoveryService()
        result = service.assess(request)
        assert result.summary["broken_nodes"] + result.summary["broken_edges"] > 0
        assert "pre_recovery_satisfied_pct" in result.summary
        # The envelope round-trips.
        from repro.api import AssessmentResult

        restored = AssessmentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result


class TestSolveBatch:
    def test_batch_matches_in_process_solve(self):
        requests = [grid_request(seed=3), grid_request(seed=9, algorithms=("SRT",))]
        service = RecoveryService()
        batch = service.solve_batch(requests, jobs=2)
        for request, envelope in zip(requests, batch):
            solo = service.solve(request)
            assert [r.algorithm for r in envelope.results] == list(request.algorithms)
            for run_b, run_s in zip(envelope.results, solo.results):
                assert deterministic_metrics(run_b) == deterministic_metrics(run_s)
                assert run_b.plan["repaired_nodes"] == run_s.plan["repaired_nodes"]
                assert run_b.plan["repaired_edges"] == run_s.plan["repaired_edges"]

    def test_batch_resumes_from_request_keyed_cache(self, tmp_path):
        requests = [grid_request(seed=3), grid_request(seed=9)]
        service = RecoveryService()
        first = service.solve_batch(requests, cache_dir=tmp_path)
        assert not any(run.cached for envelope in first for run in envelope.results)
        stored = len(list(tmp_path.glob("*.json")))
        assert stored == sum(len(request.algorithms) for request in requests)
        second = service.solve_batch(requests, cache_dir=tmp_path)
        assert all(run.cached for envelope in second for run in envelope.results)
        for a, b in zip(first, second):
            for run_a, run_b in zip(a.results, b.results):
                assert run_a.metrics == run_b.metrics
                assert run_a.plan == run_b.plan

    def test_batch_recomputes_planless_sweep_cache_entries(self, tmp_path):
        """A metrics-only cell cached by a sweep must not yield an empty plan."""
        from repro.engine.cache import ResultCache
        from repro.engine.tasks import expand_tasks, execute_task

        request = grid_request(algorithms=("ISP",))
        # Simulate a sweep run: same cell, cached without capture_plan.
        cache = ResultCache(tmp_path)
        task = expand_tasks(request.to_experiment_spec(), seed=request.seed)[0]
        cache.put(task, execute_task(task))
        envelope = RecoveryService().solve_batch([request], cache_dir=tmp_path)[0]
        run = envelope.results[0]
        assert not run.cached  # recomputed, not served plan-less
        assert run.plan["repaired_nodes"] or run.plan["repaired_edges"]
        # The recompute overwrote the entry; the next batch is served plans.
        again = RecoveryService().solve_batch([request], cache_dir=tmp_path)[0]
        assert again.results[0].cached
        assert again.results[0].plan == run.plan

    def test_cached_batch_plans_survive_json_storage(self, tmp_path):
        # Grid node ids are tuples; the disk cache stores them as lists and
        # the envelope canonicalises them back.
        request = grid_request(algorithms=("ISP",))
        service = RecoveryService()
        fresh = service.solve_batch([request], cache_dir=tmp_path)[0]
        cached = service.solve_batch([request], cache_dir=tmp_path)[0]
        assert cached.results[0].cached
        assert cached.results[0].plan == fresh.results[0].plan
