"""Tests for topology/demand serialisation (JSON and GraphML)."""

import networkx as nx
import pytest

from repro.network.demand import DemandGraph
from repro.topologies.grids import grid_topology
from repro.topologies.io import (
    demand_from_dict,
    demand_to_dict,
    load_demand_json,
    load_supply_json,
    load_topology_zoo_graphml,
    save_demand_json,
    save_supply_json,
    supply_from_dict,
    supply_to_dict,
)
from repro.network.supply import SupplyGraph


def build_small_supply() -> SupplyGraph:
    supply = SupplyGraph()
    supply.add_node("a", pos=(0.0, 1.0), repair_cost=2.0)
    supply.add_node("b", pos=(1.0, 1.0))
    supply.add_node("c")
    supply.add_edge("a", "b", capacity=7.5, repair_cost=3.0)
    supply.add_edge("b", "c", capacity=2.0)
    supply.break_node("c")
    supply.break_edge("a", "b")
    return supply


class TestSupplyJsonRoundTrip:
    def test_round_trip_preserves_structure(self):
        original = build_small_supply()
        restored = supply_from_dict(supply_to_dict(original))
        assert set(restored.nodes) == set(original.nodes)
        assert set(restored.edges) == set(original.edges)

    def test_round_trip_preserves_attributes(self):
        original = build_small_supply()
        restored = supply_from_dict(supply_to_dict(original))
        assert restored.capacity("a", "b") == 7.5
        assert restored.edge_repair_cost("a", "b") == 3.0
        assert restored.node_repair_cost("a") == 2.0
        assert restored.position("a") == (0.0, 1.0)
        assert restored.position("c") is None

    def test_round_trip_preserves_failures(self):
        original = build_small_supply()
        restored = supply_from_dict(supply_to_dict(original))
        assert restored.is_broken_node("c")
        assert restored.is_broken_edge("a", "b")
        assert not restored.is_broken_edge("b", "c")

    def test_file_round_trip(self, tmp_path):
        original = build_small_supply()
        path = tmp_path / "supply.json"
        save_supply_json(original, path)
        restored = load_supply_json(path)
        assert set(restored.edges) == set(original.edges)
        assert restored.is_broken_node("c")

    def test_unsupported_version_rejected(self):
        data = supply_to_dict(build_small_supply())
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            supply_from_dict(data)


class TestDemandJsonRoundTrip:
    def test_round_trip(self):
        demand = DemandGraph()
        demand.add("a", "b", 4.0)
        demand.add("b", "c", 2.5)
        restored = demand_from_dict(demand_to_dict(demand))
        assert restored.as_dict() == demand.as_dict()

    def test_file_round_trip(self, tmp_path):
        demand = DemandGraph()
        demand.add("x", "y", 1.5)
        path = tmp_path / "demand.json"
        save_demand_json(demand, path)
        restored = load_demand_json(path)
        assert restored.demand("x", "y") == 1.5

    def test_empty_demand(self):
        assert demand_from_dict(demand_to_dict(DemandGraph())).is_empty


class TestTopologyZooGraphml:
    def write_zoo_file(self, tmp_path):
        graph = nx.Graph()
        graph.add_node("0", label="Toronto", Latitude=43.65, Longitude=-79.38)
        graph.add_node("1", label="Ottawa", Latitude=45.42, Longitude=-75.70)
        graph.add_node("2", label="Montreal", Latitude=45.50, Longitude=-73.57)
        graph.add_edge("0", "1")
        graph.add_edge("1", "2")
        path = tmp_path / "zoo.graphml"
        nx.write_graphml(graph, path)
        return path

    def test_loads_nodes_with_positions(self, tmp_path):
        supply = load_topology_zoo_graphml(self.write_zoo_file(tmp_path))
        assert supply.number_of_nodes == 3
        assert supply.number_of_edges == 2
        assert supply.position("Toronto") == (-79.38, 43.65)

    def test_default_capacity_applied(self, tmp_path):
        supply = load_topology_zoo_graphml(self.write_zoo_file(tmp_path), default_capacity=33.0)
        assert supply.capacity("Toronto", "Ottawa") == 33.0

    def test_duplicate_labels_get_unique_names(self, tmp_path):
        graph = nx.Graph()
        graph.add_node("0", label="PoP")
        graph.add_node("1", label="PoP")
        graph.add_edge("0", "1")
        path = tmp_path / "dup.graphml"
        nx.write_graphml(graph, path)
        supply = load_topology_zoo_graphml(path)
        assert supply.number_of_nodes == 2
        assert supply.number_of_edges == 1

    def test_invalid_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_topology_zoo_graphml(self.write_zoo_file(tmp_path), default_capacity=0.0)
