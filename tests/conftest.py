"""Shared fixtures for the test suite.

The fixtures are deliberately tiny graphs whose optimal recovery plans can
be worked out by hand, so tests can assert exact numbers rather than loose
bounds.
"""

from __future__ import annotations

import pytest

from repro.network.demand import DemandGraph
from repro.network.supply import SupplyGraph


@pytest.fixture
def line_supply() -> SupplyGraph:
    """A path a - b - c - d - e with capacity 10 on every edge."""
    supply = SupplyGraph()
    nodes = ["a", "b", "c", "d", "e"]
    for index, node in enumerate(nodes):
        supply.add_node(node, pos=(float(index), 0.0))
    for u, v in zip(nodes, nodes[1:]):
        supply.add_edge(u, v, capacity=10.0)
    return supply


@pytest.fixture
def diamond_supply() -> SupplyGraph:
    """Two disjoint s→t paths: s-a-t (capacity 10) and s-b-t (capacity 4)."""
    supply = SupplyGraph()
    for node, pos in (("s", (0, 0)), ("a", (1, 1)), ("b", (1, -1)), ("t", (2, 0))):
        supply.add_node(node, pos=(float(pos[0]), float(pos[1])))
    supply.add_edge("s", "a", capacity=10.0)
    supply.add_edge("a", "t", capacity=10.0)
    supply.add_edge("s", "b", capacity=4.0)
    supply.add_edge("b", "t", capacity=4.0)
    return supply


@pytest.fixture
def grid3_supply() -> SupplyGraph:
    """A 3x3 grid with capacity 10 on every edge."""
    from repro.topologies.grids import grid_topology

    return grid_topology(3, 3, capacity=10.0)


@pytest.fixture
def single_demand() -> DemandGraph:
    """One demand of 5 units between the ends of the line fixture."""
    demand = DemandGraph()
    demand.add("a", "e", 5.0)
    return demand


@pytest.fixture
def diamond_demand() -> DemandGraph:
    """One demand of 12 units between s and t (needs both diamond paths)."""
    demand = DemandGraph()
    demand.add("s", "t", 12.0)
    return demand
