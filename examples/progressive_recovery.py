#!/usr/bin/env python3
"""Staged (progressive) recovery of the Bell-Canada network.

The paper decides *which* elements to repair; field crews also need to know
*in which order*.  This example combines both through the service facade:
the damage assessment and ISP's repair set come from a
:class:`RecoveryService`, the live instance for the scheduling extension
comes from the *same* construction path (``service.build_instance``), and
the progressive-recovery extension schedules the repairs into stages of a
fixed crew budget, printing the restoration curve (how much mission-critical
demand is back after each stage).

Run it with::

    python examples/progressive_recovery.py [budget_per_stage]
"""

from __future__ import annotations

import sys

from repro import (
    AssessmentRequest,
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    RecoveryService,
    TopologySpec,
)
from repro.extensions import schedule_progressive_recovery


def main(budget_per_stage: int = 4) -> None:
    topology = TopologySpec("bell-canada")
    disruption = DisruptionSpec("gaussian", kwargs={"variance": 50.0})
    demand_spec = DemandSpec("routable-far-apart", num_pairs=3, flow_per_pair=10.0)
    service = RecoveryService()

    assessment = service.assess(
        AssessmentRequest(topology=topology, disruption=disruption, demand=demand_spec, seed=99)
    )
    print("Damage assessment before recovery:")
    for key, value in assessment.summary.items():
        print(f"  {key:32}: {value}")
    print()

    request = RecoveryRequest(
        topology=topology,
        disruption=disruption,
        demand=demand_spec,
        algorithms=("ISP",),
        seed=99,
    )
    run = service.solve(request).run("ISP")
    plan = run.to_plan()
    print(
        f"ISP selected {plan.total_repairs} repairs "
        f"({plan.num_node_repairs} nodes, {plan.num_edge_repairs} links).\n"
    )

    # The scheduling extension needs the live instance; the service exposes
    # the same construction path it solved the request on.
    supply, demand, _ = service.build_instance(request)
    schedule = schedule_progressive_recovery(supply, demand, plan, budget_per_stage)
    print(f"Progressive schedule with {budget_per_stage} repairs per stage:")
    curve = schedule.restoration_curve()
    print(f"  before any repair: {100.0 * curve[0]:6.1f}% of demand available")
    for stage in schedule.stages:
        repaired = [str(n) for n in stage.repaired_nodes]
        repaired += [f"{u}<->{v}" for u, v in stage.repaired_edges]
        print(
            f"  stage {stage.index:>2}: {100.0 * stage.satisfied_fraction:6.1f}% restored   "
            f"({', '.join(repaired)})"
        )
    print(
        f"\nFull service restored after {schedule.num_stages} stages "
        f"({schedule.total_repairs} repairs)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
