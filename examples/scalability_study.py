#!/usr/bin/env python3
"""Scalability study on synthetic random graphs (the paper's Scenario 2).

The paper's Figure 7 shows that the exact MILP quickly becomes intractable
as the supply graph gets denser, while ISP's running time stays flat.  This
example reproduces that study at a configurable scale as a thin client of
the service facade: it asks :meth:`RecoveryService.sweep` to run the
registered ``erdos-renyi-scalability`` spec (scaled to the caller's
parameters), and prints execution times and repair counts.

Run it with::

    python examples/scalability_study.py [num_nodes] [--skip-opt] [--jobs N]

Defaults to 40 nodes so it finishes in well under a minute; use 100 nodes to
match the paper (the MILP will dominate the runtime).  ``--jobs N`` fans the
(edge probability x algorithm) cells out to N worker processes through the
experiment engine — the metrics are identical, only the wall clock shrinks;
``--jobs 0`` uses one worker per CPU.
"""

from __future__ import annotations

import dataclasses
import sys

from repro import RecoveryService, get_spec
from repro.evaluation.reporting import format_table


def main(num_nodes: int = 40, include_opt: bool = True, jobs: int = 1) -> None:
    algorithms = ("ISP", "SRT", "OPT") if include_opt else ("ISP", "SRT")
    base = get_spec("erdos-renyi-scalability")
    topology = dataclasses.replace(
        base.topology,
        kwargs={**dict(base.topology.kwargs), "num_nodes": num_nodes, "capacity": 1000.0},
    )
    result = RecoveryService().sweep(
        base,
        seed=42,
        jobs=jobs,
        sweep_values=(0.08, 0.2, 0.4),
        topology=topology,
        algorithms=algorithms,
        runs=1,
        opt_time_limit=120.0,
    )
    print(
        format_table(
            result.rows,
            columns=[
                "edge_probability",
                "algorithm",
                "total_repairs",
                "elapsed_seconds",
                "satisfied_pct",
            ],
            title=f"Erdős–Rényi scalability study, n={num_nodes} (cf. paper Figure 7)",
        )
    )

    times = result.series("elapsed_seconds")
    print("Execution-time summary (seconds):")
    for algorithm, series in times.items():
        values = ", ".join(f"p={p}: {t:.2f}" for p, t in sorted(series.items()))
        print(f"  {algorithm:>4}: {values}")
    if include_opt:
        densest = max(times["OPT"])
        ratio = times["OPT"][densest] / max(times["ISP"][densest], 1e-9)
        print(
            f"\nAt p={densest} the exact MILP took {ratio:.1f}x longer than ISP "
            "(the gap grows without bound at paper scale — 27 hours vs 5 minutes)."
        )


if __name__ == "__main__":
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 and sys.argv[1].isdigit() else 40
    workers = 1
    if "--jobs" in sys.argv:
        try:
            workers = int(sys.argv[sys.argv.index("--jobs") + 1])
        except (IndexError, ValueError):
            raise SystemExit(
                "usage: scalability_study.py [num_nodes] [--skip-opt] [--jobs N]"
            )
    main(nodes, include_opt="--skip-opt" not in sys.argv, jobs=workers)
