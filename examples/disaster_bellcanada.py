#!/usr/bin/env python3
"""Disaster-recovery study on the Bell-Canada backbone (the paper's Scenario 1).

A geographically correlated disaster (bi-variate Gaussian, like a hurricane
or earthquake footprint) hits the Bell-Canada network.  Mission-critical
services — think emergency coordination between far-apart cities — must be
restored with as few repairs as possible.

The example is a thin client of :mod:`repro.api`: one
:class:`AssessmentRequest` gives the operator's situational picture, one
:class:`RecoveryRequest` compares every algorithm of the paper on the same
disaster instance, and ISP's repair work-order is read straight out of the
result envelope, ready to hand to field crews.

Run it with::

    python examples/disaster_bellcanada.py [variance] [--skip-opt]

where the optional ``variance`` (default 60) controls the footprint size of
the disaster in squared coordinate degrees and ``--skip-opt`` drops the
exact MILP (useful on slow machines / CI).
"""

from __future__ import annotations

import sys

from repro import (
    AssessmentRequest,
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    RecoveryService,
    TopologySpec,
)
from repro.evaluation.reporting import format_table


def main(variance: float = 60.0, include_opt: bool = True) -> None:
    topology = TopologySpec("bell-canada")
    disruption = DisruptionSpec("gaussian", kwargs={"variance": variance})
    demand = DemandSpec("routable-far-apart", num_pairs=4, flow_per_pair=10.0)
    service = RecoveryService()

    # Situational picture before committing to any repair.
    assessment = service.assess(
        AssessmentRequest(topology=topology, disruption=disruption, demand=demand, seed=2016)
    )
    summary = assessment.summary
    print(
        f"Gaussian disaster (variance={variance}): destroyed "
        f"{summary['broken_nodes']} nodes and {summary['broken_edges']} links "
        f"({100.0 * summary['broken_fraction']:.1f}% of the network); "
        f"{summary['disconnected_pairs']} mission-critical pairs cut off, "
        f"{summary['pre_recovery_satisfied_pct']:.1f}% of demand still routable\n"
    )

    # Compare all algorithms of the paper on this instance.
    names = ("ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL")
    if not include_opt:
        names = tuple(name for name in names if name != "OPT")
    result = service.solve(
        RecoveryRequest(
            topology=topology,
            disruption=disruption,
            demand=demand,
            algorithms=names,
            opt_time_limit=120.0,
            seed=2016,
        )
    )
    print(
        format_table(
            result.rows(),
            columns=[
                "algorithm",
                "node_repairs",
                "edge_repairs",
                "total_repairs",
                "satisfied_pct",
                "elapsed_seconds",
            ],
            title="Recovery comparison (cf. paper Figures 4-6)",
        )
    )

    # Show the deployable ISP plan, straight from the result envelope.
    isp = result.run("ISP")
    nodes = isp.plan["repaired_nodes"]
    edges = isp.plan["repaired_edges"]
    print("ISP repair work-order:")
    print(f"  nodes to rebuild ({len(nodes)}): {nodes}")
    print(f"  links to rebuild ({len(edges)}):")
    for u, v in edges:
        print(f"    {u} <-> {v}")


if __name__ == "__main__":
    numeric = [arg for arg in sys.argv[1:] if not arg.startswith("--")]
    main(
        variance=float(numeric[0]) if numeric else 60.0,
        include_opt="--skip-opt" not in sys.argv,
    )
