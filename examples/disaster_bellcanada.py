#!/usr/bin/env python3
"""Disaster-recovery study on the Bell-Canada backbone (the paper's Scenario 1).

A geographically correlated disaster (bi-variate Gaussian, like a hurricane
or earthquake footprint) hits the Bell-Canada network.  Mission-critical
services — think emergency coordination between far-apart cities — must be
restored with as few repairs as possible.

The example compares every algorithm of the paper on one disaster instance
and prints the figure-style comparison table, then shows ISP's actual repair
list so an operator could hand it to field crews.

Run it with::

    python examples/disaster_bellcanada.py [variance]

where the optional ``variance`` (default 60) controls the footprint size of
the disaster in squared coordinate degrees.
"""

from __future__ import annotations

import sys

from repro import (
    GaussianDisruption,
    bell_canada,
    compare_algorithms,
    get_algorithm,
    routable_far_apart_demand,
)
from repro.evaluation.reporting import format_table


def main(variance: float = 60.0) -> None:
    # Supply network and disaster.
    supply = bell_canada()
    disruption = GaussianDisruption(variance=variance)
    report = disruption.apply(supply, seed=2016)
    print(
        f"Gaussian disaster (variance={variance}): destroyed "
        f"{len(report.broken_nodes)} nodes and {len(report.broken_edges)} links "
        f"out of {supply.number_of_nodes}/{supply.number_of_edges}\n"
    )

    # Mission-critical demand: 4 far-apart city pairs, 10 units each.
    demand = routable_far_apart_demand(supply, num_pairs=4, flow_per_pair=10.0, seed=2016)
    print("Mission-critical flows:")
    for pair in demand.pairs():
        print(f"  {pair.source:>15} <-> {pair.target:<15} {pair.demand:.0f} units")
    print()

    # Compare all algorithms of the paper on this instance.
    names = ["ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL"]
    algorithms = [
        get_algorithm(name, time_limit=120.0) if name == "OPT" else get_algorithm(name)
        for name in names
    ]
    evaluations = compare_algorithms(supply, demand, algorithms)
    rows = [evaluation.as_row() for evaluation in evaluations]
    print(
        format_table(
            rows,
            columns=[
                "algorithm",
                "node_repairs",
                "edge_repairs",
                "total_repairs",
                "satisfied_pct",
                "elapsed_seconds",
            ],
            title="Recovery comparison (cf. paper Figures 4-6)",
        )
    )

    # Show the deployable ISP plan.
    isp_plan = get_algorithm("ISP").solve(supply, demand)
    print("ISP repair work-order:")
    print(f"  nodes to rebuild ({isp_plan.num_node_repairs}): {sorted(isp_plan.repaired_nodes)}")
    print(f"  links to rebuild ({isp_plan.num_edge_repairs}):")
    for u, v in sorted(isp_plan.repaired_edges):
        print(f"    {u} <-> {v}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 60.0)
