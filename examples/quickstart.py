#!/usr/bin/env python3
"""Quickstart: recover a small grid network after a complete destruction.

This example walks through the complete public API in a few dozen lines:

1. build a supply network (a 5x5 grid),
2. destroy it completely,
3. define two mission-critical demand flows,
4. run the paper's ISP heuristic and the exact MILP optimum,
5. compare repair counts, demand satisfaction and the actual repair lists.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CompleteDestruction,
    DemandGraph,
    evaluate_plan,
    get_algorithm,
    grid_topology,
)


def main() -> None:
    # 1. Supply network: a 5x5 grid with 10 units of capacity per link.
    supply = grid_topology(5, 5, capacity=10.0)
    print(f"Supply network: {supply.number_of_nodes} nodes, {supply.number_of_edges} edges")

    # 2. Disaster: everything breaks.
    report = CompleteDestruction().apply(supply)
    print(f"Disruption destroyed {report.total_broken} elements\n")

    # 3. Mission-critical demand: two flows between opposite corners.
    demand = DemandGraph()
    demand.add((0, 0), (4, 4), 6.0)
    demand.add((0, 4), (4, 0), 6.0)
    print("Demand flows:")
    for pair in demand.pairs():
        print(f"  {pair.source} -> {pair.target}: {pair.demand} units")
    print()

    # 4. Recover with ISP (the paper's heuristic) and OPT (the exact MILP).
    for name in ("ISP", "OPT"):
        algorithm = get_algorithm(name, time_limit=60.0) if name == "OPT" else get_algorithm(name)
        plan = algorithm.solve(supply, demand)
        evaluation = evaluate_plan(supply, demand, plan)
        print(f"--- {name} ---")
        print(f"  repaired nodes : {plan.num_node_repairs}")
        print(f"  repaired edges : {plan.num_edge_repairs}")
        print(f"  total repairs  : {plan.total_repairs} (of {report.total_broken} destroyed)")
        print(f"  satisfied      : {evaluation.satisfied_percentage:.1f}% of the demand")
        print(f"  solve time     : {plan.elapsed_seconds:.3f}s")
        if name == "ISP":
            print(f"  split actions  : {plan.metadata['splits']}")
            print(f"  prune actions  : {plan.metadata['prunes']}")
        print(f"  repaired edges : {sorted(plan.repaired_edges)[:6]} ...")
        print()


if __name__ == "__main__":
    main()
