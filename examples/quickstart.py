#!/usr/bin/env python3
"""Quickstart: recover a small grid network through the service facade.

This example walks through the public API (``repro.api``) in a few dozen
lines:

1. describe the instance declaratively — a 5x5 grid supply network, a
   complete destruction, two explicit mission-critical demand flows,
2. wrap it in a :class:`RecoveryRequest` together with the algorithms to
   run (the paper's ISP heuristic and the exact MILP optimum),
3. hand it to a :class:`RecoveryService` session,
4. read repair counts, demand satisfaction and the actual repair lists out
   of the versioned result envelope — the same JSON-ready structure
   ``python -m repro.cli solve --json`` prints.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import json

from repro import (
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    RecoveryService,
    TopologySpec,
)


def main() -> None:
    # 1. The instance, as pure data: topology + disruption + demand.
    request = RecoveryRequest(
        topology=TopologySpec("grid", kwargs={"rows": 5, "cols": 5, "capacity": 10.0}),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec(
            "explicit",
            flow_per_pair=6.0,
            kwargs={"pairs": (((0, 0), (4, 4)), ((0, 4), (4, 0)))},
        ),
        algorithms=("ISP", "OPT"),
        opt_time_limit=60.0,
        seed=1,
    )

    # 2. A request round-trips through JSON — this is the wire format.
    wire = json.dumps(request.to_dict())
    print(f"Request on the wire ({len(wire)} bytes):\n  {wire}\n")

    # 3. One service session answers any number of requests; repeated
    #    requests on the same topology reuse cached problem structure.
    service = RecoveryService()
    result = service.solve(request)
    print(
        f"Disruption destroyed {result.broken_elements} elements; "
        f"solved in {result.wall_seconds:.2f}s\n"
    )

    # 4. The result is a versioned envelope: one run per algorithm.
    for run in result.results:
        metrics = run.metrics
        print(f"--- {run.algorithm} ---")
        print(f"  repaired nodes : {int(metrics['node_repairs'])}")
        print(f"  repaired edges : {int(metrics['edge_repairs'])}")
        print(
            f"  total repairs  : {int(metrics['total_repairs'])} "
            f"(of {result.broken_elements} destroyed)"
        )
        print(f"  satisfied      : {metrics['satisfied_pct']:.1f}% of the demand")
        print(f"  solve time     : {metrics['elapsed_seconds']:.3f}s")
        print(f"  LP solves      : {int(run.solver.get('lp_solves', 0))}")
        print(f"  repaired edges : {run.plan['repaired_edges'][:6]} ...")
        print()


if __name__ == "__main__":
    main()
