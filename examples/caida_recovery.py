#!/usr/bin/env python3
"""Large-topology recovery (the paper's Scenario 3, CAIDA AS28717).

Runs ISP and SRT on the CAIDA-like router-level topology after a complete
destruction and reports repairs, demand satisfaction and running time — all
through one :class:`RecoveryRequest`, whose ``algorithm_kwargs`` field binds
ISP's fast bottleneck split mode.  The full-size topology (825 nodes / 1018
edges) takes a few minutes with the exact split LP; by default the example
runs a scaled-down instance so it finishes quickly.

Run it with::

    python examples/caida_recovery.py            # scaled-down, fast
    python examples/caida_recovery.py --full     # 825 nodes / 1018 edges
"""

from __future__ import annotations

import sys

from repro import (
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    RecoveryService,
    TopologySpec,
)
from repro.evaluation.reporting import format_table


def main(full_size: bool = False) -> None:
    if full_size:
        num_nodes, num_edges = 825, 1018
    else:
        num_nodes, num_edges = 200, 246  # same |E|/|V| ratio as AS28717

    request = RecoveryRequest(
        topology=TopologySpec(
            "caida-like", kwargs={"num_nodes": num_nodes, "num_edges": num_edges, "seed": 2016}
        ),
        disruption=DisruptionSpec("complete"),
        demand=DemandSpec("routable-far-apart", num_pairs=4, flow_per_pair=22.0),
        algorithms=("ISP", "SRT"),
        algorithm_kwargs={"ISP": {"split_amount_mode": "bottleneck"}},
        seed=7,
    )

    service = RecoveryService()
    supply, demand, _ = service.build_instance(request)
    stats = supply.stats()
    print(
        f"CAIDA-like topology: {stats['nodes']} routers, {stats['edges']} links, "
        f"max degree {stats['max_degree']}, mean degree {stats['mean_degree']:.2f}\n"
    )
    print("Mission-critical flows (22 units each):")
    for pair in demand.pairs():
        print(f"  router {pair.source} <-> router {pair.target}")
    print()

    result = service.solve(request)
    print(
        format_table(
            result.rows(),
            columns=["algorithm", "total_repairs", "satisfied_pct", "elapsed_seconds"],
            title="Large-topology recovery (cf. paper Figure 9)",
        )
    )

    isp = result.run("ISP")
    print(
        f"ISP repaired {int(isp.metrics['total_repairs'])} of "
        f"{result.broken_elements} destroyed elements "
        f"({100.0 * isp.metrics['total_repairs'] / result.broken_elements:.1f}%) "
        f"with {isp.metrics['satisfied_pct']:.0f}% of the demand satisfied."
    )


if __name__ == "__main__":
    main(full_size="--full" in sys.argv)
