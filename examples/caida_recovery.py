#!/usr/bin/env python3
"""Large-topology recovery (the paper's Scenario 3, CAIDA AS28717).

Runs ISP and SRT on the CAIDA-like router-level topology after a complete
destruction and reports repairs, demand satisfaction and running time.  The
full-size topology (825 nodes / 1018 edges) takes a few minutes with the
exact split LP; by default the example runs a scaled-down instance and the
fast bottleneck split mode so it finishes quickly.

Run it with::

    python examples/caida_recovery.py            # scaled-down, fast
    python examples/caida_recovery.py --full     # 825 nodes / 1018 edges
"""

from __future__ import annotations

import sys

from repro import (
    CompleteDestruction,
    ISPConfig,
    caida_like,
    evaluate_plan,
    get_algorithm,
    routable_far_apart_demand,
)
from repro.evaluation.reporting import format_table


def main(full_size: bool = False) -> None:
    if full_size:
        num_nodes, num_edges = 825, 1018
    else:
        num_nodes, num_edges = 200, 246  # same |E|/|V| ratio as AS28717

    supply = caida_like(num_nodes=num_nodes, num_edges=num_edges, seed=2016)
    stats = supply.stats()
    print(
        f"CAIDA-like topology: {stats['nodes']} routers, {stats['edges']} links, "
        f"max degree {stats['max_degree']}, mean degree {stats['mean_degree']:.2f}\n"
    )

    CompleteDestruction().apply(supply)
    demand = routable_far_apart_demand(supply, num_pairs=4, flow_per_pair=22.0, seed=7)
    print("Mission-critical flows (22 units each):")
    for pair in demand.pairs():
        print(f"  router {pair.source} <-> router {pair.target}")
    print()

    rows = []
    plans = {}
    for name in ("ISP", "SRT"):
        if name == "ISP":
            algorithm = get_algorithm("ISP", config=ISPConfig(split_amount_mode="bottleneck"))
        else:
            algorithm = get_algorithm(name)
        plan = algorithm.solve(supply, demand)
        plans[name] = plan
        evaluation = evaluate_plan(supply, demand, plan)
        rows.append(evaluation.as_row())

    print(
        format_table(
            rows,
            columns=["algorithm", "total_repairs", "satisfied_pct", "elapsed_seconds"],
            title="Large-topology recovery (cf. paper Figure 9)",
        )
    )

    isp = plans["ISP"]
    print(
        f"ISP repaired {isp.total_repairs} of "
        f"{num_nodes + num_edges} destroyed elements "
        f"({100.0 * isp.total_repairs / (num_nodes + num_edges):.1f}%) with no demand loss."
    )


if __name__ == "__main__":
    main(full_size="--full" in sys.argv)
