"""OPT: the exact optimum of the MinR MILP.

Thin wrapper around :func:`repro.flows.milp.solve_minimum_recovery` that
adapts the raw MILP solution to the common :class:`RecoveryPlan` interface
used by the evaluation harness.
"""

from __future__ import annotations

from typing import Optional

from repro.flows.milp import minr_solution_to_plan, solve_minimum_recovery
from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph


def optimal_recovery(
    supply: SupplyGraph,
    demand: DemandGraph,
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 0.0,
) -> RecoveryPlan:
    """Solve MinR exactly (or to the given gap / time limit) and return the plan.

    When a ``time_limit`` is given and the solver stops with a feasible
    incumbent, the plan is returned with ``metadata["status"] == "feasible"``
    and the achieved MIP gap; an infeasible model yields an empty plan with
    ``metadata["status"] == "infeasible"``.
    """
    solution = solve_minimum_recovery(
        supply, demand, time_limit=time_limit, mip_rel_gap=mip_rel_gap
    )
    return minr_solution_to_plan(solution, algorithm="OPT")
