"""OPT: the exact optimum of the MinR MILP.

Thin wrapper around :func:`repro.flows.milp.solve_minimum_recovery` that
adapts the raw MILP solution to the common :class:`RecoveryPlan` interface
used by the evaluation harness, and that wires heuristic incumbents into
the solve: callers (the API service, the portfolio racer) pass the plans
they already computed via ``seed_plans``; when none are supplied and the
strategy allows decomposition, a quick SRT run self-seeds the solve so the
bound certificate can prove the optimum without any MILP.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.flows.milp import (
    minr_solution_to_plan,
    resolve_opt_strategy,
    solve_minimum_recovery,
)
from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph


def optimal_recovery(
    supply: SupplyGraph,
    demand: DemandGraph,
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 0.0,
    strategy: Optional[str] = None,
    seed_plans: Optional[Sequence[RecoveryPlan]] = None,
) -> RecoveryPlan:
    """Solve MinR exactly (or to the given gap / time limit) and return the plan.

    When a ``time_limit`` is given and the solver stops with a feasible
    incumbent, the plan is returned with ``metadata["status"] == "feasible"``
    and the achieved MIP gap; an infeasible model yields an empty plan with
    ``metadata["status"] == "infeasible"``.  ``metadata["bound"]`` carries
    the proven dual bound either way.

    ``seed_plans`` are candidate incumbents (e.g. the ISP/SRT plans of the
    same request); seeding never changes the optimal objective — only how
    fast it is reached and proven.
    """
    chosen = resolve_opt_strategy(strategy)
    seeds = list(seed_plans) if seed_plans else []
    if not seeds and chosen in ("decomposed", "auto"):
        # Self-seed with SRT: near-instant, and its plan frequently matches
        # the strengthened relaxation bound, closing the solve with one LP.
        from repro.heuristics.srt import shortest_path_repair

        seeds = [shortest_path_repair(supply, demand)]
    solution = solve_minimum_recovery(
        supply,
        demand,
        time_limit=time_limit,
        mip_rel_gap=mip_rel_gap,
        strategy=chosen,
        seed_plans=seeds,
    )
    return minr_solution_to_plan(solution, algorithm="OPT")
