"""Knapsack-style greedy heuristics GRD-COM and GRD-NC (Section VI-C).

Both heuristics view every candidate path between a demand pair as a
knapsack object whose *weight* is ``repair cost of the path / path capacity``
and repair paths in ascending order of that weight:

* **GRD-COM** (greedy with commitment) assigns demand to each repaired path
  immediately, updating residual capacities and residual demand, and after
  each repair opportunistically routes any other demand that the repaired
  subgraph can now carry.  The routing commitments can turn out to be wrong,
  so GRD-COM may lose demand.
* **GRD-NC** (greedy, no commitment) makes no routing decisions: after each
  repaired path it re-runs the LP routability test of the full demand on the
  repaired network and stops as soon as the demand becomes routable.  It
  repairs more than GRD-COM but never loses demand (provided the undamaged
  network could route it).

The paper enumerates *all* simple paths between every demand pair offline,
which is exponential; we bound the enumeration to the
``max_paths_per_pair`` shortest simple paths (documented substitution — the
low-weight paths the greedy order favours are found first anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.flows.decomposition import decompose_flows
from repro.flows.routability import routability_test
from repro.flows.solver.stats import collect_solver_stats
from repro.flows.solver.tolerances import EPSILON
from repro.network.demand import DemandGraph
from repro.network.paths import path_broken_elements, path_capacity, path_edges, path_repair_cost
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph, canonical_edge
from repro.utils.timing import Timer

Node = Hashable
Pair = Tuple[Node, Node]
Path = Tuple[Node, ...]

#: Default cap on the number of candidate paths enumerated per demand pair.
MAX_PATHS_PER_PAIR = 60


@dataclass(frozen=True)
class CandidatePath:
    """A knapsack object: a path serving ``pair`` with a repair-cost weight."""

    pair: Pair
    path: Path
    weight: float
    capacity: float
    cost: float


def enumerate_candidate_paths(
    supply: SupplyGraph,
    demand: DemandGraph,
    max_paths_per_pair: int = MAX_PATHS_PER_PAIR,
) -> List[CandidatePath]:
    """Enumerate candidate paths for all demand pairs, sorted by weight.

    The weight of a path is ``cost(p) / capacity(p)`` where ``cost`` is the
    total repair cost of its broken elements (a free working path has weight
    0) and ``capacity`` its bottleneck capacity.
    """
    graph = supply.full_graph(use_residual=False)
    candidates: List[CandidatePath] = []
    for pair in demand.pairs():
        if pair.source not in graph or pair.target not in graph:
            continue
        if not nx.has_path(graph, pair.source, pair.target):
            continue
        generator = nx.shortest_simple_paths(graph, pair.source, pair.target)
        for count, path in enumerate(generator):
            if count >= max_paths_per_pair:
                break
            path = tuple(path)
            capacity = path_capacity(graph, path)
            if capacity <= EPSILON:
                continue
            cost = path_repair_cost(supply, path)
            candidates.append(
                CandidatePath(
                    pair=pair.pair,
                    path=path,
                    weight=cost / capacity,
                    capacity=capacity,
                    cost=cost,
                )
            )
    candidates.sort(key=lambda c: (c.weight, len(c.path), repr(c.path)))
    return candidates


def _repair_path(supply: SupplyGraph, plan: RecoveryPlan, path: Path) -> None:
    """List every broken element of ``path`` for repair."""
    nodes, edges = path_broken_elements(supply, path)
    for node in nodes:
        plan.add_node_repair(node)
    for u, v in edges:
        plan.add_edge_repair(u, v)


def greedy_commitment(
    supply: SupplyGraph,
    demand: DemandGraph,
    max_paths_per_pair: int = MAX_PATHS_PER_PAIR,
) -> RecoveryPlan:
    """Run GRD-COM: greedy path repair with immediate routing commitment."""
    plan = RecoveryPlan(algorithm="GRD-COM")
    with Timer() as timer:
        candidates = enumerate_candidate_paths(supply, demand, max_paths_per_pair)
        residual_demand = demand.copy()
        # Residual capacity per edge, shared by all routing commitments.
        residual_capacity: Dict[Tuple[Node, Node], float] = {
            canonical_edge(u, v): supply.capacity(u, v) for u, v in supply.edges
        }

        def usable(u: Node, v: Node) -> bool:
            """An edge is usable when working or already listed for repair."""
            if supply.is_broken_node(u) and u not in plan.repaired_nodes:
                return False
            if supply.is_broken_node(v) and v not in plan.repaired_nodes:
                return False
            if supply.is_broken_edge(u, v) and canonical_edge(u, v) not in plan.repaired_edges:
                return False
            return True

        def working_residual_graph() -> nx.Graph:
            graph = nx.Graph()
            for node in supply.nodes:
                if not supply.is_broken_node(node) or node in plan.repaired_nodes:
                    graph.add_node(node)
            for u, v in supply.edges:
                if usable(u, v) and u in graph and v in graph:
                    graph.add_edge(u, v, capacity=residual_capacity[canonical_edge(u, v)])
            return graph

        def assign(pair: Pair, path: Path, amount: float) -> None:
            plan.add_route(pair, path, amount)
            residual_demand.reduce(pair[0], pair[1], amount)
            for u, v in path_edges(list(path)):
                residual_capacity[canonical_edge(u, v)] -= amount

        def route_opportunistically() -> None:
            """Route any other demand the repaired subgraph can now carry."""
            graph = working_residual_graph()
            for other in residual_demand.pairs():
                if other.source not in graph or other.target not in graph:
                    continue
                if not nx.has_path(graph, other.source, other.target):
                    continue
                flow_value, flow_dict = nx.maximum_flow(
                    graph, other.source, other.target, capacity="capacity"
                )
                deliverable = min(flow_value, other.demand)
                if deliverable <= EPSILON:
                    continue
                arc_flows: Dict[Tuple[Node, Node], float] = {}
                for u, neighbours in flow_dict.items():
                    for v, value in neighbours.items():
                        if value > EPSILON:
                            arc_flows[(u, v)] = arc_flows.get((u, v), 0.0) + value
                remaining = deliverable
                for path, flow in decompose_flows(arc_flows, other.source, other.target):
                    if remaining <= EPSILON:
                        break
                    used = min(flow, remaining)
                    assign(other.pair, path, used)
                    remaining -= used
                graph = working_residual_graph()

        for candidate in candidates:
            if residual_demand.is_empty:
                break
            source, target = candidate.pair
            pending = residual_demand.demand(source, target)
            if pending <= EPSILON:
                continue
            _repair_path(supply, plan, candidate.path)
            graph = working_residual_graph()
            available = min(
                residual_capacity[canonical_edge(u, v)]
                for u, v in path_edges(list(candidate.path))
            )
            amount = min(pending, available)
            if amount > EPSILON:
                assign(candidate.pair, candidate.path, amount)
            route_opportunistically()

        plan.metadata["unsatisfied_pairs"] = len(residual_demand)
        plan.metadata["candidate_paths"] = len(candidates)
    plan.elapsed_seconds = timer.elapsed
    return plan


def greedy_no_commitment(
    supply: SupplyGraph,
    demand: DemandGraph,
    max_paths_per_pair: int = MAX_PATHS_PER_PAIR,
) -> RecoveryPlan:
    """Run GRD-NC: greedy path repair driven by the routability test."""
    plan = RecoveryPlan(algorithm="GRD-NC")
    # No warm-start context here: every repaired path changes the working
    # graph's topology, so remembered solutions would never be reusable
    # (unlike ISP, whose split/prune iterations keep the topology fixed).
    with Timer() as timer, collect_solver_stats() as solver_stats:
        candidates = enumerate_candidate_paths(supply, demand, max_paths_per_pair)

        def repaired_working_graph() -> nx.Graph:
            return supply.working_graph(
                extra_nodes=plan.repaired_nodes,
                extra_edges=plan.repaired_edges,
                use_residual=False,
            )

        routable = routability_test(repaired_working_graph(), demand).routable
        used_paths = 0
        for candidate in candidates:
            if routable:
                break
            _repair_path(supply, plan, candidate.path)
            used_paths += 1
            routable = routability_test(repaired_working_graph(), demand).routable

        plan.metadata["routable"] = routable
        plan.metadata["paths_repaired"] = used_paths
        plan.metadata["candidate_paths"] = len(candidates)
        plan.metadata["solver"] = solver_stats.as_dict()
    plan.elapsed_seconds = timer.elapsed
    return plan
