"""SRT: the Shortest Path repair heuristic (Section VI-B).

SRT considers the demand pairs in decreasing order of demand and, for each
pair taken *independently of the others*, repairs the broken elements of the
first shortest paths whose combined maximum flow covers the demand.  Because
the pairs are treated independently, the shortest paths of different demands
frequently overlap and the heuristic can end up with insufficient shared
capacity — SRT repairs the fewest elements of all baselines but loses demand
as soon as shortest paths saturate (Figures 4(d), 5(b), 6(b), 9(b)).
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

import networkx as nx

from repro.flows.maxflow import max_flow_over_path_set
from repro.network.demand import DemandGraph
from repro.network.paths import path_broken_elements, path_capacity
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph
from repro.utils.timing import Timer

Node = Hashable
Path = Tuple[Node, ...]

#: Safety cap on the number of shortest paths accumulated per demand pair.
MAX_PATHS_PER_PAIR = 200


def shortest_path_repair(
    supply: SupplyGraph,
    demand: DemandGraph,
    max_paths_per_pair: int = MAX_PATHS_PER_PAIR,
) -> RecoveryPlan:
    """Run the SRT heuristic and return its recovery plan.

    Paths are enumerated in increasing hop count (uniform edge weight, the
    "very intuitive" static metric of the paper) on the complete supply
    graph, because SRT plans repairs rather than routing over what is
    currently working.
    """
    plan = RecoveryPlan(algorithm="SRT")
    with Timer() as timer:
        graph = supply.full_graph(use_residual=False)
        pairs = sorted(demand.pairs(), key=lambda p: (-p.demand, repr(p.pair)))
        for pair in pairs:
            if pair.source not in graph or pair.target not in graph:
                continue
            if not nx.has_path(graph, pair.source, pair.target):
                continue
            selected: List[Path] = []
            generator = nx.shortest_simple_paths(graph, pair.source, pair.target)
            for count, path in enumerate(generator):
                if count >= max_paths_per_pair:
                    break
                selected.append(tuple(path))
                achievable = max_flow_over_path_set(graph, selected, pair.source, pair.target)
                if achievable >= pair.demand:
                    break
            for path in selected:
                nodes, edges = path_broken_elements(supply, path)
                for node in nodes:
                    plan.add_node_repair(node)
                for u, v in edges:
                    plan.add_edge_repair(u, v)
            plan.metadata.setdefault("paths_per_pair", {})[pair.pair] = len(selected)
    plan.elapsed_seconds = timer.elapsed
    return plan
