"""Common interface of recovery algorithms.

Every algorithm — the paper's ISP, the MILP optimum and all baselines — is a
callable taking a :class:`~repro.network.supply.SupplyGraph` (with broken
elements) and a :class:`~repro.network.demand.DemandGraph` and returning a
:class:`~repro.network.plan.RecoveryPlan`.  :class:`RecoveryAlgorithm` wraps
such a callable with a display name and optional fixed keyword arguments so
the evaluation harness can treat all algorithms uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph

Solver = Callable[..., RecoveryPlan]


@dataclass
class RecoveryAlgorithm:
    """A named recovery algorithm with bound keyword arguments.

    Examples
    --------
    >>> from repro.heuristics.all_repair import repair_all
    >>> algorithm = RecoveryAlgorithm(name="ALL", solver=repair_all)
    >>> algorithm.name
    'ALL'
    """

    name: str
    solver: Solver
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def solve(
        self, supply: SupplyGraph, demand: DemandGraph, **extra: Any
    ) -> RecoveryPlan:
        """Run the algorithm and stamp the plan with this algorithm's name.

        ``extra`` keyword arguments are call-scoped and override the bound
        ``kwargs`` for this one solve — the service uses this to hand OPT the
        heuristic plans it already computed (``seed_plans=...``) without
        baking them into the registered algorithm.
        """
        merged = {**self.kwargs, **extra} if extra else self.kwargs
        plan = self.solver(supply, demand, **merged)
        plan.algorithm = self.name
        return plan

    def __call__(
        self, supply: SupplyGraph, demand: DemandGraph, **extra: Any
    ) -> RecoveryPlan:
        return self.solve(supply, demand, **extra)
