"""The trivial ALL baseline: repair every broken element.

The paper plots the line labelled ``ALL`` in every figure as the number of
destroyed elements; it is the most expensive conceivable recovery and serves
as the upper bound against which the savings of the other algorithms are
measured.
"""

from __future__ import annotations

from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph
from repro.utils.timing import Timer


def repair_all(supply: SupplyGraph, demand: DemandGraph) -> RecoveryPlan:
    """Repair every broken node and edge of ``supply``.

    The demand graph is only used to record the (fully) satisfied demand; if
    the demand was routable on the undamaged network it is routable after
    repairing everything.
    """
    plan = RecoveryPlan(algorithm="ALL")
    with Timer() as timer:
        for node in supply.broken_nodes:
            plan.add_node_repair(node)
        for u, v in supply.broken_edges:
            plan.add_edge_repair(u, v)
    plan.elapsed_seconds = timer.elapsed
    return plan
