"""Registry mapping algorithm names to :class:`RecoveryAlgorithm` instances.

The evaluation scenarios refer to algorithms by the names used in the
paper's figures (``"ISP"``, ``"OPT"``, ``"SRT"``, ``"GRD-COM"``, ``"GRD-NC"``,
``"MCB"``, ``"MCW"``, ``"ALL"``); this registry resolves those names and lets
users register their own algorithms for side-by-side comparison.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.isp import ISPConfig, iterative_split_prune
from repro.heuristics.all_repair import repair_all
from repro.heuristics.base import RecoveryAlgorithm
from repro.heuristics.greedy import greedy_commitment, greedy_no_commitment
from repro.heuristics.multicommodity_heuristic import multicommodity_best, multicommodity_worst
from repro.heuristics.optimal import optimal_recovery
from repro.heuristics.srt import shortest_path_repair
from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph


def _isp_solver(supply: SupplyGraph, demand: DemandGraph, **kwargs: Any) -> RecoveryPlan:
    """Adapter turning keyword arguments into an :class:`ISPConfig`."""
    config = kwargs.pop("config", None)
    if config is None and kwargs:
        config = ISPConfig(**kwargs)
        kwargs = {}
    return iterative_split_prune(supply, demand, config=config)


_FACTORIES: Dict[str, Any] = {
    "ISP": _isp_solver,
    "OPT": optimal_recovery,
    "SRT": shortest_path_repair,
    "GRD-COM": greedy_commitment,
    "GRD-NC": greedy_no_commitment,
    "MCB": multicommodity_best,
    "MCW": multicommodity_worst,
    "ALL": repair_all,
}


def available_algorithms() -> List[str]:
    """Names of all registered algorithms, in the order the paper introduces them."""
    return list(_FACTORIES)


def get_algorithm(name: str, **kwargs: Any) -> RecoveryAlgorithm:
    """Return a :class:`RecoveryAlgorithm` for ``name`` with bound ``kwargs``.

    Raises
    ------
    KeyError
        If the name is unknown; the message lists valid names.
    """
    key = name.upper()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        )
    return RecoveryAlgorithm(name=key, solver=_FACTORIES[key], kwargs=dict(kwargs))


def register_algorithm(name: str, solver: Any, overwrite: bool = False) -> None:
    """Register a custom recovery algorithm under ``name``."""
    key = name.upper()
    if key in _FACTORIES and not overwrite:
        raise ValueError(f"algorithm {name!r} is already registered")
    _FACTORIES[key] = solver
