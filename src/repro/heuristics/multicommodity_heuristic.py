"""MCB / MCW: the extremes of the multi-commodity relaxation (Section VI-A).

These are not practical recovery algorithms — the paper uses them (Figure 3)
to show that the polynomial-time relaxation of MinR has an optimal face so
wide that picking an arbitrary optimum can be as expensive as repairing
everything, while picking the best one is NP-hard.  The heavy lifting lives
in :mod:`repro.flows.multicommodity`; these wrappers adapt it to the common
algorithm interface.
"""

from __future__ import annotations

from repro.flows.multicommodity import solve_multicommodity_recovery
from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph


def multicommodity_best(supply: SupplyGraph, demand: DemandGraph) -> RecoveryPlan:
    """MCB: a low-repair optimum of the relaxation (reweighted / sparsified)."""
    return solve_multicommodity_recovery(supply, demand).best


def multicommodity_worst(supply: SupplyGraph, demand: DemandGraph) -> RecoveryPlan:
    """MCW: a high-repair optimum of the relaxation (interior-point solution)."""
    return solve_multicommodity_recovery(supply, demand).worst
