"""Baseline recovery algorithms (Section VI of the paper).

* :mod:`~repro.heuristics.all_repair` — ALL: repair every broken element
  (the trivial upper bound plotted in every figure);
* :mod:`~repro.heuristics.optimal` — OPT: the exact MinR MILP;
* :mod:`~repro.heuristics.srt` — SRT: repair the shortest paths needed by
  each demand, treated independently;
* :mod:`~repro.heuristics.greedy` — GRD-COM and GRD-NC: knapsack-style
  greedy path repair with and without routing commitment;
* :mod:`~repro.heuristics.multicommodity_heuristic` — the MCB / MCW extremes
  of the multi-commodity relaxation;
* :mod:`~repro.heuristics.registry` — a uniform name → algorithm mapping
  used by the evaluation harness.
"""

from repro.heuristics.all_repair import repair_all
from repro.heuristics.base import RecoveryAlgorithm
from repro.heuristics.greedy import greedy_commitment, greedy_no_commitment
from repro.heuristics.multicommodity_heuristic import multicommodity_best, multicommodity_worst
from repro.heuristics.optimal import optimal_recovery
from repro.heuristics.registry import available_algorithms, get_algorithm
from repro.heuristics.srt import shortest_path_repair

__all__ = [
    "RecoveryAlgorithm",
    "repair_all",
    "optimal_recovery",
    "shortest_path_repair",
    "greedy_commitment",
    "greedy_no_commitment",
    "multicommodity_best",
    "multicommodity_worst",
    "available_algorithms",
    "get_algorithm",
]
