"""Firing and applying mid-recovery disruption events.

The decision logic lives here so the episode engine stays a readable loop:
:func:`event_fires` resolves one event's trigger for one epoch (consuming
the event stream's Bernoulli draw whenever the event carries a probability,
*regardless* of the outcome — stream alignment is what makes a campaign
bit-reproducible), and :func:`apply_event` strikes the true network through
the non-mutating :meth:`~repro.failures.base.FailureModel.applied` contract,
returning the replacement supply plus the elements that are *newly* broken.

"Newly" matters: an aftershock samples over every located element and will
happily re-hit something already destroyed; only the delta enters the
ever-broken ledger and the fog stream, so a re-strike on rubble costs the
planner nothing it did not already know.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.network.supply import SupplyGraph
from repro.online.belief import Element
from repro.online.spec import EventSpec


def event_fires(
    event: EventSpec,
    epoch: int,
    rng: np.random.Generator,
    repairs_completed: int,
) -> bool:
    """Whether ``event`` strikes in ``epoch``.

    The probability draw is consumed before any gating so the event stream
    advances identically on every machine and every code path.  A cascade
    is additionally suppressed in epochs without completed repairs: the
    model is load rushing onto freshly restored elements, so with nothing
    restored there is nothing to overload.
    """
    fires = event.scheduled(epoch)
    if event.probability > 0.0:
        draw = float(rng.random())
        fires = fires or draw < event.probability
    if event.kind == "cascade" and repairs_completed == 0:
        return False
    return fires


def apply_event(
    event: EventSpec, supply: SupplyGraph, rng: np.random.Generator
) -> Tuple[SupplyGraph, List[Element], Optional[str]]:
    """Strike ``supply`` with ``event``; return the replacement network.

    Returns ``(new_supply, newly_broken, error)``.  A model that cannot
    operate on this network (e.g. a geographic event on a topology without
    positions) reports its error string instead of raising — one
    misconfigured event should surface in the epoch trace, not kill a
    thousand-episode campaign.
    """
    before_nodes = supply.broken_nodes
    before_edges = supply.broken_edges
    try:
        struck, _ = event.build_model().applied(supply, seed=rng)
    except ValueError as error:
        return supply, [], str(error)
    fresh: List[Element] = [
        ("node", node) for node in struck.broken_nodes - before_nodes
    ]
    fresh += [("edge", edge) for edge in struck.broken_edges - before_edges]
    return struck, sorted(fresh, key=repr), None


__all__ = ["apply_event", "event_fires"]
