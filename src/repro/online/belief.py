"""Fog of war: the planner's belief about the damage, not the damage itself.

Right after a massive disruption nobody holds the full damage map — the
paper's operational setting starts with assessment, and
``repro.extensions.assessment`` computes the situational picture *given* a
damage set.  This module supplies the missing layer underneath: which part
of the true damage the operator actually knows about.

A :class:`BeliefState` tracks the *hidden* subset of the broken elements.
Hidden elements look intact to the planner: :meth:`believed_supply` returns
a copy of the true network with the hidden elements' broken flags cleared,
so the believed broken set is always a subset of the true one — plans
computed against the belief can therefore never violate the
repairs-within-damage invariant on the true network, they can only be
*incomplete* (and route flow through elements that are secretly down, which
is exactly the satisfaction gap the regret metric charges for).

Knowledge sharpens two ways: assessment sweeps reveal a fixed number of
hidden elements per epoch (in canonical element order — survey teams work
through the grid, they do not teleport), and a repair crew standing in
front of an element trivially knows its state, so completed repairs are
always known.  Fresh damage from mid-recovery events enters the belief
through the same biased coin every initial element flipped.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Set, Tuple

import numpy as np

from repro.network.supply import SupplyGraph
from repro.online.spec import FogSpec

#: One damaged element: ``("node", node)`` or ``("edge", (u, v))``.
Element = Tuple[str, Hashable]


def broken_elements(supply: SupplyGraph) -> List[Element]:
    """The broken set of ``supply`` as canonically ordered element keys."""
    keys = [("node", node) for node in supply.broken_nodes]
    keys += [("edge", edge) for edge in supply.broken_edges]
    return sorted(keys, key=repr)


class BeliefState:
    """What the planner knows about the damage, and how that knowledge grows."""

    def __init__(self, supply: SupplyGraph, fog: FogSpec, rng: np.random.Generator) -> None:
        self.fog = fog
        self._rng = rng
        self.hidden: Set[Element] = set()
        self.register_damage(broken_elements(supply))

    # ------------------------------------------------------------------ #
    def register_damage(self, elements: Iterable[Element]) -> int:
        """Flip the fog coin for newly broken ``elements``; return #hidden.

        Elements are processed in canonical order and one uniform draw is
        spent per element regardless of the outcome, so the fog stream stays
        aligned across machines and across fog fractions.
        """
        newly_hidden = 0
        for key in sorted(elements, key=repr):
            if self._rng.random() < self.fog.hidden_fraction:
                self.hidden.add(key)
                newly_hidden += 1
            else:
                self.hidden.discard(key)
        return newly_hidden

    def reveal(self, count: int) -> List[Element]:
        """One assessment sweep: uncover up to ``count`` hidden elements."""
        revealed = sorted(self.hidden, key=repr)[: max(0, int(count))]
        self.hidden.difference_update(revealed)
        return revealed

    def note_repaired(self, elements: Iterable[Element]) -> None:
        """Crews saw these elements up close — they are no longer unknown."""
        self.hidden.difference_update(elements)

    # ------------------------------------------------------------------ #
    def believed_supply(self, supply: SupplyGraph) -> SupplyGraph:
        """The network as the planner sees it: hidden damage looks intact.

        Hidden elements that are no longer broken on the true network (a
        crew or a later reveal cleared them through another path) are
        dropped on the way — the hidden set only ever shrinks relative to
        the true broken set.
        """
        believed = supply.copy()
        stale: Set[Element] = set()
        for key in self.hidden:
            kind, element = key
            if kind == "node":
                if not supply.is_broken_node(element):
                    stale.add(key)
                    continue
                believed.repair_node(element)
            else:
                if not supply.is_broken_edge(*element):
                    stale.add(key)
                    continue
                believed.repair_edge(*element)
        self.hidden -= stale
        return believed


__all__ = ["BeliefState", "Element", "broken_elements"]
