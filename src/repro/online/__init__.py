"""Online recovery: temporal replanning for worlds that change mid-repair.

The snapshot stack answers "given this damage, what is the cheapest
recovery set?".  This package answers the operational question layered on
top of it: what happens when the damage map is wrong, the crews are few,
and the world keeps breaking while you fix it.

Public surface:

- :class:`~repro.online.spec.OnlineScenarioSpec` (with
  :class:`~repro.online.spec.CrewSpec`, :class:`~repro.online.spec.FogSpec`,
  :class:`~repro.online.spec.EventSpec`) — the frozen, digestable episode
  recipe;
- :func:`~repro.online.engine.run_episode` /
  :func:`~repro.online.engine.run_campaign` — the replanning loop and its
  seeded, cached, process-pooled fan-out;
- :class:`~repro.online.crews.CrewSimulator` and
  :class:`~repro.online.belief.BeliefState` — the physical and epistemic
  constraints that make the problem online.
"""

from repro.online.belief import BeliefState, broken_elements
from repro.online.crews import CrewSimulator
from repro.online.engine import (
    REGRET_TOLERANCE,
    Epoch,
    OnlineCampaign,
    Timeline,
    episode_seeds,
    run_campaign,
    run_episode,
)
from repro.online.events import apply_event, event_fires
from repro.online.spec import (
    EVENT_KINDS,
    CrewSpec,
    EventSpec,
    FogSpec,
    OnlineScenarioSpec,
)

__all__ = [
    "EVENT_KINDS",
    "REGRET_TOLERANCE",
    "BeliefState",
    "CrewSimulator",
    "CrewSpec",
    "Epoch",
    "EventSpec",
    "FogSpec",
    "OnlineCampaign",
    "OnlineScenarioSpec",
    "Timeline",
    "apply_event",
    "broken_elements",
    "episode_seeds",
    "event_fires",
    "run_campaign",
    "run_episode",
]
