"""Declarative, serialisable online-recovery scenarios.

An :class:`OnlineScenarioSpec` composes the library's canonical instance
sections (:class:`~repro.api.requests.TopologySpec`,
:class:`~repro.api.requests.DisruptionSpec`,
:class:`~repro.api.requests.DemandSpec`) with the temporal dimensions a
replanning simulation adds on top of the frozen snapshot:

* a clock — how many epochs the campaign runs and how many crew-hours each
  epoch contains;
* a repair workforce (:class:`CrewSpec`) — crews, work hours per element
  kind, travel overhead per dispatch;
* imperfect knowledge (:class:`FogSpec`) — which fraction of the damage is
  initially invisible to the planner and how fast assessment reveals it;
* mid-recovery disruption events (:class:`EventSpec`) — aftershocks,
  repair-triggered cascades and adaptive attacks that strike while crews
  work, each reusing a registered :class:`~repro.failures.base.FailureModel`.

Every spec follows the request-schema conventions: frozen, validated at
construction, hashable, and losslessly round-tripping through JSON via
``to_dict``/``from_dict`` so an online campaign hashes and caches exactly
like a batch request (``digest`` is :func:`~repro.api.requests.config_digest`
of the dictionary form).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.requests import (
    SCHEMA_VERSION,
    DemandSpec,
    DisruptionSpec,
    TopologySpec,
    check_schema,
    config_digest,
    freeze_value,
    jsonify_value,
)
from repro.failures.base import FailureModel
from repro.failures.cascading import CascadingFailure
from repro.failures.geographic import MultiEpicenterDisruption
from repro.failures.targeted import TargetedAttack
from repro.heuristics.registry import available_algorithms

#: Mid-recovery event kinds addressable from a spec.  ``aftershock`` is a
#: geographic re-strike, ``cascade`` a load-redistribution cascade that only
#: triggers in epochs where repairs actually completed (restored elements
#: attract load), ``attack`` an adversary re-targeting the working network —
#: which, mid-recovery, includes everything the crews just rebuilt.
EVENT_KINDS = ("aftershock", "cascade", "attack")

_EVENT_MODELS = {
    "aftershock": MultiEpicenterDisruption,
    "cascade": CascadingFailure,
    "attack": TargetedAttack,
}

#: Defaults merged under the spec kwargs per kind (the spec wins).  The
#: attack event defaults to ``adaptive`` because an online adversary that
#: ignores completed repairs would be indistinguishable from the initial
#: disruption.
_EVENT_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "aftershock": {},
    "cascade": {},
    "attack": {"adaptive": True},
}


def _kwargs_tuple(kwargs: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted((str(k), freeze_value(v)) for k, v in (kwargs or {}).items()))


def _kwargs_json(kwargs: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    return {key: jsonify_value(value) for key, value in kwargs}


@dataclass(frozen=True)
class CrewSpec:
    """The repair workforce: how much can physically happen per epoch.

    ``node_hours``/``edge_hours`` are the working time one crew needs on one
    element of that kind; ``travel_hours`` is paid on every dispatch to an
    element (and again next epoch if the job carried over unfinished), which
    is what makes scattering crews across many half-done repairs worse than
    finishing jobs.
    """

    count: int = 2
    node_hours: float = 4.0
    edge_hours: float = 2.0
    travel_hours: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "count", int(self.count))
        object.__setattr__(self, "node_hours", float(self.node_hours))
        object.__setattr__(self, "edge_hours", float(self.edge_hours))
        object.__setattr__(self, "travel_hours", float(self.travel_hours))
        if self.count < 1:
            raise ValueError("a crew spec needs at least one crew")
        for name in ("node_hours", "edge_hours", "travel_hours"):
            if getattr(self, name) < 0:
                raise ValueError(f"crew {name} must be non-negative")

    def work_hours(self, kind: str) -> float:
        """Hands-on hours one crew needs for one element of ``kind``."""
        return self.node_hours if kind == "node" else self.edge_hours

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "node_hours": self.node_hours,
            "edge_hours": self.edge_hours,
            "travel_hours": self.travel_hours,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CrewSpec":
        return cls(
            count=int(payload.get("count", 2)),
            node_hours=float(payload.get("node_hours", 4.0)),
            edge_hours=float(payload.get("edge_hours", 2.0)),
            travel_hours=float(payload.get("travel_hours", 1.0)),
        )


@dataclass(frozen=True)
class FogSpec:
    """Imperfect damage knowledge that sharpens as assessment proceeds.

    Each broken element is *hidden* from the planner with probability
    ``hidden_fraction`` (drawn once per element from the episode's fog
    stream); assessment sweeps reveal up to ``reveal_per_epoch`` hidden
    elements at the start of every epoch after the first.  ``0.0`` disables
    the fog entirely — the planner sees the true damage.
    """

    hidden_fraction: float = 0.0
    reveal_per_epoch: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "hidden_fraction", float(self.hidden_fraction))
        object.__setattr__(self, "reveal_per_epoch", int(self.reveal_per_epoch))
        if not 0.0 <= self.hidden_fraction <= 1.0:
            raise ValueError("hidden_fraction must be within [0, 1]")
        if self.reveal_per_epoch < 0:
            raise ValueError("reveal_per_epoch must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hidden_fraction": self.hidden_fraction,
            "reveal_per_epoch": self.reveal_per_epoch,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FogSpec":
        return cls(
            hidden_fraction=float(payload.get("hidden_fraction", 0.0)),
            reveal_per_epoch=int(payload.get("reveal_per_epoch", 2)),
        )


@dataclass(frozen=True)
class EventSpec:
    """One recurring mid-recovery disruption event.

    ``kind`` selects the failure model (:data:`EVENT_KINDS`); ``kwargs`` are
    the model's constructor arguments, validated eagerly by building the
    model once at spec construction.  An event fires in an epoch when the
    epoch index is listed in ``at_epochs``, when ``every`` divides the
    (1-based) epoch count, or — independently — with ``probability`` per
    epoch.  A ``cascade`` event additionally requires at least one repair to
    have completed that epoch: cascades here model load rushing back onto
    freshly restored infrastructure.
    """

    kind: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    at_epochs: Tuple[int, ...] = ()
    every: int = 0
    probability: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; available: {', '.join(EVENT_KINDS)}"
            )
        object.__setattr__(self, "kwargs", _kwargs_tuple(dict(self.kwargs)))
        object.__setattr__(
            self, "at_epochs", tuple(sorted(int(epoch) for epoch in self.at_epochs))
        )
        object.__setattr__(self, "every", int(self.every))
        object.__setattr__(self, "probability", float(self.probability))
        if any(epoch < 0 for epoch in self.at_epochs):
            raise ValueError("at_epochs entries must be non-negative epoch indices")
        if self.every < 0:
            raise ValueError("every must be non-negative (0 disables the cadence)")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if not self.at_epochs and not self.every and self.probability == 0.0:
            raise ValueError(
                "an event needs a trigger: at_epochs, every, or probability > 0"
            )
        self._validate_kwargs()
        self.build_model()  # fail at construction, not mid-campaign

    def _validate_kwargs(self) -> None:
        accepted = inspect.signature(_EVENT_MODELS[self.kind].__init__).parameters
        unknown = [key for key, _ in self.kwargs if key not in accepted]
        if unknown:
            valid = [name for name in accepted if name != "self"]
            raise ValueError(
                f"unknown {self.kind} event parameter(s) {', '.join(unknown)}; "
                f"valid: {', '.join(valid)}"
            )

    def build_model(self) -> FailureModel:
        """The failure model this event applies when it fires."""
        merged = dict(_EVENT_DEFAULTS[self.kind])
        merged.update(dict(self.kwargs))
        try:
            return _EVENT_MODELS[self.kind](**merged)
        except TypeError as error:
            raise ValueError(f"invalid {self.kind} event parameters: {error}") from None

    def scheduled(self, epoch: int) -> bool:
        """Whether the deterministic triggers fire at ``epoch``."""
        if epoch in self.at_epochs:
            return True
        return self.every > 0 and (epoch + 1) % self.every == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "kwargs": _kwargs_json(self.kwargs),
            "at_epochs": list(self.at_epochs),
            "every": self.every,
            "probability": self.probability,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EventSpec":
        return cls(
            kind=str(payload["kind"]),
            kwargs=dict(payload.get("kwargs", {})),
            at_epochs=tuple(payload.get("at_epochs", ())),
            every=int(payload.get("every", 0)),
            probability=float(payload.get("probability", 0.0)),
        )


@dataclass(frozen=True)
class OnlineScenarioSpec:
    """One seeded online-recovery episode family, as pure data.

    The instance sections describe the *initial* world exactly like a
    :class:`~repro.api.requests.RecoveryRequest` does (same seeding, same
    construction path); everything else describes how that world evolves
    while ``algorithm`` replans against it.  ``baseline_algorithm`` solves
    the clairvoyant instance (every element that was ever broken, full
    knowledge) for the regret comparison — OPT by default, so the baseline
    is a proven optimum whenever the MILP closes.
    """

    topology: TopologySpec
    disruption: DisruptionSpec = DisruptionSpec()
    demand: DemandSpec = DemandSpec()
    algorithm: str = "ISP"
    seed: int = 1
    epochs: int = 4
    epoch_hours: float = 8.0
    crews: CrewSpec = CrewSpec()
    fog: FogSpec = FogSpec()
    events: Tuple[EventSpec, ...] = ()
    baseline_algorithm: str = "OPT"
    opt_time_limit: Optional[float] = None

    kind = "online-scenario"

    def __post_init__(self) -> None:
        known = set(available_algorithms())
        for attribute in ("algorithm", "baseline_algorithm"):
            name = str(getattr(self, attribute)).upper()
            if name not in known:
                raise KeyError(
                    f"unknown algorithm {name!r}; available: {', '.join(sorted(known))}"
                )
            object.__setattr__(self, attribute, name)
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "epochs", int(self.epochs))
        object.__setattr__(self, "epoch_hours", float(self.epoch_hours))
        if self.epochs < 1:
            raise ValueError("an online scenario needs at least one epoch")
        if self.epoch_hours <= 0:
            raise ValueError("epoch_hours must be positive")
        if self.epoch_hours <= self.crews.travel_hours:
            raise ValueError(
                "epoch_hours must exceed the crews' travel_hours, or no repair "
                "could ever complete"
            )
        events = tuple(
            event if isinstance(event, EventSpec) else EventSpec.from_dict(event)
            for event in self.events
        )
        object.__setattr__(self, "events", events)
        if self.opt_time_limit is not None:
            object.__setattr__(self, "opt_time_limit", float(self.opt_time_limit))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "topology": self.topology.to_dict(),
            "disruption": self.disruption.to_dict(),
            "demand": self.demand.to_dict(),
            "algorithm": self.algorithm,
            "seed": self.seed,
            "epochs": self.epochs,
            "epoch_hours": self.epoch_hours,
            "crews": self.crews.to_dict(),
            "fog": self.fog.to_dict(),
            "events": [event.to_dict() for event in self.events],
            "baseline_algorithm": self.baseline_algorithm,
            "solver": {"opt_time_limit": self.opt_time_limit},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "OnlineScenarioSpec":
        check_schema(payload, cls.kind)
        solver = payload.get("solver", {})
        time_limit = solver.get("opt_time_limit")
        return cls(
            topology=TopologySpec.from_dict(payload["topology"]),
            disruption=DisruptionSpec.from_dict(payload.get("disruption", {})),
            demand=DemandSpec.from_dict(payload.get("demand", {})),
            algorithm=str(payload.get("algorithm", "ISP")),
            seed=int(payload.get("seed", 1)),
            epochs=int(payload.get("epochs", 4)),
            epoch_hours=float(payload.get("epoch_hours", 8.0)),
            crews=CrewSpec.from_dict(payload.get("crews", {})),
            fog=FogSpec.from_dict(payload.get("fog", {})),
            events=tuple(EventSpec.from_dict(event) for event in payload.get("events", [])),
            baseline_algorithm=str(payload.get("baseline_algorithm", "OPT")),
            opt_time_limit=None if time_limit is None else float(time_limit),
        )

    def digest(self) -> str:
        """Stable identity of this scenario (campaign cache keys build on it)."""
        return config_digest(self.to_dict())


__all__ = [
    "EVENT_KINDS",
    "CrewSpec",
    "EventSpec",
    "FogSpec",
    "OnlineScenarioSpec",
]
