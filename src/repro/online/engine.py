"""The replanning loop: an explicit clock over the frozen-snapshot stack.

:func:`run_episode` drives one seeded episode through a
:class:`Timeline` of epochs.  Each epoch runs the operational cycle the
paper's setting implies but the snapshot solvers cannot express:

1. **observe** — assessment sweeps reveal hidden damage, then the planner's
   believed network (:mod:`repro.online.belief`) is assessed with the same
   machinery as the ``assess`` entry point;
2. **plan** — the configured algorithm solves the *believed* instance from
   scratch (full replanning — the plan may change completely between
   epochs);
3. **execute** — the crew simulator (:mod:`repro.online.crews`) completes
   what physically fits into the epoch; completed repairs land on the
   *true* network and their cost is charged, including repeat repairs of
   re-broken elements;
4. **perturb** — scheduled/random events (:mod:`repro.online.events`)
   strike the true network through the non-mutating ``applied`` contract;
5. **verify** (optional) — the full invariant battery runs on every epoch's
   plan against the believed instance, plus online-specific checks
   (executed repairs must target truly broken elements).

After the last epoch a clairvoyant baseline solves the *final realized
damage* — every element that was ever broken, no fog, no crews — and the
episode's regret is the honest comparison: when the online run ends fully
satisfied, regret is its total executed cost minus the clairvoyant cost
(provably >= 0 against a proven optimum, because the standing repairs are
themselves a feasible solution of the clairvoyant problem); otherwise the
clairvoyant's satisfaction lead, in percentage points.

:func:`run_campaign` fans seeded episodes through a process pool with
digest-keyed on-disk caching, mirroring the batch engine's resumability.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.requests import SCHEMA_VERSION, config_digest, materialise_instance
from repro.api.results import OnlineResult, evaluation_metrics, jsonify_plan, plan_payload
from repro.api.requests import jsonify_value
from repro.engine.tasks import cell_seed_sequence, root_entropy
from repro.evaluation.metrics import evaluate_plan
from repro.extensions.assessment import assess_damage
from repro.flows.demand_satisfaction import max_satisfiable_flow
from repro.flows.solver.incremental import SolverContext
from repro.flows.solver.stats import collect_solver_stats
from repro.flows.solver.tolerances import FLOW_TOLERANCE
from repro.heuristics.registry import get_algorithm
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph
from repro.online.belief import BeliefState, Element
from repro.online.crews import CrewSimulator
from repro.online.events import apply_event, event_fires
from repro.online.spec import OnlineScenarioSpec
from repro.portfolio import is_exact
from repro.utils.jsonio import write_json
from repro.verification import (
    FULL_SATISFACTION,
    Violation,
    check_plan_invariants,
    check_repair_sequence_monotonicity,
    repair_sequence,
)

#: Regret below this magnitude is solver noise, not a violation.
REGRET_TOLERANCE = 1e-6

#: Spawn keys of the episode's auxiliary streams.  The instance stream uses
#: the canonical engine-cell derivation (spawn key ``(0, 0)``); events and
#: fog draw from sibling streams so adding an event never perturbs the
#: initial instance.
_EVENTS_STREAM = 101
_FOG_STREAM = 102

ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class Epoch:
    """One tick of the clock: ``hours`` of crew time starting at ``start_hour``."""

    index: int
    start_hour: float
    hours: float


class Timeline:
    """The episode clock: ``epochs`` epochs of ``epoch_hours`` each."""

    def __init__(self, epochs: int, epoch_hours: float) -> None:
        if epochs < 1:
            raise ValueError("a timeline needs at least one epoch")
        if epoch_hours <= 0:
            raise ValueError("epoch_hours must be positive")
        self.epochs = int(epochs)
        self.epoch_hours = float(epoch_hours)

    def __len__(self) -> int:
        return self.epochs

    def __iter__(self) -> Iterator[Epoch]:
        for index in range(self.epochs):
            yield Epoch(index=index, start_hour=index * self.epoch_hours, hours=self.epoch_hours)


# --------------------------------------------------------------------- #
# One episode
# --------------------------------------------------------------------- #
def _element_lists(steps: Sequence[Element]) -> Dict[str, List[Any]]:
    """JSON-safe node/edge lists of an executed step sequence."""
    return {
        "nodes": [jsonify_value(element) for kind, element in steps if kind == "node"],
        "edges": [jsonify_value(list(element)) for kind, element in steps if kind == "edge"],
    }


def _repair_cost(supply: SupplyGraph, steps: Sequence[Element]) -> float:
    nodes = [element for kind, element in steps if kind == "node"]
    edges = [element for kind, element in steps if kind == "edge"]
    return supply.repair_cost_of(nodes, edges)


def _true_satisfaction(supply: SupplyGraph, demand, context) -> float:
    """The audited satisfiable fraction of the *true* network, right now."""
    working = supply.working_graph(use_residual=False)
    return max_satisfiable_flow(working, demand, context=context).fraction


def _algorithm(name: str, opt_time_limit: Optional[float]):
    if is_exact(name) and opt_time_limit is not None:
        return get_algorithm(name, time_limit=opt_time_limit)
    return get_algorithm(name)


def run_episode(
    spec: OnlineScenarioSpec,
    episode_seed: Optional[int] = None,
    verify: bool = False,
    context: Optional[SolverContext] = None,
) -> OnlineResult:
    """Simulate one online-recovery episode and return its envelope.

    ``episode_seed`` overrides the spec's seed (the campaign runner derives
    one per episode); everything stochastic — the initial instance, every
    event strike, every fog coin — flows from it through independent
    deterministic streams, so the same seed replays the identical episode.
    """
    started = time.perf_counter()
    seed = spec.seed if episode_seed is None else int(episode_seed)
    entropy = root_entropy(seed)
    instance_rng = np.random.default_rng(cell_seed_sequence(entropy, 0, 0))
    events_rng = np.random.default_rng(np.random.SeedSequence(entropy, spawn_key=(_EVENTS_STREAM,)))
    fog_rng = np.random.default_rng(np.random.SeedSequence(entropy, spawn_key=(_FOG_STREAM,)))
    context = context or SolverContext()

    supply, demand, _ = materialise_instance(
        spec.topology, spec.disruption, spec.demand, instance_rng
    )
    ever_broken_nodes = supply.broken_nodes
    ever_broken_edges = supply.broken_edges

    belief = BeliefState(supply, spec.fog, fog_rng)
    crews = CrewSimulator(spec.crews, spec.epoch_hours)
    algorithm = _algorithm(spec.algorithm, spec.opt_time_limit)

    realized_steps: List[Element] = []
    epoch_cuts: List[int] = [0]
    executed_cost = 0.0
    executed_keys: set = set()
    violations: List[Violation] = []
    trace: List[Dict[str, Any]] = []

    for epoch in Timeline(spec.epochs, spec.epoch_hours):
        epoch_violations: List[Violation] = []
        scope = f"epoch-{epoch.index}"

        # -- observe ------------------------------------------------------
        revealed = belief.reveal(spec.fog.reveal_per_epoch) if epoch.index > 0 else []
        believed = belief.believed_supply(supply)
        assessment = assess_damage(believed, demand, context=context)
        believed_broken = len(believed.broken_nodes) + len(believed.broken_edges)

        # -- plan ---------------------------------------------------------
        if believed_broken:
            with collect_solver_stats() as stats:
                plan = algorithm.solve(believed.copy(), demand)
                evaluation = evaluate_plan(believed, demand, plan, context=context)
            solver_stats = stats.as_dict()
        else:
            # Nothing known to repair: planning is a no-op, not a solve.
            plan = RecoveryPlan(algorithm=spec.algorithm)
            evaluation = evaluate_plan(believed, demand, plan, context=context)
            solver_stats = {}

        if verify:
            epoch_violations += check_plan_invariants(
                believed,
                demand,
                plan,
                reported_metrics=evaluation_metrics(evaluation),
                context=context,
            )

        # -- execute ------------------------------------------------------
        completed = crews.execute_epoch(repair_sequence(plan))
        for step in completed:
            kind, element = step
            if kind == "node":
                if not supply.is_broken_node(element):
                    epoch_violations.append(
                        Violation(
                            "executed-within-damage",
                            spec.algorithm,
                            f"crew repaired working node {element!r}",
                        )
                    )
                executed_cost += supply.node_repair_cost(element)
                supply.repair_node(element)
            else:
                if not supply.is_broken_edge(*element):
                    epoch_violations.append(
                        Violation(
                            "executed-within-damage",
                            spec.algorithm,
                            f"crew repaired working edge {element!r}",
                        )
                    )
                executed_cost += supply.edge_repair_cost(*element)
                supply.repair_edge(*element)
            executed_keys.add(step)
        belief.note_repaired(completed)
        realized_steps.extend(completed)
        epoch_cuts.append(len(realized_steps))

        # -- perturb ------------------------------------------------------
        fired: List[Dict[str, Any]] = []
        for event in spec.events:
            if not event_fires(event, epoch.index, events_rng, len(completed)):
                continue
            supply, fresh, error = apply_event(event, supply, events_rng)
            record = {
                "kind": event.kind,
                "new_nodes": sum(1 for kind, _ in fresh if kind == "node"),
                "new_edges": sum(1 for kind, _ in fresh if kind == "edge"),
            }
            if error is not None:
                record["error"] = error
            fired.append(record)
            if fresh:
                ever_broken_nodes |= {element for kind, element in fresh if kind == "node"}
                ever_broken_edges |= {element for kind, element in fresh if kind == "edge"}
                belief.register_damage(fresh)

        # -- record -------------------------------------------------------
        true_satisfied = _true_satisfaction(supply, demand, context)
        violations += [
            Violation(v.invariant, v.algorithm, v.detail, request=scope)
            for v in epoch_violations
        ]
        trace.append(
            {
                "epoch": epoch.index,
                "start_hour": epoch.start_hour,
                "revealed": len(revealed),
                "hidden": len(belief.hidden),
                "believed_broken": believed_broken,
                "assessment": dict(assessment.summary()),
                "plan": jsonify_plan(plan_payload(plan)),
                "planned_repairs": plan.total_repairs,
                "planned_cost": float(evaluation.repair_cost),
                "planned_satisfied_pct": float(evaluation.satisfied_percentage),
                "solver": solver_stats,
                "executed": _element_lists(completed),
                "executed_repairs": len(completed),
                "executed_cost": _repair_cost(supply, completed),
                "carryover": crews.carryover(),
                "events": fired,
                "true_satisfied_pct": 100.0 * true_satisfied,
                "violations": len(epoch_violations),
            }
        )

    final_satisfied = _true_satisfaction(supply, demand, context)

    # -- clairvoyant baseline on the final realized damage ----------------
    clairvoyant = supply.copy()
    for node in ever_broken_nodes:
        clairvoyant.break_node(node)
    for u, v in ever_broken_edges:
        clairvoyant.break_edge(u, v)
    clairvoyant.reset_residuals()

    standing = RecoveryPlan(algorithm="ONLINE")
    for kind, element in sorted(executed_keys, key=repr):
        if kind == "node" and not supply.is_broken_node(element):
            standing.add_node_repair(element)
        elif kind == "edge" and not supply.is_broken_edge(*element):
            standing.add_edge_repair(*element)

    baseline_algorithm = _algorithm(spec.baseline_algorithm, spec.opt_time_limit)
    extra: Dict[str, Any] = {}
    seeded = (
        is_exact(spec.baseline_algorithm)
        and final_satisfied >= FULL_SATISFACTION
        and standing.total_repairs > 0
    )
    if seeded:
        # The realized standing repairs fully satisfy on the clairvoyant
        # instance (its recovered graph IS the final true network), so they
        # are a valid incumbent for the exact baseline.
        extra["seed_plans"] = [standing]
    with collect_solver_stats() as baseline_stats:
        baseline_plan = baseline_algorithm.solve(clairvoyant.copy(), demand, **extra)
        baseline_eval = evaluate_plan(clairvoyant, demand, baseline_plan, context=context)
    baseline_proven = baseline_plan.metadata.get("status") == "optimal"

    if verify:
        violations += [
            Violation(v.invariant, v.algorithm, v.detail, request="final")
            for v in check_repair_sequence_monotonicity(
                clairvoyant,
                demand,
                realized_steps,
                algorithm=spec.algorithm,
                cuts=epoch_cuts,
                context=context,
            )
        ]

    # -- regret -----------------------------------------------------------
    online_pct = 100.0 * final_satisfied
    baseline_pct = float(baseline_eval.satisfied_percentage)
    baseline_cost = float(baseline_eval.repair_cost)
    fully = (
        final_satisfied >= FULL_SATISFACTION
        and baseline_eval.satisfied_fraction >= FULL_SATISFACTION
    )
    cost_regret = executed_cost - baseline_cost if fully else None
    competitive_ratio = (
        executed_cost / baseline_cost if fully and baseline_cost > FLOW_TOLERANCE else None
    )
    regret = cost_regret if fully else baseline_pct - online_pct

    return OnlineResult(
        spec=spec.to_dict(),
        episode_seed=seed,
        epochs=trace,
        baseline={
            "algorithm": spec.baseline_algorithm,
            "status": baseline_plan.metadata.get("status"),
            "proven": baseline_proven,
            "seeded": seeded,
            "repair_cost": baseline_cost,
            "satisfied_pct": baseline_pct,
            "total_repairs": baseline_plan.total_repairs,
            "solver": baseline_stats.as_dict(),
        },
        regret={
            "regret": float(regret),
            "cost_regret": None if cost_regret is None else float(cost_regret),
            "satisfaction_regret_pct": baseline_pct - online_pct,
            "competitive_ratio": None if competitive_ratio is None else float(competitive_ratio),
            "baseline_proven": baseline_proven,
            "online_cost": float(executed_cost),
            "online_satisfied_pct": online_pct,
        },
        final={
            "satisfied_pct": online_pct,
            "executed_cost": float(executed_cost),
            "executed_repairs": len(realized_steps),
            "distinct_repairs": len(executed_keys),
            "standing_repairs": standing.total_repairs,
            "broken_remaining": len(supply.broken_nodes) + len(supply.broken_edges),
            "hidden_remaining": len(belief.hidden),
            "ever_broken_nodes": len(ever_broken_nodes),
            "ever_broken_edges": len(ever_broken_edges),
        },
        violations=[
            {
                "scope": v.request,
                "invariant": v.invariant,
                "algorithm": v.algorithm,
                "detail": v.detail,
            }
            for v in violations
        ],
        verified=bool(verify),
        wall_seconds=time.perf_counter() - started,
    )


# --------------------------------------------------------------------- #
# Campaigns: many seeded episodes through the pool, cached by digest
# --------------------------------------------------------------------- #
@dataclass
class OnlineCampaign:
    """All episodes of one online campaign, plus the aggregate verdict."""

    spec: OnlineScenarioSpec
    episodes: List[OnlineResult] = field(default_factory=list)
    verified: bool = False
    cached_episodes: int = 0
    wall_seconds: float = 0.0

    kind = "online-campaign"

    @property
    def regrets(self) -> List[float]:
        return [float(episode.regret.get("regret", 0.0)) for episode in self.episodes]

    @property
    def total_violations(self) -> int:
        return sum(len(episode.violations) for episode in self.episodes)

    @property
    def ok(self) -> bool:
        """No invariant violations, and no episode beats a *proven* baseline."""
        if self.total_violations:
            return False
        for episode in self.episodes:
            regret = float(episode.regret.get("regret", 0.0))
            if episode.regret.get("baseline_proven") and regret < -REGRET_TOLERANCE:
                return False
        return True

    def rows(self) -> List[Dict[str, object]]:
        """One table row per episode for the CLI report."""
        return [
            {
                "episode": index,
                "seed": episode.episode_seed,
                "satisfied_pct": round(float(episode.final.get("satisfied_pct", 0.0)), 2),
                "online_cost": round(float(episode.final.get("executed_cost", 0.0)), 4),
                "baseline_cost": round(float(episode.baseline.get("repair_cost", 0.0)), 4),
                "regret": round(float(episode.regret.get("regret", 0.0)), 4),
                "violations": len(episode.violations),
            }
            for index, episode in enumerate(self.episodes)
        ]

    def summary(self) -> Dict[str, object]:
        regrets = self.regrets
        return {
            "episodes": len(self.episodes),
            "epochs_per_episode": self.spec.epochs,
            "verified": self.verified,
            "violations": self.total_violations,
            "cached_episodes": self.cached_episodes,
            "mean_regret": sum(regrets) / len(regrets) if regrets else 0.0,
            "max_regret": max(regrets) if regrets else 0.0,
            "min_regret": min(regrets) if regrets else 0.0,
            "proven_baselines": sum(
                1 for episode in self.episodes if episode.regret.get("baseline_proven")
            ),
            "ok": self.ok,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
            "summary": self.summary(),
            "episodes": [episode.to_dict() for episode in self.episodes],
            "wall_seconds": float(self.wall_seconds),
            "ok": self.ok,
        }


def episode_seeds(spec: OnlineScenarioSpec, episodes: int) -> List[int]:
    """The campaign's per-episode seeds, derived from the spec seed.

    Sibling ``SeedSequence`` spawn keys off the spec's root entropy — the
    same derivation discipline as engine cells — so campaigns are stable
    under extension: asking for more episodes never changes earlier ones.
    """
    if episodes < 1:
        raise ValueError("a campaign needs at least one episode")
    entropy = root_entropy(spec.seed)
    return [
        int.from_bytes(
            np.random.SeedSequence(entropy, spawn_key=(index,))
            .generate_state(2, np.uint32)
            .tobytes(),
            "little",
        )
        for index in range(episodes)
    ]


def _episode_cache_key(spec: OnlineScenarioSpec, seed: int, verify: bool) -> str:
    return config_digest(
        {
            "kind": "online-episode",
            "spec": spec.to_dict(),
            "episode_seed": int(seed),
            "verify": bool(verify),
        }
    )


def _episode_payload(args: Tuple[Dict[str, Any], int, bool]) -> Dict[str, Any]:
    """Pool worker: run one episode from pure data, return pure data."""
    spec_dict, seed, verify = args
    spec = OnlineScenarioSpec.from_dict(spec_dict)
    return run_episode(spec, episode_seed=seed, verify=verify).to_dict()


def run_campaign(
    spec: OnlineScenarioSpec,
    episodes: int = 1,
    jobs: int = 1,
    verify: bool = False,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
) -> OnlineCampaign:
    """Run ``episodes`` seeded episodes of ``spec``; return the campaign.

    ``jobs > 1`` fans episodes through a process pool; results are
    identical to the serial path because both build envelopes from the
    worker's JSON payload.  ``cache_dir`` makes the campaign resumable:
    each episode is stored under the digest of (spec, episode seed,
    verify), so an interrupted campaign recomputes only what is missing
    and extending a finished one only computes the new episodes.
    """
    started = time.perf_counter()
    seeds = episode_seeds(spec, episodes)
    cache = Path(cache_dir) if cache_dir is not None else None
    if cache is not None:
        cache.mkdir(parents=True, exist_ok=True)

    payloads: Dict[int, Dict[str, Any]] = {}
    cached = 0
    pending: List[Tuple[int, int]] = []
    for index, seed in enumerate(seeds):
        if cache is not None:
            path = cache / f"{_episode_cache_key(spec, seed, verify)}.json"
            try:
                payloads[index] = json.loads(path.read_text())
                cached += 1
                continue
            except (OSError, ValueError):
                pass
        pending.append((index, seed))

    spec_dict = spec.to_dict()
    arguments = [(spec_dict, seed, verify) for _, seed in pending]
    if len(arguments) > 1 and jobs > 1:
        with ProcessPoolExecutor(max_workers=min(int(jobs), len(arguments))) as pool:
            fresh = list(pool.map(_episode_payload, arguments))
    else:
        fresh = [_episode_payload(argument) for argument in arguments]

    done = 0
    for (index, seed), payload in zip(pending, fresh):
        payloads[index] = payload
        if cache is not None:
            write_json(payload, cache / f"{_episode_cache_key(spec, seed, verify)}.json")
        done += 1
        if progress is not None:
            progress(cached + done, len(seeds))

    return OnlineCampaign(
        spec=spec,
        episodes=[OnlineResult.from_dict(payloads[index]) for index in range(len(seeds))],
        verified=bool(verify),
        cached_episodes=cached,
        wall_seconds=time.perf_counter() - started,
    )


__all__ = [
    "REGRET_TOLERANCE",
    "Epoch",
    "OnlineCampaign",
    "Timeline",
    "episode_seeds",
    "run_campaign",
    "run_episode",
]
