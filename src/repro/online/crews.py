"""Repair crews: the physical throughput limit of an epoch.

The frozen-snapshot algorithms hand back a complete repair plan as if it
could be built instantaneously; in an online campaign only as much of that
plan executes per epoch as the workforce can physically deliver.  The
:class:`CrewSimulator` turns a planned repair sequence into the *completed*
steps of one epoch under a simple, fully deterministic dispatch model:

* every crew has ``epoch_hours`` of working time per epoch;
* a repair costs ``travel_hours`` (paid on every dispatch, including
  re-visits to a job left unfinished last epoch) plus the element kind's
  remaining work hours;
* steps are dispatched in plan order to the crew with the most remaining
  time (ties to the lowest crew index), so crews work the head of the plan
  in parallel;
* a job that does not fit in the dispatched crew's remaining time accrues
  *partial progress* that persists across epochs — and across replans, so a
  half-repaired element the next plan still wants finishes faster.

Nothing here draws randomness: given the same plans, the same steps
complete, which is one of the three legs of the episode-level determinism
guarantee (instance seeding and event streams are the other two).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.online.spec import CrewSpec

#: One planned repair: ``("node", node)`` or ``("edge", (u, v))``.
Step = Tuple[str, Hashable]

#: Remaining-time comparisons ignore float dust below this.
_TIME_EPSILON = 1e-9


class CrewSimulator:
    """Stateful workforce executing plan prefixes epoch by epoch.

    The only state carried between epochs is ``progress`` — hours already
    worked per unfinished element — because crews themselves reset every
    epoch (a new day), while a half-rebuilt tower stays half-rebuilt.
    """

    def __init__(self, spec: CrewSpec, epoch_hours: float) -> None:
        if epoch_hours <= spec.travel_hours:
            raise ValueError("epoch_hours must exceed travel_hours")
        self.spec = spec
        self.epoch_hours = float(epoch_hours)
        self.progress: Dict[Step, float] = {}

    def execute_epoch(self, steps: Sequence[Step]) -> List[Step]:
        """Dispatch ``steps`` (in order) and return the ones that completed.

        Stale progress on elements the current plan no longer wants is kept
        — the plan may want them again after the next disruption — but never
        costs any crew time.
        """
        budgets = [self.epoch_hours] * self.spec.count
        completed: List[Step] = []
        for step in steps:
            crew = max(range(len(budgets)), key=lambda index: (budgets[index], -index))
            available = budgets[crew] - self.spec.travel_hours
            if available <= _TIME_EPSILON:
                break  # the freest crew cannot even reach a site
            kind, _ = step
            remaining = max(0.0, self.spec.work_hours(kind) - self.progress.get(step, 0.0))
            if remaining <= available + _TIME_EPSILON:
                budgets[crew] -= self.spec.travel_hours + remaining
                self.progress.pop(step, None)
                completed.append(step)
            else:
                # The crew works until its day ends; travel is paid again on
                # the next dispatch, only the hands-on hours persist.
                self.progress[step] = self.progress.get(step, 0.0) + available
                budgets[crew] = 0.0
        return completed

    def carryover(self) -> int:
        """How many elements currently hold partial progress."""
        return len(self.progress)


__all__ = ["CrewSimulator", "Step"]
