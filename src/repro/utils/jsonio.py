"""One JSON artefact writer for every ``--json`` producer.

The CLI's envelope printers, the load-generation harness's
``BENCH_server.json`` and the benchmark records all emit machine-readable
JSON; this module is their single writer so the semantics are uniform:

* :func:`write_json` writes atomically — the payload lands in a temp file
  in the target directory and is ``os.replace``-d into place, so a reader
  (or a crash) never observes a half-written artefact;
* :func:`emit_json` is the CLI glue: ``out=None`` prints to stdout
  (the historical ``--json`` behaviour), a path delegates to
  :func:`write_json`.

No ``default=`` fallback is passed to ``json``: a payload carrying a
non-serialisable value (a stray array, a ``Path``) is a bug in the
producer and must raise here, not silently land as a quoted string that
breaks numeric consumers downstream.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Union


def write_json(payload: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Atomically write ``payload`` as JSON to ``path`` (temp + rename)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=indent)
            handle.write("\n")
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def emit_json(payload: Any, out: Optional[Union[str, Path]] = None, indent: int = 2) -> None:
    """Print ``payload`` as JSON, or write it atomically when ``out`` is given."""
    if out is None:
        print(json.dumps(payload, indent=indent))
    else:
        write_json(payload, out, indent=indent)


__all__ = ["emit_json", "write_json"]
