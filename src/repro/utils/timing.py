"""Wall-clock timing helpers used by the evaluation harness.

The paper compares the execution time of ISP against the optimal MILP
solution (Figure 7a).  The :class:`Timer` context manager and the
:func:`timed` decorator give a uniform way to record those durations.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional, Tuple, TypeVar

T = TypeVar("T")


class Timer:
    """Context manager measuring elapsed wall-clock time in seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self._elapsed = time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Elapsed seconds; valid after the ``with`` block exits or while running."""
        if self._start is None:
            raise RuntimeError("Timer was never started")
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed


def timed(func: Callable[..., T]) -> Callable[..., Tuple[T, float]]:
    """Decorate ``func`` so it returns ``(result, elapsed_seconds)``."""

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Tuple[T, float]:
        start = time.perf_counter()
        result = func(*args, **kwargs)
        return result, time.perf_counter() - start

    return wrapper
