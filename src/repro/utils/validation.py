"""Small validation helpers used throughout the library.

The helpers raise ``ValueError`` with a descriptive message so that callers
get actionable errors instead of silently producing nonsense results.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    _check_numeric(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is non-negative and return it."""
    _check_numeric(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    _check_numeric(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def _check_numeric(value: Any, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
