"""Utility helpers shared across the :mod:`repro` package.

The utilities are deliberately small and dependency free: deterministic
random-number handling, input validation helpers and a light-weight timing
context manager used by the evaluation harness.
"""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    require,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "timed",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "require",
]
