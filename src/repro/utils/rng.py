"""Deterministic random number generation helpers.

Every stochastic component of the library (topology generators, failure
models, demand builders, experiment scenarios) accepts either an integer
seed, a :class:`numpy.random.Generator`, or ``None``.  This module provides
the single conversion point so the behaviour is consistent everywhere.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Return a :class:`numpy.random.SeedSequence` for ``seed``.

    The experiment layer derives every per-run / per-task stream from a root
    :class:`~numpy.random.SeedSequence` via ``spawn`` so that streams are
    independent and reproducible across platforms and across serial vs
    parallel execution.  This is the single conversion point from the loose
    ``RandomState`` convention to that root sequence.

    ``None`` yields a fresh sequence with OS entropy; an ``int`` seeds the
    sequence directly; an existing sequence is returned unchanged; a
    :class:`~numpy.random.Generator` contributes the seed sequence of its bit
    generator (falling back to entropy drawn from the generator itself when
    the bit generator does not expose one).
    """
    if seed is None:
        return np.random.SeedSequence()
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(int(seed))
    if isinstance(seed, np.random.Generator):
        seed_seq = getattr(seed.bit_generator, "seed_seq", None)
        if isinstance(seed_seq, np.random.SeedSequence):
            return seed_seq
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    raise TypeError(
        "seed must be None, an int, a numpy Generator or a SeedSequence, "
        f"got {type(seed).__name__}"
    )


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` for a seeded
        generator, or an existing generator which is returned unchanged.

    Raises
    ------
    TypeError
        If ``seed`` is of an unsupported type.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used by experiment scenarios that need one independent stream per run so
    that changing the number of runs does not perturb earlier runs.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError("rng must be a numpy Generator")
    if stream < 0:
        raise ValueError("stream index must be non-negative")
    seed = int(rng.bit_generator.seed_seq.entropy or 0)
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(stream,)))
