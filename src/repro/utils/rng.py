"""Deterministic random number generation helpers.

Every stochastic component of the library (topology generators, failure
models, demand builders, experiment scenarios) accepts either an integer
seed, a :class:`numpy.random.Generator`, or ``None``.  This module provides
the single conversion point so the behaviour is consistent everywhere.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` for a seeded
        generator, or an existing generator which is returned unchanged.

    Raises
    ------
    TypeError
        If ``seed`` is of an unsupported type.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used by experiment scenarios that need one independent stream per run so
    that changing the number of runs does not perturb earlier runs.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError("rng must be a numpy Generator")
    if stream < 0:
        raise ValueError("stream index must be non-negative")
    seed = int(rng.bit_generator.seed_seq.entropy or 0)
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(stream,)))
