"""Network substrate: supply graph, demand graph, paths and recovery plans.

These classes model the exact objects of the MinR problem formulation in
Section III of the paper:

* :class:`~repro.network.supply.SupplyGraph` — the communication network
  ``G = (V, E)`` with edge capacities, per-element repair costs and the sets
  of broken vertices ``V_B`` and edges ``E_B``.
* :class:`~repro.network.demand.DemandGraph` — the demand graph
  ``H = (V_H, E_H)`` listing the mission-critical flows ``d_h``.
* :mod:`~repro.network.paths` — path length / capacity helpers including the
  dynamic path metric of Section IV-D.
* :class:`~repro.network.plan.RecoveryPlan` — the output of every recovery
  algorithm: which elements to repair and how the demand is routed.
"""

from repro.network.demand import DemandGraph, DemandPair, canonical_pair
from repro.network.paths import (
    dynamic_edge_length,
    path_capacity,
    path_edges,
    path_repair_cost,
    shortest_path_cover,
)
from repro.network.plan import RecoveryPlan, RouteAssignment
from repro.network.supply import SupplyGraph, canonical_edge

__all__ = [
    "SupplyGraph",
    "DemandGraph",
    "DemandPair",
    "RecoveryPlan",
    "RouteAssignment",
    "canonical_edge",
    "canonical_pair",
    "path_capacity",
    "path_edges",
    "path_repair_cost",
    "dynamic_edge_length",
    "shortest_path_cover",
]
