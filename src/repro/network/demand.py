"""The demand graph ``H = (V_H, E_H)`` of the MinR problem.

Each demand pair ``(s_h, t_h)`` carries a positive flow requirement ``d_h``
that must be routed through the (recovered) supply network.  The demand graph
supports exactly the operations the ISP algorithm needs:

* *reduce* — remove routed units after a prune (Section IV-F),
* *split* — move units from ``(s_h, t_h)`` onto the two derived pairs
  ``(s_h, v)`` and ``(v, t_h)`` (Section IV-C),
* removal of satisfied pairs and of endpoints that no longer appear in any
  pair.

Demand between the same two endpoints is aggregated: routing-wise, two
pairs with identical endpoints are equivalent to a single pair carrying the
sum of their flows, and aggregation keeps the instance small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.utils.validation import check_positive

Node = Hashable
Pair = Tuple[Node, Node]

#: Demands below this value are considered fully satisfied and removed.
DEMAND_EPSILON = 1e-9


def canonical_pair(u: Node, v: Node) -> Pair:
    """Canonical (order independent) representation of a demand pair."""
    a, b = sorted((u, v), key=repr)
    return (a, b)


@dataclass(frozen=True)
class DemandPair:
    """A single demand: ``demand`` units of flow between ``source`` and ``target``."""

    source: Node
    target: Node
    demand: float

    @property
    def pair(self) -> Pair:
        """Canonical endpoint pair."""
        return canonical_pair(self.source, self.target)

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("a demand pair must connect two distinct nodes")
        if self.demand <= 0:
            raise ValueError(f"demand must be positive, got {self.demand}")


class DemandGraph:
    """Mutable collection of demand pairs with positive flow requirements.

    Examples
    --------
    >>> h = DemandGraph()
    >>> h.add("a", "b", 10.0)
    >>> h.add("b", "a", 5.0)   # aggregated with the previous pair
    >>> h.demand("a", "b")
    15.0
    >>> h.reduce("a", "b", 15.0)
    >>> h.is_empty
    True
    """

    def __init__(self, pairs: Optional[Iterable[DemandPair]] = None) -> None:
        self._demands: Dict[Pair, float] = {}
        if pairs is not None:
            for pair in pairs:
                self.add(pair.source, pair.target, pair.demand)

    # ------------------------------------------------------------------ #
    # Construction and mutation
    # ------------------------------------------------------------------ #
    def add(self, u: Node, v: Node, demand: float) -> None:
        """Add ``demand`` units between ``u`` and ``v`` (aggregating duplicates)."""
        check_positive(demand, "demand")
        if u == v:
            raise ValueError("a demand pair must connect two distinct nodes")
        key = canonical_pair(u, v)
        self._demands[key] = self._demands.get(key, 0.0) + float(demand)

    def reduce(self, u: Node, v: Node, amount: float, tolerance: float = 1e-9) -> None:
        """Remove ``amount`` units of demand between ``u`` and ``v``.

        The pair is deleted once its residual demand drops below
        :data:`DEMAND_EPSILON`.

        Raises
        ------
        KeyError
            If no demand exists between ``u`` and ``v``.
        ValueError
            If ``amount`` exceeds the current demand beyond ``tolerance``.
        """
        check_positive(amount, "amount")
        key = canonical_pair(u, v)
        if key not in self._demands:
            raise KeyError(f"no demand between {u!r} and {v!r}")
        current = self._demands[key]
        if amount > current + tolerance:
            raise ValueError(
                f"cannot remove {amount} units from pair {key}: only {current} requested"
            )
        remaining = current - amount
        if remaining <= DEMAND_EPSILON:
            del self._demands[key]
        else:
            self._demands[key] = remaining

    def remove_pair(self, u: Node, v: Node) -> None:
        """Drop the pair ``(u, v)`` entirely, regardless of residual demand."""
        self._demands.pop(canonical_pair(u, v), None)

    def split(self, u: Node, v: Node, via: Node, amount: float) -> None:
        """Split ``amount`` units of the demand ``(u, v)`` through node ``via``.

        Implements the split action of Section IV-C: ``amount`` units are
        removed from ``(u, v)`` and re-added as two new demands ``(u, via)``
        and ``(via, v)``.  ``via`` must differ from both endpoints.
        """
        if via in (u, v):
            raise ValueError("the split node must differ from the demand endpoints")
        self.reduce(u, v, amount)
        self.add(u, via, amount)
        self.add(via, v, amount)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def demand(self, u: Node, v: Node) -> float:
        """Current demand between ``u`` and ``v`` (0 when no pair exists)."""
        return self._demands.get(canonical_pair(u, v), 0.0)

    def has_pair(self, u: Node, v: Node) -> bool:
        return canonical_pair(u, v) in self._demands

    def pairs(self) -> List[DemandPair]:
        """All demand pairs as immutable :class:`DemandPair` objects."""
        return [
            DemandPair(source=u, target=v, demand=d) for (u, v), d in self._demands.items()
        ]

    @property
    def endpoints(self) -> Set[Node]:
        """The set ``V_H`` of nodes that appear in at least one demand pair."""
        nodes: Set[Node] = set()
        for u, v in self._demands:
            nodes.add(u)
            nodes.add(v)
        return nodes

    @property
    def total_demand(self) -> float:
        """Sum of all residual demand flows."""
        return sum(self._demands.values())

    @property
    def is_empty(self) -> bool:
        return not self._demands

    def __len__(self) -> int:
        return len(self._demands)

    def __iter__(self) -> Iterator[DemandPair]:
        return iter(self.pairs())

    def __contains__(self, pair: Pair) -> bool:
        return canonical_pair(*pair) in self._demands

    def copy(self) -> "DemandGraph":
        clone = DemandGraph()
        clone._demands = dict(self._demands)
        return clone

    def as_dict(self) -> Dict[Pair, float]:
        """Snapshot of the demand as ``{canonical pair: demand}``."""
        return dict(self._demands)

    def validate_against(self, supply_nodes: Iterable[Node]) -> None:
        """Raise ``ValueError`` if any endpoint is missing from the supply graph."""
        known = set(supply_nodes)
        missing = self.endpoints - known
        if missing:
            raise ValueError(
                f"demand endpoints not present in the supply graph: {sorted(missing, key=repr)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DemandGraph(pairs={len(self._demands)}, total={self.total_demand:.3f})"
