"""Recovery plans: the common output format of every recovery algorithm.

Every algorithm in this library (ISP, the MILP optimum, SRT, the greedy
heuristics, the multi-commodity relaxation, ALL) returns a
:class:`RecoveryPlan` holding

* the set of nodes and edges selected for repair,
* the routing of demand flows over the recovered network (when the
  algorithm produces one), and
* bookkeeping such as the algorithm name, wall-clock time and iteration
  counters.

Having a single result type lets the evaluation harness compute the paper's
metrics (number of edge/node/total repairs, repair cost, percentage of
satisfied demand) uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.network.demand import DemandGraph, canonical_pair
from repro.network.supply import SupplyGraph, canonical_edge

Node = Hashable
Edge = Tuple[Node, Node]
Pair = Tuple[Node, Node]
Path = Tuple[Node, ...]


@dataclass(frozen=True)
class RouteAssignment:
    """A routed portion of a demand: ``flow`` units on ``path`` for ``pair``."""

    pair: Pair
    path: Path
    flow: float

    def __post_init__(self) -> None:
        if self.flow <= 0:
            raise ValueError("a route assignment must carry positive flow")
        if len(self.path) < 2:
            raise ValueError("a route must contain at least one edge")


@dataclass
class RecoveryPlan:
    """Result of a recovery algorithm.

    Attributes
    ----------
    algorithm:
        Human-readable identifier (``"ISP"``, ``"OPT"``, ``"SRT"`` ...).
    repaired_nodes, repaired_edges:
        Elements selected for repair.  Edges are stored in canonical form.
    routes:
        Flow-on-path assignments for each demand pair, when the algorithm
        produces an explicit routing (ISP, SRT, GRD-COM do; GRD-NC and the
        routability check produce none).
    satisfied_demand:
        Demand units actually routed per pair; filled by the algorithm or by
        the evaluation harness when checking feasibility.
    elapsed_seconds:
        Wall-clock execution time.
    iterations:
        Number of main-loop iterations (ISP) or equivalent work counter.
    metadata:
        Free-form extra information (e.g. MILP gap, solver status).
    """

    algorithm: str
    repaired_nodes: set = field(default_factory=set)
    repaired_edges: set = field(default_factory=set)
    routes: List[RouteAssignment] = field(default_factory=list)
    satisfied_demand: Dict[Pair, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    iterations: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Mutation helpers used by the algorithms
    # ------------------------------------------------------------------ #
    def add_node_repair(self, node: Node) -> None:
        self.repaired_nodes.add(node)

    def add_edge_repair(self, u: Node, v: Node) -> None:
        self.repaired_edges.add(canonical_edge(u, v))

    def add_route(self, pair: Pair, path: Path, flow: float) -> None:
        """Record that ``flow`` units of ``pair`` travel along ``path``."""
        key = canonical_pair(*pair)
        self.routes.append(RouteAssignment(pair=key, path=tuple(path), flow=flow))
        self.satisfied_demand[key] = self.satisfied_demand.get(key, 0.0) + flow

    def record_satisfied(self, pair: Pair, flow: float) -> None:
        """Record satisfied demand without an explicit path (e.g. LP routing)."""
        key = canonical_pair(*pair)
        self.satisfied_demand[key] = self.satisfied_demand.get(key, 0.0) + flow

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    @property
    def num_node_repairs(self) -> int:
        return len(self.repaired_nodes)

    @property
    def num_edge_repairs(self) -> int:
        return len(self.repaired_edges)

    @property
    def total_repairs(self) -> int:
        """Total number of repaired elements (the paper's main cost metric)."""
        return self.num_node_repairs + self.num_edge_repairs

    def repair_cost(self, supply: SupplyGraph) -> float:
        """Monetary repair cost of the plan under ``supply``'s cost model."""
        return supply.repair_cost_of(self.repaired_nodes, self.repaired_edges)

    def total_satisfied(self) -> float:
        """Total demand units the plan claims to satisfy."""
        return sum(self.satisfied_demand.values())

    def satisfied_fraction(self, demand: DemandGraph) -> float:
        """Fraction (0–1) of the original demand satisfied by the plan.

        Per-pair satisfaction is capped at the requested demand so that an
        over-reporting algorithm cannot exceed 100%.
        """
        total = demand.total_demand
        if total <= 0:
            return 1.0
        satisfied = 0.0
        for pair in demand.pairs():
            routed = self.satisfied_demand.get(pair.pair, 0.0)
            satisfied += min(routed, pair.demand)
        return satisfied / total

    def demand_loss(self, demand: DemandGraph) -> float:
        """Fraction (0–1) of the original demand the plan fails to satisfy."""
        return 1.0 - self.satisfied_fraction(demand)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def routed_load(self) -> Dict[Edge, float]:
        """Aggregate flow per supply edge implied by the explicit routes."""
        load: Dict[Edge, float] = {}
        for route in self.routes:
            for i in range(len(route.path) - 1):
                key = canonical_edge(route.path[i], route.path[i + 1])
                load[key] = load.get(key, 0.0) + route.flow
        return load

    def validate_routing(
        self,
        supply: SupplyGraph,
        demand: DemandGraph,
        tolerance: float = 1e-6,
    ) -> List[str]:
        """Check the explicit routing against capacities, failures and demand.

        Returns a list of human-readable violation descriptions (empty when
        the routing is feasible).  Checks performed:

        * every routed path uses only working or repaired elements,
        * aggregate flow per edge does not exceed its nominal capacity,
        * no pair receives more flow than it requested.
        """
        problems: List[str] = []
        for route in self.routes:
            for node in route.path:
                if supply.is_broken_node(node) and node not in self.repaired_nodes:
                    problems.append(
                        f"route for {route.pair} traverses broken node {node!r} "
                        "that is not scheduled for repair"
                    )
            for i in range(len(route.path) - 1):
                u, v = route.path[i], route.path[i + 1]
                if not supply.has_edge(u, v):
                    problems.append(f"route for {route.pair} uses non-existent edge ({u!r}, {v!r})")
                    continue
                if supply.is_broken_edge(u, v) and canonical_edge(u, v) not in self.repaired_edges:
                    problems.append(
                        f"route for {route.pair} traverses broken edge ({u!r}, {v!r}) "
                        "that is not scheduled for repair"
                    )

        for (u, v), flow in self.routed_load().items():
            if supply.has_edge(u, v) and flow > supply.capacity(u, v) + tolerance:
                problems.append(
                    f"edge ({u!r}, {v!r}) carries {flow:.4f} units "
                    f"but has capacity {supply.capacity(u, v):.4f}"
                )

        for pair in demand.pairs():
            routed = self.satisfied_demand.get(pair.pair, 0.0)
            if routed > pair.demand + tolerance:
                problems.append(
                    f"pair {pair.pair} receives {routed:.4f} units "
                    f"but requested only {pair.demand:.4f}"
                )
        return problems

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by reports and benchmarks."""
        return {
            "algorithm": self.algorithm,
            "node_repairs": self.num_node_repairs,
            "edge_repairs": self.num_edge_repairs,
            "total_repairs": self.total_repairs,
            "satisfied_units": round(self.total_satisfied(), 6),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "iterations": self.iterations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RecoveryPlan({self.algorithm!r}, nodes={self.num_node_repairs}, "
            f"edges={self.num_edge_repairs}, routes={len(self.routes)})"
        )
