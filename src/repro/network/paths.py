"""Path utilities: capacities, repair costs and the dynamic path metric.

Section IV of the paper repeatedly reasons about *paths* in the supply graph:

* the **capacity of a path** ``c(p)`` is the minimum capacity of its edges;
* the **length of a path** is the sum of its edge lengths, where the edge
  length is either a static metric or the *dynamic metric* of Section IV-D
  (proportional to the repair cost of still-broken elements and inversely
  proportional to the capacity);
* the set ``P*(i, j)`` of the *first shortest paths necessary to route the
  demand* ``d_ij`` is computed with the iterative-Dijkstra procedure of
  Section IV-B (find shortest path, subtract its capacity, repeat until the
  accumulated capacity covers the demand).

These helpers operate on plain :class:`networkx.Graph` objects whose edges
carry a ``capacity`` attribute, so they can be applied both to the full
supply graph (for centrality) and to the working graph (for pruning).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.network.supply import SupplyGraph, canonical_edge

Node = Hashable
Path = Tuple[Node, ...]

#: Constant term of the dynamic edge length (accounts for working links).
DEFAULT_LENGTH_CONSTANT = 1.0
#: Capacities below this threshold are treated as saturated edges.
CAPACITY_EPSILON = 1e-9


def path_edges(path: Sequence[Node]) -> List[Tuple[Node, Node]]:
    """Return the list of consecutive edges of a node path."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def path_capacity(graph: nx.Graph, path: Sequence[Node]) -> float:
    """Capacity ``c(p)``: the minimum edge capacity along ``path``.

    A single-node path (source equals target) has infinite capacity because
    it needs no edges at all.
    """
    if len(path) < 2:
        return float("inf")
    return min(graph.edges[u, v]["capacity"] for u, v in path_edges(path))


def path_repair_cost(supply: SupplyGraph, path: Sequence[Node]) -> float:
    """Cost of repairing every broken element along ``path``.

    Counts each broken node and edge once, which matches the cost the MinR
    objective would pay to make the path usable.
    """
    cost = 0.0
    for node in set(path):
        if supply.is_broken_node(node):
            cost += supply.node_repair_cost(node)
    for u, v in set(canonical_edge(u, v) for u, v in path_edges(path)):
        if supply.is_broken_edge(u, v):
            cost += supply.edge_repair_cost(u, v)
    return cost


def path_broken_elements(
    supply: SupplyGraph, path: Sequence[Node]
) -> Tuple[List[Node], List[Tuple[Node, Node]]]:
    """Return the broken nodes and edges that ``path`` traverses."""
    nodes = [n for n in dict.fromkeys(path) if supply.is_broken_node(n)]
    edges = []
    for u, v in dict.fromkeys(canonical_edge(a, b) for a, b in path_edges(path)):
        if supply.is_broken_edge(u, v):
            edges.append((u, v))
    return nodes, edges


def dynamic_edge_length(
    supply: SupplyGraph,
    u: Node,
    v: Node,
    repaired_nodes: Optional[Iterable[Node]] = None,
    repaired_edges: Optional[Iterable[Tuple[Node, Node]]] = None,
    const: float = DEFAULT_LENGTH_CONSTANT,
) -> float:
    """Dynamic length of the edge ``(u, v)`` (Section IV-D).

    ``l(e_ij) = [const + k^e_ij + (k^v_i + k^v_j) / 2] / c_ij`` where the
    repair-cost terms only contribute while the corresponding element is
    broken *and not yet listed for repair*.  Once ISP has decided to repair
    an element, traversing it becomes cheap, which concentrates subsequent
    routing decisions on already-repaired components.
    """
    repaired_nodes = set(repaired_nodes or ())
    repaired_edges = {canonical_edge(*e) for e in (repaired_edges or ())}
    capacity = supply.capacity(u, v)

    edge_cost = 0.0
    if supply.is_broken_edge(u, v) and canonical_edge(u, v) not in repaired_edges:
        edge_cost = supply.edge_repair_cost(u, v)

    node_cost = 0.0
    for endpoint in (u, v):
        if supply.is_broken_node(endpoint) and endpoint not in repaired_nodes:
            node_cost += supply.node_repair_cost(endpoint)

    return (const + edge_cost + node_cost / 2.0) / capacity


def attach_dynamic_lengths(
    supply: SupplyGraph,
    graph: nx.Graph,
    repaired_nodes: Optional[Iterable[Node]] = None,
    repaired_edges: Optional[Iterable[Tuple[Node, Node]]] = None,
    const: float = DEFAULT_LENGTH_CONSTANT,
    attribute: str = "length",
) -> nx.Graph:
    """Annotate every edge of ``graph`` with its dynamic length.

    ``graph`` must be a (sub)graph of ``supply`` — typically the full graph
    returned by :meth:`SupplyGraph.full_graph`.  The graph is modified in
    place and also returned for convenience.
    """
    for u, v in graph.edges:
        graph.edges[u, v][attribute] = dynamic_edge_length(
            supply, u, v, repaired_nodes, repaired_edges, const=const
        )
    return graph


def shortest_path_cover(
    graph: nx.Graph,
    source: Node,
    target: Node,
    demand: float,
    weight: str = "length",
    max_paths: Optional[int] = None,
) -> List[Tuple[Path, float]]:
    """Iteratively collect the shortest paths needed to cover ``demand``.

    This is the runtime estimate of ``P*(i, j)`` described in Section IV-B:
    starting from the residual graph, repeatedly run Dijkstra, record the
    shortest path together with its bottleneck capacity, subtract that
    capacity from the path's edges, and continue until the accumulated
    capacity reaches ``demand`` or the endpoints become disconnected.

    Parameters
    ----------
    graph:
        Graph whose edges carry ``capacity`` and the ``weight`` attribute.
        The graph is *not* modified; capacities are tracked in a local copy.
    source, target:
        Demand endpoints.
    demand:
        Flow requirement to cover.  Use ``float("inf")`` to enumerate paths
        until the endpoints disconnect.
    weight:
        Edge attribute used as Dijkstra weight.  When the attribute is
        missing on an edge a weight of 1 is assumed.
    max_paths:
        Optional hard cap on the number of collected paths.

    Returns
    -------
    list of ``(path, capacity)``
        The selected paths with the bottleneck capacity each one contributes.
        May cover less than ``demand`` when the graph lacks capacity.
    """
    if source == target:
        return []
    if source not in graph or target not in graph:
        return []

    residual: Dict[Tuple[Node, Node], float] = {
        canonical_edge(u, v): float(data.get("capacity", 0.0))
        for u, v, data in graph.edges(data=True)
    }
    cover: List[Tuple[Path, float]] = []
    covered = 0.0

    def edge_weight(u: Node, v: Node, data: dict) -> Optional[float]:
        if residual[canonical_edge(u, v)] <= CAPACITY_EPSILON:
            return None  # saturated edges are invisible to Dijkstra
        return float(data.get(weight, 1.0))

    while covered < demand - CAPACITY_EPSILON:
        if max_paths is not None and len(cover) >= max_paths:
            break
        try:
            path = nx.dijkstra_path(graph, source, target, weight=edge_weight)
        except nx.NetworkXNoPath:
            break
        bottleneck = min(residual[canonical_edge(u, v)] for u, v in path_edges(path))
        if bottleneck <= CAPACITY_EPSILON:
            break
        contribution = min(bottleneck, demand - covered) if demand != float("inf") else bottleneck
        cover.append((tuple(path), bottleneck))
        covered += bottleneck
        for u, v in path_edges(path):
            residual[canonical_edge(u, v)] -= bottleneck
    return cover


def max_flow_over_paths(paths: Iterable[Tuple[Path, float]]) -> float:
    """Sum of the bottleneck capacities of a path cover.

    This is the (lower bound on the) flow that the paths of a cover can carry
    when they were generated by :func:`shortest_path_cover`, because each
    path's bottleneck was computed on the residual left by its predecessors.
    """
    return sum(capacity for _, capacity in paths)
