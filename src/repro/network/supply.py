"""The supply graph ``G = (V, E)`` of the MinR problem.

The supply graph is the communication network to be recovered.  Every edge
has a *capacity* ``c_ij`` and a *repair cost* ``k^e_ij``; every node has a
repair cost ``k^v_i``.  A subset of the nodes (``V_B``) and edges (``E_B``)
is *broken*: the network cannot carry flow through them until they are
repaired.

The class additionally tracks a *residual capacity* per edge.  Residuals are
what the ISP algorithm consumes when it prunes demand onto working paths
(Section IV-F of the paper); the nominal capacity is never modified.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.utils.validation import check_non_negative, check_positive

Node = Hashable
Edge = Tuple[Node, Node]

#: Default capacity assigned when an edge is added without an explicit one.
DEFAULT_CAPACITY = 1.0
#: Default repair cost for both nodes and edges (the paper uses unit costs).
DEFAULT_REPAIR_COST = 1.0


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return the canonical (order independent) representation of an edge.

    The supply graph is undirected, so ``(u, v)`` and ``(v, u)`` refer to the
    same edge.  All bookkeeping dictionaries use the canonical form so that
    lookups never depend on the order in which endpoints are mentioned.
    """
    a, b = sorted((u, v), key=repr)
    return (a, b)


class SupplyGraph:
    """Undirected capacitated supply network with broken elements.

    Parameters
    ----------
    graph:
        Optional :class:`networkx.Graph` to initialise from.  Node attribute
        ``pos`` (a 2-tuple), node/edge attribute ``repair_cost`` and edge
        attribute ``capacity`` are honoured when present.

    Examples
    --------
    >>> g = SupplyGraph()
    >>> g.add_node("a", pos=(0.0, 0.0))
    >>> g.add_node("b", pos=(1.0, 0.0))
    >>> g.add_edge("a", "b", capacity=10.0)
    >>> g.break_edge("a", "b")
    >>> sorted(g.broken_edges)
    [('a', 'b')]
    """

    def __init__(self, graph: Optional[nx.Graph] = None) -> None:
        self._graph = nx.Graph()
        self._broken_nodes: Set[Node] = set()
        self._broken_edges: Set[Edge] = set()
        self._residual: Dict[Edge, float] = {}
        if graph is not None:
            self._init_from_networkx(graph)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _init_from_networkx(self, graph: nx.Graph) -> None:
        if graph.is_directed():
            raise ValueError("SupplyGraph models an undirected network")
        if graph.is_multigraph():
            raise ValueError("SupplyGraph does not support multigraphs")
        for node, data in graph.nodes(data=True):
            self.add_node(
                node,
                pos=data.get("pos"),
                repair_cost=data.get("repair_cost", DEFAULT_REPAIR_COST),
                broken=bool(data.get("broken", False)),
            )
        for u, v, data in graph.edges(data=True):
            self.add_edge(
                u,
                v,
                capacity=data.get("capacity", DEFAULT_CAPACITY),
                repair_cost=data.get("repair_cost", DEFAULT_REPAIR_COST),
                broken=bool(data.get("broken", False)),
            )

    def add_node(
        self,
        node: Node,
        pos: Optional[Tuple[float, float]] = None,
        repair_cost: float = DEFAULT_REPAIR_COST,
        broken: bool = False,
    ) -> None:
        """Add ``node`` to the supply graph.

        Re-adding an existing node updates its attributes but keeps incident
        edges and its broken status unless ``broken`` is explicitly ``True``.
        """
        check_non_negative(repair_cost, "repair_cost")
        if pos is not None:
            pos = (float(pos[0]), float(pos[1]))
        self._graph.add_node(node, pos=pos, repair_cost=float(repair_cost))
        if broken:
            self._broken_nodes.add(node)

    def add_edge(
        self,
        u: Node,
        v: Node,
        capacity: float = DEFAULT_CAPACITY,
        repair_cost: float = DEFAULT_REPAIR_COST,
        broken: bool = False,
    ) -> None:
        """Add the undirected edge ``(u, v)``.

        Endpoints missing from the graph are created with default attributes.
        The edge residual capacity starts equal to its nominal capacity.
        """
        check_positive(capacity, "capacity")
        check_non_negative(repair_cost, "repair_cost")
        if u == v:
            raise ValueError("self loops carry no flow and are not allowed")
        for endpoint in (u, v):
            if endpoint not in self._graph:
                self.add_node(endpoint)
        self._graph.add_edge(u, v, capacity=float(capacity), repair_cost=float(repair_cost))
        self._residual[canonical_edge(u, v)] = float(capacity)
        if broken:
            self._broken_edges.add(canonical_edge(u, v))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph` (treat as read-only)."""
        return self._graph

    @property
    def nodes(self) -> List[Node]:
        """All nodes, including broken ones."""
        return list(self._graph.nodes)

    @property
    def edges(self) -> List[Edge]:
        """All edges in canonical form, including broken ones."""
        return [canonical_edge(u, v) for u, v in self._graph.edges]

    @property
    def broken_nodes(self) -> Set[Node]:
        """The set ``V_B`` of currently broken nodes (a copy)."""
        return set(self._broken_nodes)

    @property
    def broken_edges(self) -> Set[Edge]:
        """The set ``E_B`` of currently broken edges (a copy, canonical form)."""
        return set(self._broken_edges)

    @property
    def number_of_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def number_of_edges(self) -> int:
        return self._graph.number_of_edges()

    def __contains__(self, node: Node) -> bool:
        return node in self._graph

    def __iter__(self) -> Iterator[Node]:
        return iter(self._graph.nodes)

    def has_edge(self, u: Node, v: Node) -> bool:
        return self._graph.has_edge(u, v)

    def neighbors(self, node: Node) -> List[Node]:
        return list(self._graph.neighbors(node))

    def degree(self, node: Node) -> int:
        return int(self._graph.degree(node))

    @property
    def max_degree(self) -> int:
        """Maximum node degree ``eta_max``, used in constraint 1(c) of the MILP."""
        if self._graph.number_of_nodes() == 0:
            return 0
        return max(dict(self._graph.degree).values())

    def position(self, node: Node) -> Optional[Tuple[float, float]]:
        """Geographic position of ``node`` or ``None`` when unknown."""
        return self._graph.nodes[node].get("pos")

    # ------------------------------------------------------------------ #
    # Capacities and repair costs
    # ------------------------------------------------------------------ #
    def capacity(self, u: Node, v: Node) -> float:
        """Nominal capacity ``c_ij`` of the edge ``(u, v)``."""
        return float(self._graph.edges[u, v]["capacity"])

    def residual(self, u: Node, v: Node) -> float:
        """Residual (still unassigned) capacity of the edge ``(u, v)``."""
        return self._residual[canonical_edge(u, v)]

    def set_capacity(self, u: Node, v: Node, capacity: float) -> None:
        """Overwrite the nominal capacity and reset the edge residual."""
        check_positive(capacity, "capacity")
        self._graph.edges[u, v]["capacity"] = float(capacity)
        self._residual[canonical_edge(u, v)] = float(capacity)

    def consume_capacity(self, u: Node, v: Node, amount: float, tolerance: float = 1e-9) -> None:
        """Reduce the residual capacity of ``(u, v)`` by ``amount``.

        Raises
        ------
        ValueError
            If ``amount`` exceeds the current residual beyond ``tolerance``.
        """
        check_non_negative(amount, "amount")
        key = canonical_edge(u, v)
        current = self._residual[key]
        if amount > current + tolerance:
            raise ValueError(
                f"cannot consume {amount} units on edge {key}: only {current} residual left"
            )
        self._residual[key] = max(0.0, current - amount)

    def release_capacity(self, u: Node, v: Node, amount: float) -> None:
        """Return ``amount`` units of residual capacity to ``(u, v)``.

        The residual never exceeds the nominal capacity.
        """
        check_non_negative(amount, "amount")
        key = canonical_edge(u, v)
        self._residual[key] = min(self.capacity(u, v), self._residual[key] + amount)

    def reset_residuals(self) -> None:
        """Restore every edge residual to its nominal capacity."""
        for u, v in self._graph.edges:
            self._residual[canonical_edge(u, v)] = self.capacity(u, v)

    def node_repair_cost(self, node: Node) -> float:
        """Repair cost ``k^v_i`` of ``node``."""
        return float(self._graph.nodes[node]["repair_cost"])

    def edge_repair_cost(self, u: Node, v: Node) -> float:
        """Repair cost ``k^e_ij`` of the edge ``(u, v)``."""
        return float(self._graph.edges[u, v]["repair_cost"])

    def set_node_repair_cost(self, node: Node, cost: float) -> None:
        check_non_negative(cost, "cost")
        self._graph.nodes[node]["repair_cost"] = float(cost)

    def set_edge_repair_cost(self, u: Node, v: Node, cost: float) -> None:
        check_non_negative(cost, "cost")
        self._graph.edges[u, v]["repair_cost"] = float(cost)

    def repair_cost_of(self, nodes: Iterable[Node], edges: Iterable[Edge]) -> float:
        """Total cost of repairing the given ``nodes`` and ``edges``."""
        total = sum(self.node_repair_cost(n) for n in nodes)
        total += sum(self.edge_repair_cost(u, v) for u, v in edges)
        return total

    # ------------------------------------------------------------------ #
    # Failure management
    # ------------------------------------------------------------------ #
    def break_node(self, node: Node) -> None:
        """Mark ``node`` as broken (member of ``V_B``)."""
        if node not in self._graph:
            raise KeyError(f"unknown node {node!r}")
        self._broken_nodes.add(node)

    def break_edge(self, u: Node, v: Node) -> None:
        """Mark the edge ``(u, v)`` as broken (member of ``E_B``)."""
        if not self._graph.has_edge(u, v):
            raise KeyError(f"unknown edge ({u!r}, {v!r})")
        self._broken_edges.add(canonical_edge(u, v))

    def break_all(self) -> None:
        """Destroy the entire network (the paper's "complete destruction")."""
        self._broken_nodes = set(self._graph.nodes)
        self._broken_edges = {canonical_edge(u, v) for u, v in self._graph.edges}

    def repair_node(self, node: Node) -> None:
        """Remove ``node`` from the broken set (no-op when already working)."""
        self._broken_nodes.discard(node)

    def repair_edge(self, u: Node, v: Node) -> None:
        """Remove the edge from the broken set (no-op when already working)."""
        self._broken_edges.discard(canonical_edge(u, v))

    def is_broken_node(self, node: Node) -> bool:
        return node in self._broken_nodes

    def is_broken_edge(self, u: Node, v: Node) -> bool:
        return canonical_edge(u, v) in self._broken_edges

    def is_working_edge(self, u: Node, v: Node) -> bool:
        """``True`` when the edge and both its endpoints are not broken."""
        return (
            not self.is_broken_edge(u, v)
            and u not in self._broken_nodes
            and v not in self._broken_nodes
        )

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def working_graph(
        self,
        extra_nodes: Optional[Set[Node]] = None,
        extra_edges: Optional[Set[Edge]] = None,
        use_residual: bool = True,
    ) -> nx.Graph:
        """Return the operational subgraph ``G^(n)``.

        The working graph contains only non-broken nodes and edges.  Elements
        listed in ``extra_nodes`` / ``extra_edges`` are treated as already
        repaired (the ISP repair list ``L^(n)``), so they are included even if
        they are marked broken.  Edge ``capacity`` attributes carry the
        residual capacity when ``use_residual`` is true, the nominal capacity
        otherwise.
        """
        extra_nodes = extra_nodes or set()
        extra_edges = {canonical_edge(*e) for e in (extra_edges or set())}
        working = nx.Graph()
        for node, data in self._graph.nodes(data=True):
            if node not in self._broken_nodes or node in extra_nodes:
                working.add_node(node, **data)
        for u, v, data in self._graph.edges(data=True):
            key = canonical_edge(u, v)
            if key in self._broken_edges and key not in extra_edges:
                continue
            if u not in working or v not in working:
                continue
            capacity = self._residual[key] if use_residual else data["capacity"]
            working.add_edge(u, v, capacity=capacity, repair_cost=data["repair_cost"])
        return working

    def full_graph(self, use_residual: bool = True) -> nx.Graph:
        """Return the complete supply graph including broken elements.

        ISP computes its centrality ranking on the *complete* graph (broken
        elements included) with updated residual capacities — see Section
        IV-B of the paper.
        """
        full = nx.Graph()
        for node, data in self._graph.nodes(data=True):
            full.add_node(node, **data)
        for u, v, data in self._graph.edges(data=True):
            key = canonical_edge(u, v)
            capacity = self._residual[key] if use_residual else data["capacity"]
            full.add_edge(u, v, capacity=capacity, repair_cost=data["repair_cost"])
        return full

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def copy(self) -> "SupplyGraph":
        """Deep copy of the supply graph including failures and residuals."""
        clone = SupplyGraph()
        clone._graph = self._graph.copy()
        clone._broken_nodes = set(self._broken_nodes)
        clone._broken_edges = set(self._broken_edges)
        clone._residual = dict(self._residual)
        return clone

    def total_capacity(self) -> float:
        """Sum of nominal capacities over all edges."""
        return sum(data["capacity"] for _, _, data in self._graph.edges(data=True))

    def stats(self) -> Dict[str, float]:
        """Summary statistics used by reports and the Figure 8 bench."""
        graph = self._graph
        degrees = [d for _, d in graph.degree]
        return {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "broken_nodes": len(self._broken_nodes),
            "broken_edges": len(self._broken_edges),
            "max_degree": max(degrees) if degrees else 0,
            "mean_degree": (sum(degrees) / len(degrees)) if degrees else 0.0,
            "total_capacity": self.total_capacity(),
            "connected": bool(nx.is_connected(graph)) if graph.number_of_nodes() else False,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SupplyGraph(nodes={self.number_of_nodes}, edges={self.number_of_edges}, "
            f"broken_nodes={len(self._broken_nodes)}, broken_edges={len(self._broken_edges)})"
        )
