"""A thin synchronous client for a running recovery daemon.

:class:`ServiceClient` speaks the daemon's JSON protocol over stdlib
``http.client`` — no dependencies, so any script (and the load-generation
harness) can talk to a daemon.  Each thread holds one **persistent
keep-alive connection** to the daemon (connections are thread-local, so
the client object itself is safe to share across threads), turning the
poll loop's per-request TCP setup into a single reused socket.  A request
that hits a stale socket — the daemon reaped an idle connection, or the
connection died between requests — is retried once on a fresh connection;
that is safe because every daemon endpoint is idempotent (submission is
digest-keyed, reads are reads).

Submission returns the durable job view; :meth:`ServiceClient.wait` polls
until the job reaches a terminal state.

Non-2xx responses raise :class:`ServiceError` carrying the HTTP status and
the decoded error payload, so callers can distinguish validation failures
(400) from admission rejections (429).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from typing import Any, Dict, List, Optional, Union

from repro.api.requests import AssessmentRequest, RecoveryRequest

Request = Union[AssessmentRequest, RecoveryRequest]

#: Errors that signal a dead/stale socket rather than a daemon verdict;
#: the request is retried once on a fresh connection.
_RETRYABLE = (
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
    ConnectionError,
    BrokenPipeError,
    OSError,
)


class ServiceError(RuntimeError):
    """A non-2xx daemon response."""

    def __init__(self, status: int, payload: Any) -> None:
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")
        self.status = int(status)
        self.payload = payload


class ServiceClient:
    """Talk to one daemon at ``base_url`` (e.g. ``http://127.0.0.1:8351``)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// daemons are supported, got {base_url!r}")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            self._local.connection = connection
        return connection

    def _discard_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
            self._local.connection = None

    def close(self) -> None:
        """Drop this thread's persistent connection (reopened on next use)."""
        self._discard_connection()

    def _call(self, method: str, path: str, payload: Optional[Dict[str, Any]] = None):
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        last_error: Optional[Exception] = None
        for attempt in range(2):
            connection = self._connection()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                status = response.status
                raw = response.read()
                content_type = response.getheader("Content-Type", "") or ""
                if (response.getheader("Connection", "") or "").lower() == "close":
                    self._discard_connection()
                break
            except _RETRYABLE as error:
                # stale keep-alive socket: reconnect and retry exactly once
                self._discard_connection()
                last_error = error
        else:
            raise ConnectionError(
                f"daemon at {self.base_url} unreachable: {last_error}"
            ) from last_error
        if status >= 400:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except ValueError:
                decoded = raw.decode("utf-8", "replace")
            raise ServiceError(status, decoded)
        if content_type.startswith("text/"):
            return status, raw.decode("utf-8")
        return status, json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def solve(self, request: Union[RecoveryRequest, Dict[str, Any]]) -> Dict[str, Any]:
        """Submit a recovery request; returns ``{"job": ..., "deduplicated": ...}``."""
        payload = request.to_dict() if isinstance(request, RecoveryRequest) else dict(request)
        return self._call("POST", "/v1/solve", payload)[1]

    def assess(self, request: Union[AssessmentRequest, Dict[str, Any]]) -> Dict[str, Any]:
        """Submit an assessment request; same envelope shape as :meth:`solve`."""
        payload = request.to_dict() if isinstance(request, AssessmentRequest) else dict(request)
        return self._call("POST", "/v1/assess", payload)[1]

    def batch(self, requests: List[Union[Request, Dict[str, Any]]]) -> Dict[str, Any]:
        """Submit many requests (either kind) in one call: ``{"jobs": [...]}``."""
        payload = {
            "requests": [
                item.to_dict()
                if isinstance(item, (AssessmentRequest, RecoveryRequest))
                else dict(item)
                for item in requests
            ]
        }
        return self._call("POST", "/v1/batch", payload)[1]

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def job(self, digest: str) -> Dict[str, Any]:
        """The durable job view (state, timestamps, result once done)."""
        return self._call("GET", f"/v1/jobs/{digest}")[1]["job"]

    def wait(
        self, digest: str, timeout: float = 120.0, poll_interval: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job is ``done`` or ``failed``; return its view.

        Raises ``TimeoutError`` if the job is still pending after
        ``timeout`` seconds — the job itself keeps running; only the wait
        gives up.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(digest)
            if view["state"] in ("done", "failed"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {digest[:12]} still {view['state']} after {timeout:.0f}s"
                )
            time.sleep(poll_interval)

    def trace(self, digest: str) -> Dict[str, Any]:
        """The job's merged cross-process span document (see /v1/trace)."""
        return self._call("GET", f"/v1/trace/{digest}")[1]

    def healthz(self) -> Dict[str, Any]:
        return self._call("GET", "/healthz")[1]

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        return self._call("GET", "/metrics")[1]


__all__ = ["ServiceClient", "ServiceError"]
