"""Daemon orchestration: store + worker fleet + HTTP front end.

``repro.cli serve`` builds a :class:`ServerConfig` and calls
:func:`run_server`, which owns the whole lifecycle:

1. open (creating if needed) the durable store and **requeue orphans** —
   jobs left ``running`` by a previous crash go back to the queue before
   any worker starts, so an accepted job is never lost;
2. start the worker fleet (N processes pulling from the store);
3. serve HTTP until SIGTERM/SIGINT, then drain: stop accepting, let
   in-flight jobs finish, reap the fleet.

The readiness line (``repro.server listening on ...``) is printed to
stderr once the socket is bound — scripts and CI wait for it before
sending traffic.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass
from typing import Optional

from repro.obs.logging import configure_logging, get_logger
from repro.server.http import (
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_SLOW_REQUEST_THRESHOLD,
    RecoveryServer,
)
from repro.server.stores import DEFAULT_MAX_ATTEMPTS, open_store
from repro.server.workers import DEFAULT_CLAIM_BATCH, DEFAULT_POLL_INTERVAL, WorkerFleet

#: Default TCP port of the recovery daemon.
DEFAULT_PORT = 8351


@dataclass(frozen=True)
class ServerConfig:
    """Everything a daemon run needs, as plain data."""

    db: str
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 2
    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
    poll_interval: float = DEFAULT_POLL_INTERVAL
    lp_backend: Optional[str] = None
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    claim_batch: int = DEFAULT_CLAIM_BATCH
    drain_timeout: float = 30.0
    #: Two-stage portfolio execution (heuristic envelope first, upgraded in
    #: place when the exact solve lands).  Off by default: with it on, a
    #: "done" job's envelope may still change, which clients must opt into.
    portfolio: bool = False
    #: Process-wide OPT strategy for the worker fleet ("monolithic" /
    #: "decomposed" / "auto"); ``None`` keeps the environment default.
    opt_strategy: Optional[str] = None
    #: Job-store shard count: ``None`` (the default) auto-detects the
    #: layout of an existing ``db`` path (single file vs shard fleet) and
    #: creates a classic single SQLite file when the path is new; 1 forces
    #: the single file, N >= 2 turns ``db`` into a directory of N shard
    #: files behind the consistent-hash coordinator (see
    #: ``repro.server.stores.sharded``).
    shards: Optional[int] = None
    #: Structured-log level and format for the daemon *and* its spawned
    #: workers (exported via env; see ``repro.obs.logging``).
    log_level: str = "info"
    log_format: str = "json"
    #: Seconds of in-server handling beyond which a request counts as slow
    #: (the ``repro_slow_requests_total`` counter).
    slow_request_threshold: float = DEFAULT_SLOW_REQUEST_THRESHOLD


async def serve(config: ServerConfig, ready: Optional[asyncio.Event] = None) -> None:
    """Run the daemon until the surrounding loop cancels this coroutine.

    ``ready`` (if given) is set once the HTTP socket is bound — in-process
    harnesses await it instead of parsing stderr.
    """
    # Validate worker-side configuration *here*, before any process spawns:
    # a bad backend name or malformed $REPRO_TOPOLOGY_CACHE would otherwise
    # kill every worker at startup while the daemon kept serving a queue
    # nobody drains.
    import os

    from repro.api.service import default_topology_cache_size
    from repro.flows.milp import OPT_STRATEGY_ENV_VAR, resolve_opt_strategy
    from repro.flows.solver.backends import available_backends

    if config.lp_backend and config.lp_backend not in available_backends():
        raise ValueError(
            f"unknown LP backend {config.lp_backend!r}; "
            f"available: {', '.join(available_backends())}"
        )
    default_topology_cache_size()
    # Configure logging before the fleet spawns: configure_logging exports
    # the level/format env vars the worker processes configure from.
    configure_logging(level=config.log_level, log_format=config.log_format)
    log = get_logger(__name__)
    if config.opt_strategy is not None:
        # Validated here, exported so the spawned worker processes inherit
        # it — the strategy is process-level, never a request field.
        os.environ[OPT_STRATEGY_ENV_VAR] = resolve_opt_strategy(config.opt_strategy)

    store = open_store(config.db, shards=config.shards)
    shards = getattr(store, "shards", 1)  # actual layout (auto-detected)
    orphans = store.requeue_orphans()
    if orphans:
        print(f"repro.server: requeued {orphans} orphaned running job(s)", file=sys.stderr)
        log.info("requeued orphaned jobs", extra={"count": orphans})

    fleet = WorkerFleet(
        config.db,
        workers=config.workers,
        poll_interval=config.poll_interval,
        lp_backend=config.lp_backend,
        max_attempts=config.max_attempts,
        claim_batch=config.claim_batch,
        portfolio=config.portfolio,
        shards=shards,
    )
    fleet.start()

    front = RecoveryServer(
        store,
        workers_alive=fleet.alive,
        max_queue_depth=config.max_queue_depth,
        expected_workers=config.workers,
        on_enqueue=fleet.notify,
        worker_ids=fleet.worker_ids,
        slow_request_threshold=config.slow_request_threshold,
    )
    try:
        await front.start(host=config.host, port=config.port)
        # Scripts and CI parse this exact stderr line for readiness; the
        # structured log line below is the machine-friendly twin.
        print(
            f"repro.server listening on http://{config.host}:{front.port} "
            f"(workers={config.workers}, shards={shards}, db={config.db})",
            file=sys.stderr,
            flush=True,
        )
        log.info(
            "daemon listening",
            extra={
                "host": config.host,
                "port": front.port,
                "workers": config.workers,
                "shards": shards,
                "db": config.db,
            },
        )
        if ready is not None:
            ready.set()
        while True:  # serve until cancelled
            await asyncio.sleep(3600)
    finally:
        await front.stop()
        fleet.drain(timeout=config.drain_timeout)
        store.close()
        print("repro.server: drained and stopped", file=sys.stderr, flush=True)


def run_server(config: ServerConfig) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, drain, return 0."""

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        task = asyncio.ensure_future(serve(config))
        stopped = asyncio.ensure_future(stop.wait())
        done, _ = await asyncio.wait({task, stopped}, return_when=asyncio.FIRST_COMPLETED)
        if task in done:
            stopped.cancel()
            task.result()  # propagate startup errors (port in use, bad db)
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    asyncio.run(_main())
    return 0


__all__ = ["DEFAULT_PORT", "ServerConfig", "run_server", "serve"]
