"""Compatibility shim — the job store now lives in :mod:`repro.server.stores`.

PR 5 introduced ``repro.server.store.JobStore`` as the single-file SQLite
store; PR 9 extracted the backend contract into the ``stores`` package
(``base`` protocol, ``sqlite`` single-file backend, ``sharded`` fleet).
Every name importable from here before the split still is — new code
should import from :mod:`repro.server.stores` and pick backends with
:func:`repro.server.stores.open_store`.
"""

from __future__ import annotations

from repro.server.stores import (
    DEFAULT_MAX_ATTEMPTS,
    JobRecord,
    JobStore,
    JobStoreBackend,
    SCHEMA_VERSION,
    STATES,
    ShardedJobStore,
    SQLiteJobStore,
    StoreSchemaError,
    open_store,
)

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "JobRecord",
    "JobStore",
    "JobStoreBackend",
    "SCHEMA_VERSION",
    "STATES",
    "ShardedJobStore",
    "SQLiteJobStore",
    "StoreSchemaError",
    "open_store",
]
