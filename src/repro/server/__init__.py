"""``repro.server`` — the recovery-as-a-service daemon.

The paper's algorithms become a long-running service in four pieces:

* :mod:`repro.server.stores` — the durable job-store backends (WAL-mode
  SQLite, schema-versioned) holding request envelopes keyed by
  ``config_digest`` with states ``queued -> running -> done|failed``:
  one file by default, a consistent-hash sharded fleet with
  ``serve --shards N``;
* :mod:`repro.server.http` — the asyncio JSON front end (``/v1/solve``,
  ``/v1/assess``, ``/v1/batch``, ``/v1/jobs/{digest}``, ``/healthz``,
  ``/metrics``) with admission control;
* :mod:`repro.server.workers` — the worker fleet: N processes pulling jobs
  from the store and executing them through a per-process
  :class:`~repro.api.service.RecoveryService`, draining on SIGTERM;
* :mod:`repro.server.daemon` — ties the three together behind
  ``repro.cli serve``.

Clients talk to a running daemon through
:class:`repro.server.client.ServiceClient`;
:func:`repro.server.loadtest.run_loadtest` replays generated scenario
traffic against one and writes the throughput/latency artefact
(``BENCH_server.json``).
"""

from repro.server.client import ServiceClient, ServiceError
from repro.server.daemon import ServerConfig, run_server
from repro.server.loadtest import LoadtestReport, run_loadtest
from repro.server.stores import (
    JobRecord,
    JobStore,
    JobStoreBackend,
    ShardedJobStore,
    SQLiteJobStore,
    StoreSchemaError,
    open_store,
)
from repro.server.workers import WorkerFleet, worker_loop

__all__ = [
    "JobRecord",
    "JobStore",
    "JobStoreBackend",
    "LoadtestReport",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "SQLiteJobStore",
    "ShardedJobStore",
    "StoreSchemaError",
    "WorkerFleet",
    "open_store",
    "run_loadtest",
    "run_server",
    "worker_loop",
]
