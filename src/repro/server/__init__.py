"""``repro.server`` — the recovery-as-a-service daemon.

The paper's algorithms become a long-running service in four pieces:

* :mod:`repro.server.store` — the durable SQLite job store (WAL mode,
  schema-versioned) holding request envelopes keyed by ``config_digest``
  with states ``queued -> running -> done|failed``;
* :mod:`repro.server.http` — the asyncio JSON front end (``/v1/solve``,
  ``/v1/assess``, ``/v1/batch``, ``/v1/jobs/{digest}``, ``/healthz``,
  ``/metrics``) with admission control;
* :mod:`repro.server.workers` — the worker fleet: N processes pulling jobs
  from the store and executing them through a per-process
  :class:`~repro.api.service.RecoveryService`, draining on SIGTERM;
* :mod:`repro.server.daemon` — ties the three together behind
  ``repro.cli serve``.

Clients talk to a running daemon through
:class:`repro.server.client.ServiceClient`;
:func:`repro.server.loadtest.run_loadtest` replays generated scenario
traffic against one and writes the throughput/latency artefact
(``BENCH_server.json``).
"""

from repro.server.client import ServiceClient, ServiceError
from repro.server.daemon import ServerConfig, run_server
from repro.server.loadtest import LoadtestReport, run_loadtest
from repro.server.store import JobRecord, JobStore, StoreSchemaError
from repro.server.workers import WorkerFleet, worker_loop

__all__ = [
    "JobRecord",
    "JobStore",
    "LoadtestReport",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "StoreSchemaError",
    "WorkerFleet",
    "run_loadtest",
    "run_server",
    "worker_loop",
]
