"""Load generation against a live daemon, with a machine-readable artefact.

:func:`run_loadtest` drives one daemon the way production traffic would:

1. sample a pool of ``distinct`` valid requests from a declarative
   :class:`~repro.scenarios.ScenarioSpace` (PR 4's seeded generator —
   one integer reproduces the whole traffic trace);
2. replay ``rps x duration`` submissions **open-loop** (each submission is
   scheduled at its ideal instant on a worker thread, so a slow response
   delays nothing — the daemon sees the intended arrival process), cycling
   the pool so duplicate submissions exercise the digest dedup path;
3. wait for every accepted job to reach a terminal state;
4. summarise throughput and latency into a :class:`LoadtestReport` and
   write it (atomically) as ``BENCH_server.json``.

Two latency populations are reported: *submit* latency (client-observed
HTTP round trip of the submission) and *job* latency (the store's
``finished_at - created_at``, i.e. queueing + execution), each as
p50/p95/p99.

With ``measure_direct=True`` the harness additionally solves the distinct
request pool in-process (no daemon) and records the ratio of the two rates
as ``paced_vs_direct_pct``.  That number is **not** a serve-path overhead:
the served rate counts unique completions over the whole paced campaign
window (open-loop arrivals spread across ``duration`` seconds, duplicates
collapsed by dedup), while the direct rate is unconstrained in-process
capacity — the ratio is dominated by the offered traffic shape.  It is
kept because it is stable for a fixed campaign (same rps/duration/pool)
and therefore still catches serve-path regressions *at that shape*.  The
honest capacity-bound overhead comparison lives in
``benchmarks/test_server_throughput.py``, which merges an
``overhead_benchmark`` section into the same artefact; the regression gate
(`scripts/benchmark_regression_check.py`) consumes that section.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.scenarios import ScenarioGenerator, ScenarioSpace
from repro.server.client import ServiceClient, ServiceError
from repro.utils.jsonio import write_json

#: A compact, fast scenario space for load generation: every instance
#: solves in tens of milliseconds, so the harness measures the *service*,
#: not the MILP.  The default campaign runs ISP only for the same reason.
TINY_SPACE = ScenarioSpace(
    topologies=(
        ("grid", {"rows": (3, 4), "cols": (3,), "capacity": (10.0, 20.0)}),
        ("ring", {"num_nodes": (6, 8)}),
        ("barabasi-albert", {"num_nodes": (12,), "attachment": (2,), "capacity": (30.0,)}),
    ),
    disruptions=(
        ("complete", {}),
        ("random", {"node_probability": (0.2,), "edge_probability": (0.3,)}),
        ("gaussian", {"variance": (2.0, 10.0), "intensity": (0.9,)}),
    ),
    algorithms=("ISP",),
    num_pairs=(1, 2),
    flow_per_pair=(2.0, 4.0),
    opt_time_limit=10.0,
)

#: Spaces addressable from the CLI's ``--scenario-space`` flag.
SCENARIO_SPACES: Dict[str, ScenarioSpace] = {
    "tiny": TINY_SPACE,
    "default": ScenarioSpace(),
}


#: Arrival models addressable from the CLI's ``--arrival`` flag.
ARRIVAL_MODELS = ("uniform", "bursty")

#: Largest burst the bursty model emits (sizes are uniform on 1..7, mean 4).
_MAX_BURST = 7


def arrival_offsets(
    total: int, rps: float, arrival: str = "uniform", seed: int = 0
) -> List[float]:
    """Ideal submission instants (seconds from replay start) for ``total`` jobs.

    ``uniform`` is the classic evenly paced open-loop schedule
    (``index / rps``).  ``bursty`` models flash-crowd traffic: submissions
    arrive in back-to-back bursts (uniform size 1..7) separated by
    exponential gaps whose mean keeps the long-run rate at ``rps`` — the
    same offered load, delivered in spikes that stress queueing, admission
    control and (on a sharded store) the claim coordinator far harder than
    an even drip.  Deterministic for a given ``seed``, so one integer still
    reproduces the whole trace.
    """
    if rps <= 0:
        raise ValueError("rps must be positive")
    total = int(total)
    if total < 1:
        return []
    if arrival == "uniform":
        return [index / rps for index in range(total)]
    if arrival != "bursty":
        raise ValueError(
            f"unknown arrival model {arrival!r}; available: {', '.join(ARRIVAL_MODELS)}"
        )
    rng = random.Random(seed)
    offsets: List[float] = []
    clock = 0.0
    while len(offsets) < total:
        burst = min(rng.randint(1, _MAX_BURST), total - len(offsets))
        offsets.extend(clock for _ in range(burst))
        # gap mean = burst / rps, so every (burst, gap) pair locally
        # sustains the target rate and the long-run average converges on it
        clock += rng.expovariate(rps / burst)
    return offsets


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty population)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return float(ordered[rank])


def _percentiles(values: Sequence[float]) -> Dict[str, float]:
    return {
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
    }


def _histogram_percentiles(metrics_text: str, name: str) -> Dict[str, float]:
    """Approximate p50/p95/p99 of a Prometheus histogram exposition.

    Each percentile is reported as the **upper bound** of the bucket the
    rank lands in (a rank landing in ``+Inf`` reports the largest finite
    bound) — an upper-bound approximation, good enough for the
    informational stage-latency section.  All zeros when the histogram is
    absent or empty.
    """
    buckets: List[tuple] = []
    total = 0
    for line in metrics_text.splitlines():
        if line.startswith(f"{name}_bucket"):
            le = line.split('le="', 1)[1].split('"', 1)[0]
            cumulative = int(float(line.rsplit(" ", 1)[1]))
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.append((bound, cumulative))
        elif line.startswith(f"{name}_count"):
            total = int(float(line.rsplit(" ", 1)[1]))
    result: Dict[str, float] = {}
    finite = [bound for bound, _ in buckets if bound != float("inf")]
    for key, fraction in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        if not total or not buckets:
            result[key] = 0.0
            continue
        rank = max(1, round(fraction * total))
        landed = next(
            (bound for bound, cumulative in sorted(buckets) if cumulative >= rank),
            float("inf"),
        )
        result[key] = landed if landed != float("inf") else (max(finite) if finite else 0.0)
    return result


@dataclass
class LoadtestReport:
    """Everything one load campaign measured, ready for ``BENCH_server.json``."""

    target_rps: float
    duration_seconds: float
    submissions: int = 0
    accepted: int = 0
    rejected: int = 0
    errors: int = 0
    unique_jobs: int = 0
    dedup_hits: int = 0
    completed_jobs: int = 0
    failed_jobs: int = 0
    achieved_rps: float = 0.0
    completed_rps: float = 0.0
    submit_latency: Dict[str, float] = field(default_factory=dict)
    job_latency: Dict[str, float] = field(default_factory=dict)
    #: Informational (never gated) per-stage latency percentiles:
    #: ``queue_wait`` is exact (job views' ``started_at - created_at``);
    #: ``serialize`` is read from the daemon's ``repro_serialize_seconds``
    #: histogram, so each percentile is a bucket upper bound.
    stage_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    wall_seconds: float = 0.0
    served_seconds: float = 0.0
    served_solves_per_sec: float = 0.0
    direct_seconds: float = 0.0
    direct_solves_per_sec: float = 0.0
    #: Paced-campaign served rate vs unconstrained direct capacity, as a
    #: percentage slowdown.  Traffic-shape dependent by construction (see
    #: the module docstring) — NOT the serve-path overhead, which is the
    #: ``overhead_benchmark`` section's ``overhead_pct``.
    paced_vs_direct_pct: Optional[float] = None
    seed: int = 0
    scenario_space: str = "tiny"
    arrival: str = "uniform"
    failures: List[Dict[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Zero failed jobs and zero transport/validation errors."""
        return self.failed_jobs == 0 and self.errors == 0

    @property
    def dedup_hit_rate(self) -> float:
        return self.dedup_hits / self.submissions if self.submissions else 0.0

    def rows(self) -> List[Dict[str, object]]:
        """(metric, value) table rows for the CLI report."""
        payload = self.to_dict()
        rows = []
        for key in (
            "target_rps",
            "achieved_rps",
            "completed_rps",
            "submissions",
            "unique_jobs",
            "dedup_hits",
            "dedup_hit_rate",
            "completed_jobs",
            "failed_jobs",
            "rejected",
            "errors",
            "wall_seconds",
        ):
            value = payload[key]
            rows.append(
                {"metric": key, "value": round(value, 4) if isinstance(value, float) else value}
            )
        if self.direct_seconds:
            for key in (
                "served_solves_per_sec",
                "direct_solves_per_sec",
                "paced_vs_direct_pct",
            ):
                value = payload[key]
                rows.append(
                    {"metric": key, "value": round(value, 4) if isinstance(value, float) else value}
                )
        for population in ("submit_latency", "job_latency"):
            for name, value in payload[population].items():
                rows.append({"metric": f"{population}_{name}", "value": round(value, 4)})
        for stage, values in payload["stage_latency"].items():
            for name, value in values.items():
                rows.append({"metric": f"{stage}_{name}", "value": round(value, 4)})
        return rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": 2,
            "kind": "server-bench",
            "target_rps": float(self.target_rps),
            "duration_seconds": float(self.duration_seconds),
            "seed": int(self.seed),
            "scenario_space": self.scenario_space,
            "arrival": self.arrival,
            "submissions": int(self.submissions),
            "accepted": int(self.accepted),
            "rejected": int(self.rejected),
            "errors": int(self.errors),
            "unique_jobs": int(self.unique_jobs),
            "dedup_hits": int(self.dedup_hits),
            "dedup_hit_rate": float(self.dedup_hit_rate),
            "completed_jobs": int(self.completed_jobs),
            "failed_jobs": int(self.failed_jobs),
            "achieved_rps": float(self.achieved_rps),
            "completed_rps": float(self.completed_rps),
            "submit_latency": dict(self.submit_latency),
            "job_latency": dict(self.job_latency),
            "stage_latency": {
                stage: dict(values) for stage, values in self.stage_latency.items()
            },
            "wall_seconds": float(self.wall_seconds),
            "served_seconds": float(self.served_seconds),
            "served_solves_per_sec": float(self.served_solves_per_sec),
            "direct_seconds": float(self.direct_seconds),
            "direct_solves_per_sec": float(self.direct_solves_per_sec),
            "paced_vs_direct_pct": (
                None if self.paced_vs_direct_pct is None else float(self.paced_vs_direct_pct)
            ),
            "ok": self.ok,
            "failures": list(self.failures),
        }


def run_loadtest(
    url: str,
    rps: float,
    duration: float,
    distinct: int = 8,
    seed: int = 0,
    space: Union[str, ScenarioSpace] = "tiny",
    algorithms: Optional[Sequence[str]] = None,
    out: Optional[str] = None,
    wait_timeout: float = 120.0,
    client: Optional[ServiceClient] = None,
    measure_direct: bool = False,
    arrival: str = "uniform",
) -> LoadtestReport:
    """Replay generated traffic against the daemon at ``url``.

    ``distinct`` bounds the request pool; with ``rps * duration`` larger
    than the pool the surplus submissions are duplicates, which is what
    measures the dedup hit rate.  ``out`` (when given) receives the report
    via the atomic JSON writer.  ``measure_direct`` additionally solves
    the distinct pool in-process after the campaign and records the
    paced-vs-direct rate ratio (``paced_vs_direct_pct`` — a traffic-shape
    number, not a serve-path overhead; see the module docstring).
    ``arrival`` picks the open-loop schedule: ``uniform`` paces evenly,
    ``bursty`` delivers the same offered load as flash-crowd spikes (see
    :func:`arrival_offsets`).
    """
    if rps <= 0:
        raise ValueError("--rps must be positive")
    if duration <= 0:
        raise ValueError("--duration must be positive")
    if distinct < 1:
        raise ValueError("--distinct must be at least 1")
    if isinstance(space, str):
        space_name = space
        try:
            space = SCENARIO_SPACES[space]
        except KeyError:
            raise KeyError(
                f"unknown scenario space {space!r}; "
                f"available: {', '.join(sorted(SCENARIO_SPACES))}"
            ) from None
    else:
        space_name = "custom"
    if algorithms:
        space = dataclasses.replace(space, algorithms=tuple(algorithms))
    client = client or ServiceClient(url)
    started = time.perf_counter()

    generator = ScenarioGenerator(space=space, seed=seed)
    total = max(1, round(rps * duration))
    # computed up front so an unknown arrival model fails before any traffic
    offsets = arrival_offsets(total, rps, arrival=arrival, seed=seed)
    pool = [request.to_dict() for request in generator.requests(min(distinct, total))]

    report = LoadtestReport(
        target_rps=float(rps),
        duration_seconds=float(duration),
        seed=int(seed),
        scenario_space=space_name,
        arrival=arrival,
        submissions=total,
        unique_jobs=len(pool),
    )

    def submit(payload: Dict[str, Any]) -> Dict[str, Any]:
        begin = time.perf_counter()
        outcome: Dict[str, Any] = {"latency": 0.0}
        try:
            response = client.solve(payload)
        except ServiceError as error:
            outcome["status"] = error.status
        except OSError as error:
            outcome["transport_error"] = str(error)
        else:
            outcome["deduplicated"] = bool(response.get("deduplicated"))
            outcome["digest"] = response["job"]["digest"]
        outcome["latency"] = time.perf_counter() - begin
        return outcome

    # Open-loop replay: each submission fires at its ideal instant on a
    # worker thread; the pool is sized so a slow daemon cannot stall the
    # arrival process (that would silently lower the offered load).
    outcomes: List[Dict[str, Any]] = []
    max_threads = min(64, max(8, int(rps * 2)))
    replay_start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(max_workers=max_threads) as executor:
        futures = []
        for index in range(total):
            target = replay_start + offsets[index]
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(executor.submit(submit, pool[index % len(pool)]))
        # measure the dispatch window *before* joining the in-flight
        # responses: achieved_rps is the offered arrival rate, which a slow
        # daemon must not be able to deflate by delaying its answers
        replay_seconds = time.perf_counter() - replay_start
        outcomes = [future.result() for future in futures]

    digests = set()
    submit_latencies = []
    for outcome in outcomes:
        submit_latencies.append(outcome["latency"])
        if "digest" in outcome:
            report.accepted += 1
            digests.add(outcome["digest"])
            if outcome.get("deduplicated"):
                report.dedup_hits += 1
        elif outcome.get("status") == 429:
            report.rejected += 1
        else:
            report.errors += 1
            report.failures.append(
                {
                    "kind": "submission",
                    "detail": str(outcome.get("transport_error", outcome.get("status"))),
                }
            )

    report.achieved_rps = len(outcomes) / replay_seconds if replay_seconds else 0.0
    report.submit_latency = _percentiles(submit_latencies)

    job_latencies: List[float] = []
    queue_waits: List[float] = []
    deadline = time.monotonic() + wait_timeout
    for digest in sorted(digests):
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            # the shared deadline is hard: once it passes, the remaining
            # digests are reported as wait failures without another poll
            report.errors += 1
            report.failures.append(
                {"kind": "wait", "digest": digest, "detail": "wait deadline exceeded"}
            )
            continue
        try:
            view = client.wait(digest, timeout=remaining, poll_interval=0.05)
        except (TimeoutError, ServiceError, OSError) as error:
            report.errors += 1
            report.failures.append({"kind": "wait", "digest": digest, "detail": str(error)})
            continue
        if view["state"] == "done":
            report.completed_jobs += 1
            if view.get("finished_at") and view.get("created_at") is not None:
                job_latencies.append(float(view["finished_at"]) - float(view["created_at"]))
            if view.get("started_at") and view.get("created_at") is not None:
                queue_waits.append(
                    max(0.0, float(view["started_at"]) - float(view["created_at"]))
                )
        else:
            report.failed_jobs += 1
            report.failures.append(
                {
                    "kind": "job",
                    "digest": digest,
                    "detail": str(view.get("error", ""))[:500],
                }
            )

    report.job_latency = _percentiles(job_latencies)
    # Informational stage-latency section (never part of the pass/fail
    # verdict): queue wait exactly from the job views, serialize time from
    # the daemon's own histogram (its only client-visible surface).
    try:
        metrics_text = client.metrics()
    except (ServiceError, OSError):
        metrics_text = ""
    report.stage_latency = {
        "queue_wait": _percentiles(queue_waits),
        "serialize": _histogram_percentiles(metrics_text, "repro_serialize_seconds"),
    }
    # the served window runs from the first submission to the last
    # terminal-state observation: the full client experience of the pool
    report.served_seconds = time.perf_counter() - replay_start
    report.served_solves_per_sec = (
        report.completed_jobs / report.served_seconds if report.served_seconds else 0.0
    )
    report.wall_seconds = time.perf_counter() - started
    report.completed_rps = (
        report.completed_jobs / report.wall_seconds if report.wall_seconds else 0.0
    )

    if measure_direct:
        # imported lazily: the solver stack (numpy/scipy) is irrelevant to
        # a plain replay and slow to import
        from repro.api.requests import request_from_dict
        from repro.api.service import RecoveryService

        direct_requests = [request_from_dict(dict(item)) for item in pool]
        direct_start = time.perf_counter()
        RecoveryService().solve_batch(direct_requests, jobs=2)
        report.direct_seconds = time.perf_counter() - direct_start
        report.direct_solves_per_sec = (
            len(direct_requests) / report.direct_seconds if report.direct_seconds else 0.0
        )
        if report.served_solves_per_sec > 0:
            report.paced_vs_direct_pct = (
                report.direct_solves_per_sec / report.served_solves_per_sec - 1.0
            ) * 100.0

    if out is not None:
        write_json(report.to_dict(), out)
    return report


__all__ = [
    "ARRIVAL_MODELS",
    "LoadtestReport",
    "SCENARIO_SPACES",
    "TINY_SPACE",
    "arrival_offsets",
    "percentile",
    "run_loadtest",
]
