"""The ``JobStore`` backend contract: what every store implementation owes.

PR 5–7 grew the single-file SQLite store organically; the HTTP front end,
the worker fleet and the portfolio racer all lean on its behaviour without
naming it.  This module makes the contract explicit so a second backend
(the sharded fleet in :mod:`repro.server.stores.sharded`) can honour the
*same* invariants, and so the parametrized contract suite
(``tests/unit/test_store_contract.py``) can hold every backend to them.

Invariants (the contract)
-------------------------
Every backend — one SQLite file, N shard files, or anything future —
must provide all of the following, **identically**:

Identity & dedup
    A job *is* its :func:`~repro.api.requests.config_digest`.  Submitting
    a digest that already exists returns the stored row
    (``created=False``); two racing submitters of the same digest create
    exactly one row.  The only exception: resubmitting a **failed** digest
    requeues it with a fresh attempt budget and a cleared error.

Lifecycle
    ``queued → running → done | failed``.  ``done`` rows are terminal and
    immutable except through :meth:`JobStoreBackend.upgrade_result`, which
    replaces the envelope of a done row in place (the portfolio path) and
    refreshes ``finished_at`` but never ``first_finished_at`` — the
    latency histogram measures claim → *first* answer.

Claims
    :meth:`JobStoreBackend.claim_batch` hands each queued job to exactly
    one of any number of racing claimers, oldest
    ``(created_at, digest)`` first, and increments its attempt count.
    A claim is atomic: there is no observable intermediate state.

Claim-holder guard
    :meth:`JobStoreBackend.complete` and :meth:`JobStoreBackend.fail`
    only land while the row is ``running`` (and, when a worker id is
    given, still assigned to that worker).  A worker that lost its claim
    to a requeue can never overwrite the new holder's outcome.

Poison budget
    A queued job whose attempt count has reached ``max_attempts`` is
    failed by the next claim sweep instead of being handed out again.
    The sweep *appends* to any recorded root-cause error rather than
    overwriting it, and performs no write at all when no queued row has
    exhausted its budget.

Crash recovery
    :meth:`JobStoreBackend.requeue_orphans` returns every ``running`` row
    to the queue (attempt counts preserved) and records a breadcrumb of
    the vanished worker in ``error`` so the poison sweep can report a
    root cause.  Terminal rows are never touched.

Warm topology sidecar
    ``save_topology`` is write-once per digest; ``load_topologies``
    returns every stored payload not in the caller's exclusion set,
    regardless of which handle (or shard) stored it.

Worker beacons
    ``record_worker_stats`` upserts one counter snapshot per worker id;
    ``worker_ids`` lists every worker that has reported (the readiness
    beacon ``/healthz`` counts); ``worker_stats_totals`` sums numeric
    counters across the whole fleet, each worker counted once.

Telemetry (schema v4)
    ``submit``/``submit_many`` accept an optional ``trace_id`` stamped on
    the rows the call *creates* (a dedup hit keeps the creating
    submission's id); the id is telemetry only and **never** feeds the
    digest.  ``save_spans`` upserts one JSON span tree per
    ``(digest, source)`` — upsert, not write-once: a retried execution
    replaces the stale tree — and ``load_spans`` returns every source's
    tree for a digest.  ``stage_latency_samples`` reports queue-wait,
    serialize and end-to-end served latencies of done jobs;
    ``layout_info`` describes the physical layout (backend kind, shard
    count, per-shard queue depths) for ``/healthz``.

Anything *not* in this contract — migration chains, shard layouts, SQL —
is backend-private.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.api.requests import (
    AssessmentRequest,
    RecoveryRequest,
    config_digest,
    request_from_dict,
)

Request = Union[AssessmentRequest, RecoveryRequest]

#: A claim marks a job failed instead of running it again once a worker has
#: already attempted it this many times (poison-job guard: a job that
#: crashes its worker would otherwise be requeued and crash the next one,
#: forever).
DEFAULT_MAX_ATTEMPTS = 3

#: The job lifecycle, in order.
STATES = ("queued", "running", "done", "failed")


class StoreSchemaError(RuntimeError):
    """The database speaks a schema this library does not understand."""


def canonical_request(request: Union[Request, Dict[str, Any]]):
    """``(parsed, payload, digest)`` for a request object or raw payload.

    Every backend canonicalises through the schema classes first, so two
    payloads describing the same instance (however the client ordered or
    defaulted their fields) land on the same digest — the property that
    makes routing by digest and dedup by digest the same decision.
    """
    if isinstance(request, (AssessmentRequest, RecoveryRequest)):
        parsed = request
    else:
        parsed = request_from_dict(dict(request))
    payload = parsed.to_dict()
    return parsed, payload, config_digest(payload)


@runtime_checkable
class JobStoreBackend(Protocol):
    """Structural type of a job-store backend (see the module docstring).

    ``repro.server.http``, ``repro.server.workers`` and
    ``repro.server.daemon`` program against this protocol only; which
    concrete backend they get is decided once, by
    :func:`repro.server.stores.open_store`.
    """

    # -- lifecycle ----------------------------------------------------- #
    @property
    def schema_version(self) -> int: ...

    def close(self) -> None: ...

    # -- submission (idempotent by digest) ----------------------------- #
    def submit(
        self,
        request: Union[Request, Dict[str, Any]],
        trace_id: Optional[str] = None,
    ) -> Tuple[Any, bool]: ...

    def submit_many(
        self,
        requests: Sequence[Union[Request, Dict[str, Any]]],
        trace_id: Optional[str] = None,
    ) -> List[Tuple[Any, bool]]: ...

    # -- worker side --------------------------------------------------- #
    def claim(
        self, worker: str, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> Optional[Any]: ...

    def claim_batch(
        self, worker: str, limit: int = 1, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> List[Any]: ...

    def complete(
        self, digest: str, result: Dict[str, Any], worker: Optional[str] = None
    ) -> bool: ...

    def upgrade_result(
        self, digest: str, result: Dict[str, Any], worker: Optional[str] = None
    ) -> bool: ...

    def fail(self, digest: str, error: str, worker: Optional[str] = None) -> bool: ...

    def requeue_orphans(self) -> int: ...

    # -- lookups and metrics ------------------------------------------- #
    def get(self, digest: str) -> Optional[Any]: ...

    def jobs(self, state: Optional[str] = None, limit: int = 1000) -> List[Any]: ...

    def counts(self) -> Dict[str, int]: ...

    def queue_depth(self) -> int: ...

    def solve_latencies(self, limit: int = 2048) -> List[float]: ...

    def solve_latency_samples(self, limit: int = 2048) -> List[Tuple[float, float]]: ...

    def stage_latency_samples(self, limit: int = 2048) -> Dict[str, List[float]]: ...

    def layout_info(self) -> Dict[str, Any]: ...

    # -- trace-span sidecar -------------------------------------------- #
    def save_spans(
        self,
        digest: str,
        source: str,
        payload: Dict[str, Any],
        trace_id: Optional[str] = None,
    ) -> None: ...

    def load_spans(self, digest: str) -> Dict[str, Dict[str, Any]]: ...

    # -- warm topology sidecar ----------------------------------------- #
    def save_topology(self, digest: str, payload: bytes) -> bool: ...

    def load_topologies(
        self, exclude: Optional[Sequence[str]] = None
    ) -> Dict[str, bytes]: ...

    def topology_digests(self) -> List[str]: ...

    # -- worker-reported counters -------------------------------------- #
    def record_worker_stats(self, worker: str, counters: Dict[str, float]) -> None: ...

    def worker_ids(self) -> List[str]: ...

    def worker_stats_totals(self) -> Dict[str, float]: ...


__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "JobStoreBackend",
    "Request",
    "STATES",
    "StoreSchemaError",
    "canonical_request",
]
