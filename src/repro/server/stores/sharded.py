"""The sharded job store: N SQLite shard files behind one coordinator.

One WAL file has one writer at a time; under a heavy enough submit/claim
mix the write lock — not the solvers — becomes the ceiling.  This backend
splits the job population across ``N`` independent
:class:`~repro.server.stores.sqlite.SQLiteJobStore` files so unrelated
jobs never contend for the same lock, while presenting the exact same
:class:`~repro.server.stores.base.JobStoreBackend` surface (and passing
the same contract suite) as the single file.

Routing
-------
A job lives on exactly one shard, chosen by **consistent hash on its
``config_digest``** — the same digest that identifies the job everywhere
else, so routing, dedup and result lookup are all the same decision.  The
ring hashes ``{vnode}:{shard}`` points (64 virtual nodes per shard,
sha256) and routes a digest to the first point at or clockwise of its own
hash; adding a shard count later moves only ~1/N of the keyspace.
Topology-cache digests and worker-stats ids ride the same ring, so each
sidecar row also lives on exactly one shard.

On-disk layout
--------------
``--shards N`` (N ≥ 2) turns the store path into a *directory*::

    jobs.db/
        shards.json     <- manifest: {"layout": "sharded", "shards": N}
        shard-00.db     <- plain single-file stores, one per shard
        shard-01.db     (+ their WAL/SHM sidecars)
        ...

The manifest pins the shard count: every later open (daemon restarts,
worker processes, ops tooling) must agree with it, because re-ringing an
existing fleet would route digests away from their rows.  Each shard file
migrates itself through the normal single-file ``_MIGRATIONS`` chain —
there is no shard-level migration machinery to keep in sync.

Cross-shard semantics
---------------------
Digest-keyed calls (submit, get, complete, fail, upgrade) go straight to
the owning shard and inherit its atomicity.  The only operation that is
genuinely global is the claim: FIFO must hold across the *whole* queue,
not per shard, so :meth:`ShardedJobStore.claim_batch` peeks every shard's
oldest queued jobs, merges them by ``(created_at, digest)``, and claims
the winners with targeted atomic per-digest updates — a lost race (some
other handle claimed a peeked digest first) just drops that candidate and
re-peeks.  Exactly-once still holds because every targeted claim is a
single ``UPDATE ... RETURNING`` on its shard.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.server.stores.base import (
    DEFAULT_MAX_ATTEMPTS,
    Request,
    STATES,
    StoreSchemaError,
    canonical_request,
)
from repro.server.stores.sqlite import JobRecord, SQLiteJobStore
from repro.utils.jsonio import write_json

#: Virtual nodes per shard on the hash ring — enough that the keyspace
#: split stays within a few percent of even for any realistic shard count.
VNODES_PER_SHARD = 64

_MANIFEST_NAME = "shards.json"


def _ring_hash(key: str) -> int:
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Maps digest-like keys to shard indices, stable under growth.

    ``{vnode}:{shard}`` points are hashed onto a 64-bit ring; a key routes
    to the first point at or clockwise of its own hash.  Deterministic
    across processes and runs — every handle on the same shard count
    computes the same ring.
    """

    def __init__(self, shards: int, vnodes: int = VNODES_PER_SHARD) -> None:
        if shards < 1:
            raise ValueError("a hash ring needs at least one shard")
        self.shards = int(shards)
        points: List[Tuple[int, int]] = []
        for shard in range(self.shards):
            for vnode in range(int(vnodes)):
                points.append((_ring_hash(f"{vnode}:{shard}"), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_of(self, key: str) -> int:
        """The shard index owning ``key``."""
        index = bisect.bisect_left(self._hashes, _ring_hash(key))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]


def _read_manifest(directory: Path) -> Optional[int]:
    manifest = directory / _MANIFEST_NAME
    if not manifest.exists():
        return None
    try:
        payload = json.loads(manifest.read_text())
    except ValueError as exc:
        raise StoreSchemaError(f"unreadable shard manifest {manifest}: {exc}") from exc
    if payload.get("layout") != "sharded" or not isinstance(payload.get("shards"), int):
        raise StoreSchemaError(f"malformed shard manifest {manifest}: {payload!r}")
    return int(payload["shards"])


def shard_count(path: Union[str, Path]) -> Optional[int]:
    """The shard count pinned at ``path``, or ``None`` for a single file.

    ``open_store`` uses this to auto-detect the layout when the caller
    does not say: a directory with a manifest is a sharded fleet, anything
    else is the classic single file.
    """
    target = Path(path)
    if target.is_dir():
        return _read_manifest(target)
    return None


class ShardedJobStore:
    """N single-file stores behind one :class:`JobStoreBackend` surface.

    Opening is idempotent: the first open of a fresh path creates the
    directory, the manifest and every shard file; later opens (other
    processes, restarts) verify the manifest and attach.  Asking for a
    shard count that disagrees with the manifest is an error, never a
    silent re-ring.
    """

    def __init__(
        self,
        path: Union[str, Path],
        shards: int,
        busy_timeout: float = 10.0,
    ) -> None:
        if shards < 2:
            raise ValueError(
                "a sharded store needs at least 2 shards; use the single-file "
                "store for shards=1"
            )
        self.path = Path(path)
        if self.path.exists() and not self.path.is_dir():
            raise StoreSchemaError(
                f"{self.path} is a single-file store; it cannot be opened with "
                f"--shards {shards} (re-ringing would strand existing rows)"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        pinned = _read_manifest(self.path)
        if pinned is None:
            write_json({"layout": "sharded", "shards": int(shards)}, self.path / _MANIFEST_NAME)
        elif pinned != int(shards):
            raise StoreSchemaError(
                f"shard store {self.path} is pinned to {pinned} shard(s); "
                f"got --shards {shards} (re-ringing would strand existing rows)"
            )
        self.shards = int(shards)
        self.ring = ConsistentHashRing(self.shards)
        self._stores = [
            SQLiteJobStore(self.path / f"shard-{index:02d}.db", busy_timeout=busy_timeout)
            for index in range(self.shards)
        ]

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def shard_of(self, digest: str) -> int:
        """The shard index owning ``digest`` (exposed for wakeup targeting)."""
        return self.ring.shard_of(digest)

    def _owner(self, digest: str) -> SQLiteJobStore:
        return self._stores[self.ring.shard_of(digest)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def schema_version(self) -> int:
        return self._stores[0].schema_version

    def close(self) -> None:
        for store in self._stores:
            store.close()

    def __enter__(self) -> "ShardedJobStore":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission (route by digest; dedup inherited from the owning shard)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: Union[Request, Dict[str, Any]],
        trace_id: Optional[str] = None,
    ) -> Tuple[JobRecord, bool]:
        parsed, payload, digest = canonical_request(request)
        return self._owner(digest).submit(parsed, trace_id=trace_id)

    def submit_many(
        self,
        requests: Sequence[Union[Request, Dict[str, Any]]],
        trace_id: Optional[str] = None,
    ) -> List[Tuple[JobRecord, bool]]:
        """Batch submit, grouped so each shard gets one transaction.

        Results come back in input order, exactly like the single file.
        """
        routed: List[Tuple[int, Request]] = []
        for request in requests:
            parsed, _, digest = canonical_request(request)
            routed.append((self.ring.shard_of(digest), parsed))
        by_shard: Dict[int, List[int]] = {}
        for position, (shard, _) in enumerate(routed):
            by_shard.setdefault(shard, []).append(position)
        results: List[Optional[Tuple[JobRecord, bool]]] = [None] * len(routed)
        for shard, positions in by_shard.items():
            batch = self._stores[shard].submit_many(
                [routed[p][1] for p in positions], trace_id=trace_id
            )
            for position, outcome in zip(positions, batch):
                results[position] = outcome
        return [outcome for outcome in results if outcome is not None]

    # ------------------------------------------------------------------ #
    # Worker side: globally-FIFO claims across shards
    # ------------------------------------------------------------------ #
    def claim(
        self, worker: str, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> Optional[JobRecord]:
        batch = self.claim_batch(worker, limit=1, max_attempts=max_attempts)
        return batch[0] if batch else None

    def claim_batch(
        self, worker: str, limit: int = 1, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> List[JobRecord]:
        """Claim up to ``limit`` oldest queued jobs **across all shards**.

        Peek-then-targeted-claim: every shard reports its oldest claimable
        digests, the coordinator merges them into one global
        ``(created_at, digest)`` order and claims the winners with atomic
        per-digest updates on their owning shards.  A candidate another
        handle claimed between peek and claim simply comes back ``None``
        and the next merge round replaces it, so exactly-once holds
        without any cross-shard lock.  Each claim round is bounded; an
        adversarial stream of races degrades to fewer jobs per call, never
        to a duplicate claim.
        """
        if limit < 1:
            raise ValueError("claim_batch limit must be at least 1")
        for store in self._stores:
            store.sweep_exhausted(max_attempts)
        claimed: List[JobRecord] = []
        for _ in range(3):  # re-peek rounds after lost races
            want = int(limit) - len(claimed)
            if want <= 0:
                break
            candidates: List[Tuple[float, str, int]] = []
            for index, store in enumerate(self._stores):
                for digest, created_at in store.peek_queued(want, max_attempts):
                    candidates.append((created_at, digest, index))
            candidates.sort()
            if not candidates:
                break
            lost_race = False
            for created_at, digest, index in candidates[:want]:
                record = self._stores[index].claim_digest(worker, digest, max_attempts)
                if record is not None:
                    claimed.append(record)
                else:
                    lost_race = True
            if not lost_race:
                break
        claimed.sort(key=lambda record: (record.created_at, record.digest))
        return claimed

    def complete(self, digest: str, result: Dict[str, Any], worker: Optional[str] = None) -> bool:
        return self._owner(digest).complete(digest, result, worker)

    def upgrade_result(
        self, digest: str, result: Dict[str, Any], worker: Optional[str] = None
    ) -> bool:
        return self._owner(digest).upgrade_result(digest, result, worker)

    def fail(self, digest: str, error: str, worker: Optional[str] = None) -> bool:
        return self._owner(digest).fail(digest, error, worker)

    def requeue_orphans(self) -> int:
        return sum(store.requeue_orphans() for store in self._stores)

    # ------------------------------------------------------------------ #
    # Lookups and metrics (merged views)
    # ------------------------------------------------------------------ #
    def get(self, digest: str) -> Optional[JobRecord]:
        return self._owner(digest).get(digest)

    def jobs(self, state: Optional[str] = None, limit: int = 1000) -> List[JobRecord]:
        if state is not None and state not in STATES:
            raise ValueError(f"unknown job state {state!r}; valid: {', '.join(STATES)}")
        merged: List[JobRecord] = []
        for store in self._stores:
            merged.extend(store.jobs(state=state, limit=limit))
        merged.sort(key=lambda record: (-record.created_at, record.digest))
        return merged[: int(limit)]

    def counts(self) -> Dict[str, int]:
        totals = dict.fromkeys(STATES, 0)
        for store in self._stores:
            for key, value in store.counts().items():
                totals[key] += value
        return totals

    def queue_depth(self) -> int:
        return sum(store.queue_depth() for store in self._stores)

    def solve_latency_samples(self, limit: int = 2048) -> List[Tuple[float, float]]:
        merged: List[Tuple[float, float]] = []
        for store in self._stores:
            merged.extend(store.solve_latency_samples(limit))
        merged.sort(key=lambda sample: -sample[0])
        return merged[: int(limit)]

    def solve_latencies(self, limit: int = 2048) -> List[float]:
        return [max(0.0, seconds) for _, seconds in self.solve_latency_samples(limit)]

    def stage_latency_samples(self, limit: int = 2048) -> Dict[str, List[float]]:
        merged: Dict[str, List[float]] = {"queue_wait": [], "serialize": [], "served": []}
        for store in self._stores:
            for key, values in store.stage_latency_samples(limit).items():
                merged[key].extend(values)
        return {key: values[: int(limit)] for key, values in merged.items()}

    def layout_info(self) -> Dict[str, Any]:
        """Per-shard queue depths — the shard-imbalance view ``/healthz`` serves."""
        return {
            "backend": "sharded",
            "shards": self.shards,
            "shard_queue_depths": [store.queue_depth() for store in self._stores],
        }

    # ------------------------------------------------------------------ #
    # Trace-span sidecar (digest-routed, same shard as the job row)
    # ------------------------------------------------------------------ #
    def save_spans(
        self,
        digest: str,
        source: str,
        payload: Dict[str, Any],
        trace_id: Optional[str] = None,
    ) -> None:
        self._owner(digest).save_spans(digest, source, payload, trace_id=trace_id)

    def load_spans(self, digest: str) -> Dict[str, Dict[str, Any]]:
        return self._owner(digest).load_spans(digest)

    # ------------------------------------------------------------------ #
    # Warm topology sidecar (digest-routed writes, fleet-wide reads)
    # ------------------------------------------------------------------ #
    def save_topology(self, digest: str, payload: bytes) -> bool:
        return self._stores[self.ring.shard_of(digest)].save_topology(digest, payload)

    def load_topologies(self, exclude: Optional[Sequence[str]] = None) -> Dict[str, bytes]:
        payloads: Dict[str, bytes] = {}
        for store in self._stores:
            payloads.update(store.load_topologies(exclude))
        return payloads

    def topology_digests(self) -> List[str]:
        digests = set()
        for store in self._stores:
            digests.update(store.topology_digests())
        return sorted(digests)

    # ------------------------------------------------------------------ #
    # Worker beacons (worker-id-routed, so each snapshot lives once)
    # ------------------------------------------------------------------ #
    def record_worker_stats(self, worker: str, counters: Dict[str, float]) -> None:
        self._stores[self.ring.shard_of(worker)].record_worker_stats(worker, counters)

    def worker_ids(self) -> List[str]:
        ids = set()
        for store in self._stores:
            ids.update(store.worker_ids())
        return sorted(ids)

    def worker_stats_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for store in self._stores:
            for key, value in store.worker_stats_totals().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals


__all__ = [
    "ConsistentHashRing",
    "ShardedJobStore",
    "VNODES_PER_SHARD",
    "shard_count",
]
