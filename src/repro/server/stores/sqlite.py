"""The single-file SQLite job store: a durable queue + result cache.

One database file holds every job a daemon has ever accepted, which is what
makes the service crash-safe: an accepted job survives daemon restarts,
worker crashes and power loss, and a finished job's envelope is served from
disk forever after (idempotent re-submission of the same request returns
the stored row instead of recomputing).  This is the reference
implementation of the :class:`~repro.server.stores.base.JobStoreBackend`
contract; the sharded backend composes N of these.

Schema (version 4)
------------------
``PRAGMA user_version`` carries the schema version.  Four tables:

``jobs``
    One row per accepted request, keyed by the library-wide
    :func:`~repro.api.requests.config_digest` of the canonical request
    payload — the same digest the engine's result cache and the service
    session use, so "the same job" means the same thing at every layer.

    =================  =======  ================================================
    column             type     meaning
    =================  =======  ================================================
    digest             TEXT PK  ``config_digest(request.to_dict())``
    kind               TEXT     ``recovery`` or ``assessment``
    request            TEXT     canonical request payload (JSON)
    state              TEXT     ``queued`` / ``running`` / ``done`` / ``failed``
    result             TEXT     versioned result envelope (JSON), once ``done``
    error              TEXT     failure detail, once ``failed``
    attempts           INTEGER  how many times a worker claimed the job
    worker             TEXT     id of the worker that (last) claimed the job
    created_at         REAL     unix time of first submission
    started_at         REAL     unix time of the (last) claim
    finished_at        REAL     unix time the envelope reached its current form
    first_finished_at  REAL     unix time of the *first* completion (version 3)
    trace_id           TEXT     trace id of the creating submission (version 4)
    serialize_seconds  REAL     envelope ``json.dumps`` cost at completion (v4)
    =================  =======  ================================================

    ``finished_at`` moves when a portfolio upgrade replaces a done
    envelope in place; ``first_finished_at`` never does — it is what the
    ``/metrics`` solve-latency histogram measures (claim → first answer).
    ``trace_id`` is telemetry only: it rides *next to* the request, never
    inside it, so it can never perturb the digest or the envelope.
    ``serialize_seconds`` likewise sticks to the first completion — the
    serialize-stage histogram measures the serve path, not upgrades.

``worker_stats``
    One row per worker id: a JSON object of monotonic counters (jobs done,
    topology-cache hits/misses, solver effort) refreshed after every job so
    the daemon's ``/metrics`` can aggregate fleet-wide totals without
    talking to worker processes.

``topology_cache`` (version 2)
    The fleet-shared warm cache of *pristine* deterministic topologies:
    one serialized :class:`~repro.network.supply.SupplyGraph` per topology
    digest.  The first worker to build a topology persists it; every other
    worker (and every later daemon run) loads it instead of paying the
    build again.  Rows are write-once — a digest names exactly one
    deterministic build, so the payload never changes.

``trace_spans`` (version 4)
    The cross-process span sidecar: one JSON span-tree payload per
    ``(digest, source)``, where ``source`` is ``frontend`` (written at
    submission by the HTTP ingress) or ``worker`` (written when the
    claiming worker finishes).  ``GET /v1/trace/{digest}`` merges the
    sources into one trace.  Rows are upserted — a retried execution
    replaces the stale worker tree — and live outside the job row so the
    envelope fast path never touches (or re-serializes) telemetry.

Migration policy
----------------
Opening a database whose ``user_version`` is *newer* than this library
raises :class:`StoreSchemaError` (never guess at a future format).  An
*older* version is migrated in-place inside one transaction by the
``_MIGRATIONS`` chain (version 2 adds ``topology_cache``; version 3 adds
``jobs.first_finished_at``, backfilled from ``finished_at`` — the best
available approximation for rows that predate the split; version 4 adds
``jobs.trace_id``/``jobs.serialize_seconds`` and the ``trace_spans``
sidecar — pre-existing rows simply carry no telemetry).  Removing or
renaming a column requires a new version — the store never alters the
meaning of an existing column in place.

Concurrency
-----------
WAL journal mode lets the HTTP front end read (counts, job lookups) while
workers write.  Every mutating operation is a single atomic statement
(``UPDATE ... RETURNING`` for claims, ``INSERT ... ON CONFLICT`` for
submissions), so any number of worker *processes* can share one database:
two workers racing for the same queued job get it exactly once, and a
worker killed mid-job (even ``kill -9``) leaves a ``running`` row that
:meth:`SQLiteJobStore.requeue_orphans` returns to the queue on daemon
startup.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.logging import get_logger
from repro.obs.trace import record_timed
from repro.server.stores.base import (
    DEFAULT_MAX_ATTEMPTS,
    Request,
    STATES,
    StoreSchemaError,
    canonical_request,
)

#: Bump when a column changes meaning; see the migration policy above.
SCHEMA_VERSION = 4

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class JobRecord:
    """One row of the ``jobs`` table, as plain data."""

    digest: str
    kind: str
    request: Dict[str, Any]
    state: str
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 0
    worker: Optional[str] = None
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    first_finished_at: Optional[float] = None
    trace_id: Optional[str] = None
    serialize_seconds: Optional[float] = None

    def to_dict(self, include_request: bool = True) -> Dict[str, Any]:
        """The wire shape of a job (what ``GET /v1/jobs/{digest}`` returns)."""
        payload: Dict[str, Any] = {
            "digest": self.digest,
            "kind": self.kind,
            "state": self.state,
            "attempts": self.attempts,
            "worker": self.worker,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "first_finished_at": self.first_finished_at,
            "trace_id": self.trace_id,
        }
        if include_request:
            payload["request"] = self.request
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _record(row: sqlite3.Row) -> JobRecord:
    return JobRecord(
        digest=row["digest"],
        kind=row["kind"],
        request=json.loads(row["request"]),
        state=row["state"],
        result=json.loads(row["result"]) if row["result"] is not None else None,
        error=row["error"],
        attempts=int(row["attempts"]),
        worker=row["worker"],
        created_at=float(row["created_at"]),
        started_at=None if row["started_at"] is None else float(row["started_at"]),
        finished_at=None if row["finished_at"] is None else float(row["finished_at"]),
        first_finished_at=(
            None
            if row["first_finished_at"] is None
            else float(row["first_finished_at"])
        ),
        trace_id=row["trace_id"],
        serialize_seconds=(
            None
            if row["serialize_seconds"] is None
            else float(row["serialize_seconds"])
        ),
    )


_CREATE_JOBS = """
CREATE TABLE IF NOT EXISTS jobs (
    digest            TEXT PRIMARY KEY,
    kind              TEXT NOT NULL,
    request           TEXT NOT NULL,
    state             TEXT NOT NULL CHECK (state IN ('queued', 'running', 'done', 'failed')),
    result            TEXT,
    error             TEXT,
    attempts          INTEGER NOT NULL DEFAULT 0,
    worker            TEXT,
    created_at        REAL NOT NULL,
    started_at        REAL,
    finished_at       REAL,
    first_finished_at REAL,
    trace_id          TEXT,
    serialize_seconds REAL
)
"""

_CREATE_JOBS_STATE_INDEX = """
CREATE INDEX IF NOT EXISTS jobs_state_created ON jobs (state, created_at)
"""

_CREATE_WORKER_STATS = """
CREATE TABLE IF NOT EXISTS worker_stats (
    worker     TEXT PRIMARY KEY,
    updated_at REAL NOT NULL,
    counters   TEXT NOT NULL
)
"""

_CREATE_TOPOLOGY_CACHE = """
CREATE TABLE IF NOT EXISTS topology_cache (
    digest     TEXT PRIMARY KEY,
    payload    BLOB NOT NULL,
    created_at REAL NOT NULL
)
"""

_CREATE_TRACE_SPANS = """
CREATE TABLE IF NOT EXISTS trace_spans (
    digest     TEXT NOT NULL,
    source     TEXT NOT NULL,
    trace_id   TEXT,
    payload    TEXT NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (digest, source)
)
"""

#: version -> statements upgrading *to* that version (applied in order for
#: every version above the database's).
_MIGRATIONS: Dict[int, Tuple[str, ...]] = {
    2: (_CREATE_TOPOLOGY_CACHE,),
    3: (
        "ALTER TABLE jobs ADD COLUMN first_finished_at REAL",
        # Best available backfill: rows written before the split measured
        # claim -> final envelope; treating that as the first completion
        # keeps their histogram contribution unchanged.
        "UPDATE jobs SET first_finished_at = finished_at WHERE finished_at IS NOT NULL",
    ),
    4: (
        # Telemetry rides beside the request, never inside it: existing
        # rows simply carry no trace id and no stage timings.
        "ALTER TABLE jobs ADD COLUMN trace_id TEXT",
        "ALTER TABLE jobs ADD COLUMN serialize_seconds REAL",
        _CREATE_TRACE_SPANS,
    ),
}


class SQLiteJobStore:
    """A process's handle on one shared job database file.

    Each process (HTTP front end, every worker) opens its own store; SQLite
    coordinates them through the database file.  The handle is cheap — one
    connection in autocommit mode with a busy timeout, so concurrent
    writers queue behind each other instead of failing.
    """

    def __init__(self, path: Union[str, Path], busy_timeout: float = 10.0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, timeout=busy_timeout, isolation_level=None, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
        self._ensure_schema()

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #
    def _ensure_schema(self) -> None:
        version = int(self._conn.execute("PRAGMA user_version").fetchone()[0])
        if version > SCHEMA_VERSION:
            raise StoreSchemaError(
                f"job store {self.path} has schema version {version}, "
                f"this library understands <= {SCHEMA_VERSION}"
            )
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            if version == 0:
                self._conn.execute(_CREATE_JOBS)
                self._conn.execute(_CREATE_JOBS_STATE_INDEX)
                self._conn.execute(_CREATE_WORKER_STATS)
                self._conn.execute(_CREATE_TOPOLOGY_CACHE)
                self._conn.execute(_CREATE_TRACE_SPANS)
            else:
                for target in range(version + 1, SCHEMA_VERSION + 1):
                    for statement in _MIGRATIONS.get(target, ()):
                        self._conn.execute(statement)
            self._conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        if 0 < version < SCHEMA_VERSION:
            _LOG.info(
                "store schema migrated",
                extra={
                    "db": str(self.path),
                    "from_version": version,
                    "to_version": SCHEMA_VERSION,
                },
            )

    @property
    def schema_version(self) -> int:
        return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SQLiteJobStore":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission (idempotent by digest)
    # ------------------------------------------------------------------ #
    _REQUEUE_FAILED = (
        "UPDATE jobs SET state = 'queued', error = NULL, attempts = 0, "
        "worker = NULL, started_at = NULL, finished_at = NULL, "
        "first_finished_at = NULL "
        "WHERE digest = ? AND state = 'failed'"
    )

    def submit(
        self,
        request: Union[Request, Dict[str, Any]],
        trace_id: Optional[str] = None,
    ) -> Tuple[JobRecord, bool]:
        """Accept ``request`` and return ``(record, created)``.

        The request is canonicalised through the schema classes first, so
        two payloads describing the same instance (however the client
        ordered or defaulted their fields) land on the same digest.  A
        digest already present is returned as-is (``created=False``) — the
        dedup that makes retries and duplicate clients free.  One
        exception: a previously *failed* job is requeued by resubmission
        (fresh attempt budget), because the client asking again is the
        natural retry trigger.

        ``trace_id`` (telemetry only — it never feeds the digest) is
        stamped on the row the submission *creates*; a dedup hit keeps the
        creating submission's id, so a job's trace is the trace of the
        request that caused the work.
        """
        parsed, payload, digest = canonical_request(request)
        cursor = self._conn.execute(
            """
            INSERT INTO jobs (digest, kind, request, state, created_at, trace_id)
            VALUES (?, ?, ?, 'queued', ?, ?)
            ON CONFLICT (digest) DO NOTHING
            """,
            (digest, parsed.kind, json.dumps(payload, sort_keys=True), time.time(), trace_id),
        )
        created = cursor.rowcount == 1
        if not created:
            self._conn.execute(self._REQUEUE_FAILED, (digest,))
        record = self.get(digest)
        assert record is not None
        return record, created

    def submit_many(
        self,
        requests: Sequence[Union[Request, Dict[str, Any]]],
        trace_id: Optional[str] = None,
    ) -> List[Tuple[JobRecord, bool]]:
        """Accept a batch of requests in **one transaction**.

        Semantically identical to calling :meth:`submit` per item (same
        dedup, same failed-row requeue), but the whole batch costs a single
        WAL commit instead of one per job — the round-trip that makes an
        8-request burst as cheap as one submission.  ``trace_id`` (one
        HTTP request, one trace) is stamped on every row the batch creates.
        """
        parsed_items: List[Tuple[Request, str, str]] = []
        for request in requests:
            parsed, payload, digest = canonical_request(request)
            parsed_items.append((parsed, digest, json.dumps(payload, sort_keys=True)))

        results: List[Tuple[str, bool]] = []
        now = time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            for parsed, digest, payload_json in parsed_items:
                cursor = self._conn.execute(
                    """
                    INSERT INTO jobs (digest, kind, request, state, created_at, trace_id)
                    VALUES (?, ?, ?, 'queued', ?, ?)
                    ON CONFLICT (digest) DO NOTHING
                    """,
                    (digest, parsed.kind, payload_json, now, trace_id),
                )
                created = cursor.rowcount == 1
                if not created:
                    self._conn.execute(self._REQUEUE_FAILED, (digest,))
                results.append((digest, created))
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        records: List[Tuple[JobRecord, bool]] = []
        for digest, created in results:
            record = self.get(digest)
            assert record is not None
            records.append((record, created))
        return records

    # ------------------------------------------------------------------ #
    # Worker side: claim / complete / fail
    # ------------------------------------------------------------------ #
    def claim(
        self, worker: str, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> Optional[JobRecord]:
        """Atomically move the oldest queued job to ``running`` for ``worker``.

        A batch claim of size one — see :meth:`claim_batch` for the
        guarantees.
        """
        batch = self.claim_batch(worker, limit=1, max_attempts=max_attempts)
        return batch[0] if batch else None

    def sweep_exhausted(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> int:
        """Fail queued jobs whose attempt budget is spent; return the count.

        The sweep runs ahead of every claim so a poison job (one that
        keeps crashing its worker) is failed instead of handed out again.
        Two deliberate behaviours:

        * **no-op means no write** — the common case (nothing exhausted)
          is answered by an index-only read, so claim polls on an idle or
          healthy queue never take the write lock;
        * **the root cause survives** — any error already recorded on the
          row (the requeue breadcrumb naming the vanished worker, or a
          detail an external tool stored) is appended to the give-up
          message instead of being overwritten.
        """
        exhausted = self._conn.execute(
            "SELECT 1 FROM jobs WHERE state = 'queued' AND attempts >= ? LIMIT 1",
            (int(max_attempts),),
        ).fetchone()
        if exhausted is None:
            return 0
        cursor = self._conn.execute(
            """
            UPDATE jobs
            SET state = 'failed', finished_at = ?,
                error = 'gave up after ' || attempts || ' failed attempt(s)'
                        || CASE
                               WHEN error IS NOT NULL AND error != ''
                               THEN '; last error: ' || error
                               ELSE ''
                           END
            WHERE state = 'queued' AND attempts >= ?
            """,
            (time.time(), int(max_attempts)),
        )
        return cursor.rowcount

    def claim_batch(
        self, worker: str, limit: int = 1, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> List[JobRecord]:
        """Atomically claim up to ``limit`` oldest queued jobs for ``worker``.

        Exactly one of any number of racing workers receives a given job —
        the single ``UPDATE ... RETURNING`` statement is the whole
        transaction, so a burst of N jobs costs one store round-trip
        instead of N claim polls.  Jobs whose attempt budget is exhausted
        (requeued after repeatedly crashing their worker) are failed
        instead of handed out again.  Every claimed job carries the same
        claim-holder guard as a single claim: :meth:`complete` and
        :meth:`fail` only land while the row is ``running`` under
        ``worker``, and a worker crashing mid-batch leaves every claimed
        row ``running`` for :meth:`requeue_orphans` to recover.
        """
        if limit < 1:
            raise ValueError("claim_batch limit must be at least 1")
        self.sweep_exhausted(max_attempts)
        rows = self._conn.execute(
            """
            UPDATE jobs
            SET state = 'running', worker = ?, started_at = ?, attempts = attempts + 1
            WHERE digest IN (
                SELECT digest FROM jobs
                WHERE state = 'queued' AND attempts < ?
                ORDER BY created_at, digest LIMIT ?
            ) AND state = 'queued'
            RETURNING *
            """,
            (worker, time.time(), int(max_attempts), int(limit)),
        ).fetchall()
        records = [_record(row) for row in rows]
        records.sort(key=lambda record: (record.created_at, record.digest))
        return records

    # ------------------------------------------------------------------ #
    # Coordinator plumbing (used by the sharded backend, not part of the
    # JobStoreBackend contract)
    # ------------------------------------------------------------------ #
    def peek_queued(
        self, limit: int, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> List[Tuple[str, float]]:
        """``(digest, created_at)`` of the oldest claimable queued jobs.

        A read-only preview — the rows stay queued.  The sharded
        coordinator peeks every shard, merges globally by
        ``(created_at, digest)`` and then claims the winners one by one
        with :meth:`claim_digest`.
        """
        rows = self._conn.execute(
            """
            SELECT digest, created_at FROM jobs
            WHERE state = 'queued' AND attempts < ?
            ORDER BY created_at, digest LIMIT ?
            """,
            (int(max_attempts), int(limit)),
        ).fetchall()
        return [(row["digest"], float(row["created_at"])) for row in rows]

    def claim_digest(
        self, worker: str, digest: str, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> Optional[JobRecord]:
        """Atomically claim one *specific* queued job, or None if lost.

        The targeted twin of :meth:`claim_batch`: the single
        ``UPDATE ... RETURNING`` keeps the exactly-once guarantee, so a
        coordinator race (two handles claiming the same peeked digest)
        resolves to one winner and one clean ``None``.
        """
        row = self._conn.execute(
            """
            UPDATE jobs
            SET state = 'running', worker = ?, started_at = ?, attempts = attempts + 1
            WHERE digest = ? AND state = 'queued' AND attempts < ?
            RETURNING *
            """,
            (worker, time.time(), digest, int(max_attempts)),
        ).fetchone()
        return _record(row) if row is not None else None

    def _finish(self, digest: str, worker: Optional[str], assignments: str, values: Tuple) -> bool:
        """Terminal-state update, guarded so only the claim holder lands it.

        A worker that lost its claim — its ``running`` row was requeued by
        a daemon restart and handed to someone else — must not overwrite
        the new holder's outcome, so the update only matches a ``running``
        row (and, when ``worker`` is given, one still assigned to that
        worker).  Returns whether the write landed.
        """
        guard = "state = 'running'"
        params = tuple(values) + (digest,)
        if worker is not None:
            guard += " AND worker = ?"
            params += (worker,)
        cursor = self._conn.execute(
            f"UPDATE jobs SET {assignments} WHERE digest = ? AND {guard}", params
        )
        return cursor.rowcount == 1

    def complete(self, digest: str, result: Dict[str, Any], worker: Optional[str] = None) -> bool:
        """Store ``result`` and move the job to ``done`` (claim holder only).

        Both completion stamps are set to the same instant:
        ``first_finished_at`` stays put through later portfolio upgrades
        (it is what the latency histogram measures), while ``finished_at``
        tracks the envelope's final form.  Any requeue breadcrumb in
        ``error`` is cleared — a done row answered cleanly.

        The envelope's ``json.dumps`` cost is measured here (this *is*
        the serving path's serialize stage) and stored in
        ``serialize_seconds`` for the ``/metrics`` histogram; it also
        lands as a ``store.serialize`` span when a trace is active.
        """
        serialize_started = time.perf_counter()
        encoded = json.dumps(result, sort_keys=True)
        serialize_seconds = time.perf_counter() - serialize_started
        record_timed("store.serialize", serialize_seconds, bytes=len(encoded))
        now = time.time()
        return self._finish(
            digest,
            worker,
            "state = 'done', result = ?, error = NULL, finished_at = ?, "
            "first_finished_at = ?, serialize_seconds = ?",
            (encoded, now, now, serialize_seconds),
        )

    def upgrade_result(
        self, digest: str, result: Dict[str, Any], worker: Optional[str] = None
    ) -> bool:
        """Replace the stored envelope of a **done** job in place.

        The portfolio path completes a job early with its heuristic
        envelope (so pollers see an answer immediately) and calls this when
        the exact solve lands.  The update only matches a ``done`` row —
        and, when ``worker`` is given, one finished by that worker — so a
        row that was requeued and re-executed elsewhere keeps the new
        holder's outcome.  ``finished_at`` is refreshed (it marks when the
        envelope reached its final form); ``first_finished_at`` is *not* —
        the solve-latency histogram measures claim → first answer, and an
        upgrade is a better answer, not a slower one.
        """
        guard = "state = 'done'"
        params: Tuple = (json.dumps(result, sort_keys=True), time.time(), digest)
        if worker is not None:
            guard += " AND worker = ?"
            params += (worker,)
        cursor = self._conn.execute(
            f"UPDATE jobs SET result = ?, finished_at = ? WHERE digest = ? AND {guard}",
            params,
        )
        return cursor.rowcount == 1

    def fail(self, digest: str, error: str, worker: Optional[str] = None) -> bool:
        """Record ``error`` and move the job to ``failed`` (claim holder only)."""
        return self._finish(
            digest,
            worker,
            "state = 'failed', error = ?, finished_at = ?",
            (str(error), time.time()),
        )

    def requeue_orphans(self) -> int:
        """Return every ``running`` job to the queue (daemon startup).

        A ``running`` row with no live worker is a crashed execution; its
        attempt count is preserved, so a job that keeps killing workers
        exhausts :data:`DEFAULT_MAX_ATTEMPTS` and fails instead of cycling
        forever.  A breadcrumb naming the vanished worker is recorded in
        ``error`` so the poison sweep can report a root cause when the
        budget runs out (a later clean completion clears it).  A
        still-live worker whose job gets requeued out from under it (e.g.
        an external worker across a daemon restart) cannot corrupt the
        re-execution: :meth:`complete`/:meth:`fail` only land while the
        row is ``running`` under the caller's claim.
        """
        cursor = self._conn.execute(
            """
            UPDATE jobs
            SET state = 'queued', started_at = NULL,
                error = 'worker ''' || COALESCE(worker, '?')
                        || ''' vanished mid-execution (attempt ' || attempts || ')',
                worker = NULL
            WHERE state = 'running'
            """
        )
        return cursor.rowcount

    # ------------------------------------------------------------------ #
    # Lookups and metrics
    # ------------------------------------------------------------------ #
    def get(self, digest: str) -> Optional[JobRecord]:
        row = self._conn.execute("SELECT * FROM jobs WHERE digest = ?", (digest,)).fetchone()
        return _record(row) if row is not None else None

    def jobs(self, state: Optional[str] = None, limit: int = 1000) -> List[JobRecord]:
        """The newest ``limit`` jobs, optionally filtered by state."""
        if state is not None and state not in STATES:
            raise ValueError(f"unknown job state {state!r}; valid: {', '.join(STATES)}")
        if state is None:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY created_at DESC LIMIT ?", (int(limit),)
            )
        else:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE state = ? ORDER BY created_at DESC LIMIT ?",
                (state, int(limit)),
            )
        return [_record(row) for row in rows.fetchall()]

    def counts(self) -> Dict[str, int]:
        """Job counts by state (every state present, zero-filled)."""
        totals = dict.fromkeys(STATES, 0)
        for row in self._conn.execute("SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"):
            totals[row["state"]] = int(row["n"])
        return totals

    def queue_depth(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM jobs WHERE state = 'queued'").fetchone()
        return int(row[0])

    def solve_latency_samples(self, limit: int = 2048) -> List[Tuple[float, float]]:
        """``(completed_at, seconds)`` of the newest done jobs, newest first.

        ``seconds`` is claim → **first** completion: a portfolio upgrade
        refreshes ``finished_at`` but must not re-enter the histogram
        window with a claim → final-upgrade duration, so both the window
        ordering and the duration use ``first_finished_at`` (falling back
        to ``finished_at`` only for pre-version-3 rows).
        """
        rows = self._conn.execute(
            """
            SELECT COALESCE(first_finished_at, finished_at) AS completed_at,
                   COALESCE(first_finished_at, finished_at) - started_at AS seconds
            FROM jobs
            WHERE state = 'done' AND started_at IS NOT NULL AND finished_at IS NOT NULL
            ORDER BY completed_at DESC LIMIT ?
            """,
            (int(limit),),
        ).fetchall()
        return [(float(row["completed_at"]), float(row["seconds"])) for row in rows]

    def solve_latencies(self, limit: int = 2048) -> List[float]:
        """Execution seconds (claim to first completion) of the newest done jobs."""
        return [max(0.0, seconds) for _, seconds in self.solve_latency_samples(limit)]

    def stage_latency_samples(self, limit: int = 2048) -> Dict[str, List[float]]:
        """Per-stage latency samples of the newest done jobs.

        Three sample sets feed the ``/metrics`` stage histograms:

        * ``queue_wait`` — submission → (last) claim;
        * ``serialize`` — the envelope's ``json.dumps`` cost at completion;
        * ``served`` — submission → first completion, the end-to-end
          latency a polling client experiences (portfolio upgrades do not
          re-enter, same rule as the solve-latency histogram).
        """
        rows = self._conn.execute(
            """
            SELECT created_at, started_at, serialize_seconds,
                   COALESCE(first_finished_at, finished_at) AS completed_at
            FROM jobs
            WHERE state = 'done' AND started_at IS NOT NULL AND finished_at IS NOT NULL
            ORDER BY completed_at DESC LIMIT ?
            """,
            (int(limit),),
        ).fetchall()
        samples: Dict[str, List[float]] = {"queue_wait": [], "serialize": [], "served": []}
        for row in rows:
            samples["queue_wait"].append(
                max(0.0, float(row["started_at"]) - float(row["created_at"]))
            )
            if row["serialize_seconds"] is not None:
                samples["serialize"].append(max(0.0, float(row["serialize_seconds"])))
            samples["served"].append(
                max(0.0, float(row["completed_at"]) - float(row["created_at"]))
            )
        return samples

    def layout_info(self) -> Dict[str, Any]:
        """The store's physical layout, for ``/healthz`` (operator view)."""
        return {
            "backend": "sqlite",
            "shards": 1,
            "shard_queue_depths": [self.queue_depth()],
        }

    # ------------------------------------------------------------------ #
    # Trace-span sidecar (one JSON span tree per (digest, source))
    # ------------------------------------------------------------------ #
    def save_spans(
        self,
        digest: str,
        source: str,
        payload: Dict[str, Any],
        trace_id: Optional[str] = None,
    ) -> None:
        """Upsert one source's span tree for ``digest``.

        Upsert (not write-once like the topology sidecar): a retried
        execution replaces the stale worker tree, and the newest spans are
        the ones that describe the row a client can fetch.
        """
        self._conn.execute(
            "INSERT INTO trace_spans (digest, source, trace_id, payload, created_at) "
            "VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT (digest, source) DO UPDATE SET trace_id = excluded.trace_id, "
            "payload = excluded.payload, created_at = excluded.created_at",
            (digest, str(source), trace_id, json.dumps(payload, sort_keys=True), time.time()),
        )

    def load_spans(self, digest: str) -> Dict[str, Dict[str, Any]]:
        """Every stored span tree for ``digest``, keyed by source."""
        trees: Dict[str, Dict[str, Any]] = {}
        for row in self._conn.execute(
            "SELECT source, payload FROM trace_spans WHERE digest = ?", (digest,)
        ):
            try:
                trees[row["source"]] = json.loads(row["payload"])
            except ValueError:
                continue  # a corrupt sidecar row must never break the trace view
        return trees

    # ------------------------------------------------------------------ #
    # Fleet-shared warm topology cache (write-once by digest)
    # ------------------------------------------------------------------ #
    def save_topology(self, digest: str, payload: bytes) -> bool:
        """Persist one serialized pristine topology; returns whether stored.

        Write-once: a digest names exactly one deterministic build, so a
        second worker racing to save the same topology is a no-op.
        """
        cursor = self._conn.execute(
            "INSERT INTO topology_cache (digest, payload, created_at) VALUES (?, ?, ?) "
            "ON CONFLICT (digest) DO NOTHING",
            (digest, sqlite3.Binary(payload), time.time()),
        )
        return cursor.rowcount == 1

    def load_topologies(self, exclude: Optional[Sequence[str]] = None) -> Dict[str, bytes]:
        """Serialized pristine topologies by digest, skipping ``exclude``.

        Workers call this at startup (and per claimed batch) to share warm
        builds: the exclusion set keeps the refresh to rows the caller has
        not loaded yet.
        """
        known = set(exclude or ())
        payloads: Dict[str, bytes] = {}
        for row in self._conn.execute("SELECT digest, payload FROM topology_cache"):
            if row["digest"] not in known:
                payloads[row["digest"]] = bytes(row["payload"])
        return payloads

    def topology_digests(self) -> List[str]:
        """Digests currently present in the warm topology cache."""
        rows = self._conn.execute("SELECT digest FROM topology_cache ORDER BY digest")
        return [row["digest"] for row in rows.fetchall()]

    # ------------------------------------------------------------------ #
    # Worker-reported counters
    # ------------------------------------------------------------------ #
    def record_worker_stats(self, worker: str, counters: Dict[str, float]) -> None:
        """Refresh ``worker``'s counter snapshot (monotonic per worker)."""
        self._conn.execute(
            "INSERT INTO worker_stats (worker, updated_at, counters) VALUES (?, ?, ?) "
            "ON CONFLICT (worker) DO UPDATE SET updated_at = excluded.updated_at, "
            "counters = excluded.counters",
            (worker, time.time(), json.dumps(counters, sort_keys=True)),
        )

    def worker_ids(self) -> List[str]:
        """Worker ids that have reported a counter snapshot.

        Workers write their first (zeroed) snapshot as soon as their warm
        service session is built, so presence here doubles as a readiness
        beacon — the daemon's ``/healthz`` counts its own fleet's ids.
        """
        rows = self._conn.execute("SELECT worker FROM worker_stats ORDER BY worker")
        return [row["worker"] for row in rows.fetchall()]

    def worker_stats_totals(self) -> Dict[str, float]:
        """Fleet-wide counter totals (summed across worker snapshots)."""
        totals: Dict[str, float] = {}
        for row in self._conn.execute("SELECT counters FROM worker_stats"):
            try:
                counters = json.loads(row["counters"])
            except ValueError:
                continue
            for key, value in counters.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0.0) + float(value)
        return totals


#: Historical name — PR 5..8 called the single-file store ``JobStore``.
JobStore = SQLiteJobStore

__all__ = [
    "JobRecord",
    "JobStore",
    "SCHEMA_VERSION",
    "SQLiteJobStore",
]
