"""Job-store backends and the one place that chooses between them.

The rest of the server (``http``, ``workers``, ``daemon``) programs
against :class:`~repro.server.stores.base.JobStoreBackend` and calls
:func:`open_store` exactly once per process; whether the path holds one
SQLite file or a sharded fleet is decided here and nowhere else.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.server.stores.base import (
    DEFAULT_MAX_ATTEMPTS,
    JobStoreBackend,
    STATES,
    StoreSchemaError,
    canonical_request,
)
from repro.server.stores.sharded import (
    ConsistentHashRing,
    ShardedJobStore,
    shard_count,
)
from repro.server.stores.sqlite import (
    JobRecord,
    SCHEMA_VERSION,
    SQLiteJobStore,
)

#: Historical name for the single-file backend (public since PR 5).
JobStore = SQLiteJobStore


def open_store(
    path: Union[str, Path],
    shards: Optional[int] = None,
    busy_timeout: float = 10.0,
) -> JobStoreBackend:
    """Open the job store at ``path`` with the right backend.

    ``shards`` semantics:

    * ``None`` — auto-detect: attach to whatever layout already lives at
      ``path`` (a shard manifest means the fleet, anything else the
      single file).  This is what worker processes use, so they always
      agree with the daemon that created the store.
    * ``1`` — the classic single file (created if absent).
    * ``>= 2`` — the sharded fleet (created if absent; must match the
      manifest if one exists).
    """
    target = Path(path)
    if shards is None:
        pinned = shard_count(target)
        shards = pinned if pinned is not None else 1
    shards = int(shards)
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if shards == 1:
        pinned = shard_count(target)
        if pinned is not None:
            raise StoreSchemaError(
                f"shard store {target} is pinned to {pinned} shard(s); "
                f"open it with shards={pinned} (or shards=None to auto-detect)"
            )
        return SQLiteJobStore(target, busy_timeout=busy_timeout)
    return ShardedJobStore(target, shards=shards, busy_timeout=busy_timeout)


__all__ = [
    "ConsistentHashRing",
    "DEFAULT_MAX_ATTEMPTS",
    "JobRecord",
    "JobStore",
    "JobStoreBackend",
    "SCHEMA_VERSION",
    "SQLiteJobStore",
    "STATES",
    "ShardedJobStore",
    "StoreSchemaError",
    "canonical_request",
    "open_store",
    "shard_count",
]
