"""The asyncio HTTP front end of the recovery daemon.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no threads — speaking JSON:

==========================  =====================================================
endpoint                    behaviour
==========================  =====================================================
``POST /v1/solve``          submit a :class:`~repro.api.requests.RecoveryRequest`
``POST /v1/assess``         submit an :class:`~repro.api.requests.AssessmentRequest`
``POST /v1/batch``          submit ``{"requests": [...]}`` in one call
``GET /v1/jobs/{digest}``   job state + result envelope once ``done``
``GET /v1/trace/{digest}``  the job's cross-process span tree, merged by source
``GET /healthz``            liveness + queue/worker snapshot + store layout
``GET /metrics``            Prometheus text format
==========================  =====================================================

Every request runs inside a trace: the id is accepted from an inbound
``X-Repro-Trace-Id`` header (or minted), echoed back on the response, and
stamped on every job row the request creates — telemetry only, it never
feeds ``config_digest``, never rides a result envelope, and never touches
the fast path's pre-serialized bytes.  Front-end spans (read, parse,
enqueue) are persisted to the store's ``trace_spans`` sidecar for fresh
submissions so ``GET /v1/trace/{digest}`` can merge them with the claiming
worker's spans into one end-to-end tree.

Connections are **keep-alive** by default: one TCP connection serves any
number of sequential (or pipelined) requests, closing only when the client
says ``Connection: close``, speaks HTTP/1.0, or idles past the timeout.
That turns the polling client's per-request connect/teardown into a single
persistent socket — the dominant cost of the old serve path.

Submission is *asynchronous and idempotent*: the response is the durable
job row (HTTP 202 for a newly accepted job, 200 for a digest already
known — the dedup hit), and clients poll ``/v1/jobs/{digest}`` for the
result.  A digest that already holds a ``done`` envelope takes the
**in-process fast path**: the front end answers straight from a bounded
LRU of pre-serialized response bodies without touching the queue, a
worker, or ``json.dumps`` — a done row is immutable, so the bytes are
serialized once per digest and replayed verbatim.  Accepted jobs nudge the
worker fleet through ``on_enqueue`` (the daemon wires the fleet's wakeup
pipes in), so idle workers wake event-driven instead of poll-sleeping.

Admission control keeps the daemon responsive under overload: a new job
arriving while the queue holds ``max_queue_depth`` entries is rejected
with 429 (dedup hits are always admitted — they cost nothing), and
malformed payloads get 400 with the schema error message.

Store calls are synchronous SQLite operations of a few hundred
microseconds; at the request rates a single daemon serves they are cheaper
than handing them to a thread pool, so handlers call the store directly.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.api.requests import AssessmentRequest, RecoveryRequest, request_from_dict
from repro.obs.logging import get_logger, warn_rate_limited
from repro.obs.trace import (
    TRACE_HEADER,
    current_trace_id,
    normalize_trace_id,
    record_timed,
    span,
    trace_context,
)
from repro.portfolio import pending_algorithms
from repro.server.stores import JobRecord, JobStore, STATES

#: Largest accepted request body; beyond it the request is a 400.
DEFAULT_MAX_BODY_BYTES = 1_048_576

#: Queued jobs beyond which new (non-dedup) submissions are rejected (429).
DEFAULT_MAX_QUEUE_DEPTH = 256

#: Done-envelope fast-path entries retained (pre-serialized response bodies).
DEFAULT_ENVELOPE_CACHE_SIZE = 256

#: Seconds a keep-alive connection may idle between requests before the
#: server closes it (quietly — an idle close is not an error).
DEFAULT_IDLE_TIMEOUT = 30.0

#: Seconds of in-server handling beyond which a request increments the
#: slow-request counter (``serve --slow-request-threshold`` overrides).
DEFAULT_SLOW_REQUEST_THRESHOLD = 1.0

#: Histogram bucket upper bounds (seconds) for solve latency.
LATENCY_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class RecoveryServer:
    """The HTTP front end, bound to one :class:`JobStore`.

    ``workers_alive`` is a zero-argument callable reporting the live worker
    count (the daemon passes the fleet's prober; tests pass a constant), so
    the front end stays ignorant of process management.  ``worker_ids``
    (optional, same pattern) names the fleet's expected worker identities;
    with it ``/healthz`` reports ``workers_ready`` — how many of those
    workers have written their first counter snapshot, i.e. finished their
    warm-up and are claiming jobs.  ``on_enqueue`` is called after every
    submission that adds queue work (the daemon passes the fleet's wakeup
    notifier).
    """

    def __init__(
        self,
        store: JobStore,
        workers_alive: Optional[Callable[[], int]] = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        expected_workers: Optional[int] = None,
        on_enqueue: Optional[Callable[[], None]] = None,
        worker_ids: Optional[Callable[[], List[str]]] = None,
        envelope_cache_size: int = DEFAULT_ENVELOPE_CACHE_SIZE,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        request_timeout: float = 30.0,
        slow_request_threshold: float = DEFAULT_SLOW_REQUEST_THRESHOLD,
    ) -> None:
        self.store = store
        self.workers_alive = workers_alive or (lambda: 0)
        self.worker_ids = worker_ids
        self.on_enqueue = on_enqueue
        # Whether the enqueue callback accepts a shard list (the fleet's
        # notifier does; plain zero-arg callbacks from tests and external
        # integrations do not).  Decided once so the submit path never pays
        # for introspection.
        self._enqueue_accepts_shards = False
        if on_enqueue is not None:
            try:
                inspect.signature(on_enqueue).bind([0])
                self._enqueue_accepts_shards = True
            except (TypeError, ValueError):
                pass
        self.max_queue_depth = int(max_queue_depth)
        self.max_body_bytes = int(max_body_bytes)
        self.expected_workers = expected_workers
        self.envelope_cache_size = int(envelope_cache_size)
        self.idle_timeout = float(idle_timeout)
        self.request_timeout = float(request_timeout)
        self.slow_request_threshold = float(slow_request_threshold)
        self.started_at = time.time()
        self.dedup_hits = 0
        self.submissions = 0
        self.fast_path_hits = 0
        self.slow_requests = 0
        self.connections_total = 0
        self.keepalive_reuse = 0
        self.envelope_cache_hits = 0
        self.envelope_cache_misses = 0
        self.http_requests: Dict[Tuple[str, int], int] = {}
        # digest -> {"record": JobRecord, "bodies": {flavor: bytes}} for
        # *done* jobs only; a done row is immutable, so entries never go
        # stale (a failed row retried gets a fresh digest row state, but
        # failed rows are never cached).
        self._done_cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self._log = get_logger(__name__)
        # Digests whose front-end span tree should be persisted when the
        # request's trace closes.  Handlers run synchronously on the one
        # event loop, so appending here and draining in _respond never
        # interleaves across requests.
        self._trace_persist: List[str] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks a free port (see .port)."""
        self._server = await asyncio.start_server(self._handle, host=host, port=port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            # keep-alive connections would otherwise linger until their
            # idle timeout; closing them unblocks the handlers immediately
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Connection handling (keep-alive loop)
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.connections_total += 1
        self._connections.add(writer)
        served = 0
        try:
            while True:
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(), timeout=self.idle_timeout
                    )
                except (asyncio.TimeoutError, ConnectionError, OSError):
                    break  # idle or dead connection: reap quietly
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break  # peer closed (or trailing CRLF of a pipeline)
                if served:
                    self.keepalive_reuse += 1
                try:
                    status, payload, content_type, keep_alive, trace_id = await self._respond(
                        request_line, reader
                    )
                except Exception as error:  # never let a handler kill the server
                    status, payload, content_type, keep_alive, trace_id = (
                        500,
                        {"error": f"internal error: {type(error).__name__}: {error}"},
                        "application/json",
                        False,
                        None,
                    )
                served += 1
                if isinstance(payload, (bytes, bytearray)):
                    body = bytes(payload)
                elif isinstance(payload, str):
                    body = payload.encode("utf-8")
                else:
                    body = json.dumps(payload, indent=2).encode("utf-8")
                trace_header = f"{TRACE_HEADER}: {trace_id}\r\n" if trace_id else ""
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"{trace_header}"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
                )
                try:
                    writer.write(head.encode("ascii") + body)
                    await writer.drain()
                except (ConnectionError, BrokenPipeError, OSError):
                    break
                if not keep_alive:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    async def _respond(self, request_line: bytes, reader: asyncio.StreamReader):
        """Parse one request off the wire (bounded) and route it.

        The rest of the request — headers and body — shares one timeout, so
        a client that stalls mid-headers or mid-body cannot pin a
        connection coroutine (and its file descriptor) forever.  Returns
        ``(status, payload, content_type, keep_alive, trace_id)``.
        """
        read_started = time.perf_counter()
        try:
            parsed = await asyncio.wait_for(
                self._read_request(request_line, reader), timeout=self.request_timeout
            )
        except asyncio.TimeoutError:
            return 400, {"error": "timed out reading the request"}, "application/json", False, None
        except (asyncio.IncompleteReadError, ConnectionError):
            return 400, {"error": "connection closed mid-request"}, "application/json", False, None
        if isinstance(parsed, str):  # a parse error message; framing is lost
            return 400, {"error": parsed}, "application/json", False, None
        method, path, body, keep_alive, trace_header = parsed
        read_seconds = time.perf_counter() - read_started

        # The whole handler runs inside one trace: inbound id honoured,
        # otherwise minted here (the ingress point of the pipeline).
        handled_started = time.perf_counter()
        with trace_context(normalize_trace_id(trace_header)) as trace:
            with span("http.request", method=method, path=path.split("?")[0]):
                record_timed("http.read", read_seconds, bytes=len(body))
                status, payload, content_type = self._route(method, path, body)
            self._persist_frontend_spans(trace)
        handled_seconds = time.perf_counter() - handled_started
        if handled_seconds > self.slow_request_threshold:
            self.slow_requests += 1
            warn_rate_limited(
                self._log,
                "slow-request",
                "slow request",
                trace_id=trace.trace_id,
                method=method,
                path=path.split("?")[0],
                seconds=round(handled_seconds, 6),
                threshold=self.slow_request_threshold,
            )
        self._count(path, status)
        return status, payload, content_type, keep_alive, trace.trace_id

    def _persist_frontend_spans(self, trace) -> None:
        """Write this request's span tree for every digest it created.

        Only *fresh* submissions are recorded — a dedup hit belongs to the
        trace that created the row.  A batch persists the same request tree
        under each digest it created (batches are small; the duplication
        keeps every digest's trace self-contained).  Persistence is
        telemetry: a failure is logged (rate-limited) and never surfaces.
        """
        if not self._trace_persist:
            return
        digests, self._trace_persist = self._trace_persist, []
        payload = trace.to_payload()
        for digest in digests:
            try:
                self.store.save_spans(digest, "frontend", payload, trace.trace_id)
            except Exception as error:
                warn_rate_limited(
                    self._log,
                    "span-persist",
                    "failed to persist frontend spans",
                    digest=digest,
                    error=f"{type(error).__name__}: {error}",
                )

    async def _read_request(self, request_line: bytes, reader: asyncio.StreamReader):
        """Read one request; ``(method, path, body, keep_alive, trace_header)``
        or an error str."""
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return "malformed request line"
        method, path = parts[0].upper(), parts[1]
        version = parts[2].upper() if len(parts) >= 3 else "HTTP/1.1"
        keep_alive = version != "HTTP/1.0"

        content_length = 0
        trace_header: Optional[str] = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            header = name.strip().lower()
            if header == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return "malformed Content-Length"
            elif header == "connection":
                token = value.strip().lower()
                if token == "close":
                    keep_alive = False
                elif token == "keep-alive":
                    keep_alive = True
            elif header == TRACE_HEADER.lower():
                trace_header = value.strip()

        if content_length > self.max_body_bytes:
            self._count(path, 400)
            return f"request body exceeds {self.max_body_bytes} bytes"
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body, keep_alive, trace_header

    def _count(self, path: str, status: int) -> None:
        endpoint = path.split("?")[0]
        if endpoint.startswith("/v1/jobs/"):
            endpoint = "/v1/jobs"
        elif endpoint.startswith("/v1/trace/"):
            endpoint = "/v1/trace"
        key = (endpoint, int(status))
        self.http_requests[key] = self.http_requests.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    # Done-envelope fast path (bounded LRU of pre-serialized bodies)
    # ------------------------------------------------------------------ #
    def _done_entry(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached entry for a done digest, bumping LRU order on a hit."""
        entry = self._done_cache.get(digest)
        if entry is not None:
            self._done_cache.move_to_end(digest)
            self.envelope_cache_hits += 1
        return entry

    @staticmethod
    def _cacheable(record: JobRecord) -> bool:
        """Whether a done row's envelope is final (safe for the LRU).

        A portfolio job completes early with its heuristic envelope and is
        *upgraded in place* when the exact solve lands — caching bytes
        while ``portfolio.pending`` is non-empty would replay the stale
        heuristic answer forever.  Such rows are served straight from the
        store until the upgrade clears ``pending``.
        """
        return not pending_algorithms(record.result)

    def _remember_done(self, record: JobRecord) -> Dict[str, Any]:
        """Admit a freshly fetched done record into the LRU."""
        entry = self._done_cache.get(record.digest)
        if entry is None:
            self.envelope_cache_misses += 1
            entry = {"record": record, "bodies": {}}
            self._done_cache[record.digest] = entry
            while len(self._done_cache) > self.envelope_cache_size:
                self._done_cache.popitem(last=False)
        return entry

    @staticmethod
    def _done_body(entry: Dict[str, Any], flavor: str) -> bytes:
        """The pre-serialized response body; rendered once per (digest, flavor)."""
        body = entry["bodies"].get(flavor)
        if body is None:
            record: JobRecord = entry["record"]
            if flavor == "submit":
                payload = {"job": record.to_dict(include_request=False), "deduplicated": True}
            else:
                payload = {"job": record.to_dict()}
            body = json.dumps(payload, indent=2).encode("utf-8")
            entry["bodies"][flavor] = body
        return body

    def _notify_enqueue(self, digests: Sequence[str] = ()) -> None:
        """Nudge the fleet about fresh queue work.

        On a sharded store the nudge carries the owning shards of the
        enqueued digests, so the fleet can wake the workers homed on them
        instead of everyone; zero-arg callbacks (tests, external
        integrations) and single-file stores get the plain broadcast.
        """
        if self.on_enqueue is None:
            return
        try:
            shard_of = getattr(self.store, "shard_of", None)
            if self._enqueue_accepts_shards and digests and shard_of is not None:
                self.on_enqueue(sorted({shard_of(digest) for digest in digests}))
            else:
                self.on_enqueue()
        except Exception as error:
            # a wakeup nudge must never fail a submission — but a broken
            # wakeup pipe should not be invisible either (workers fall back
            # to poll-sleeping, quietly adding latency)
            warn_rate_limited(
                self._log,
                "wakeup-nudge",
                "wakeup nudge failed; workers will fall back to polling",
                error=f"{type(error).__name__}: {error}",
            )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _route(self, method: str, path: str, body: bytes):
        path = path.split("?")[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}, "application/json"
            return 200, self._healthz(), "application/json"
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}, "application/json"
            return 200, self.render_metrics(), "text/plain; version=0.0.4"
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "jobs is GET-only"}, "application/json"
            return self._job(path[len("/v1/jobs/") :])
        if path.startswith("/v1/trace/"):
            if method != "GET":
                return 405, {"error": "trace is GET-only"}, "application/json"
            return self._trace(path[len("/v1/trace/") :])
        if path in ("/v1/solve", "/v1/assess", "/v1/batch"):
            if method != "POST":
                return 405, {"error": f"{path} is POST-only"}, "application/json"
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (ValueError, UnicodeDecodeError) as error:
                return 400, {"error": f"invalid JSON body: {error}"}, "application/json"
            if not isinstance(payload, dict):
                return 400, {"error": "the request body must be a JSON object"}, "application/json"
            if path == "/v1/batch":
                return self._batch(payload)
            expected = RecoveryRequest if path == "/v1/solve" else AssessmentRequest
            return self._submit(payload, expected)
        return 404, {"error": f"unknown path {path!r}"}, "application/json"

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _parse(self, payload: Dict[str, Any], expected: Optional[type] = None):
        """Parse a request payload; ``expected=None`` accepts either kind.

        A payload without an explicit ``kind`` defaults to the expected
        kind (``recovery`` when unconstrained, matching the store default).
        """
        payload = dict(payload)
        payload.setdefault("kind", expected.kind if expected else RecoveryRequest.kind)
        try:
            request = request_from_dict(payload)
        except (KeyError, ValueError, TypeError) as error:
            raise ValueError(str(error.args[0]) if error.args else str(error)) from None
        if expected is not None and not isinstance(request, expected):
            raise ValueError(
                f"expected a {expected.kind!r} request, got kind {request.kind!r}"
            )
        return request

    def _submit(self, payload: Dict[str, Any], expected: type):
        try:
            with span("http.parse"):
                request = self._parse(payload, expected)
        except ValueError as error:
            return 400, {"error": str(error)}, "application/json"
        self.submissions += 1
        digest = request.digest()
        entry = self._done_entry(digest)
        if entry is not None:
            # fast path: the done envelope is served from the in-process
            # LRU — no queue, no worker, no re-serialization
            self.dedup_hits += 1
            self.fast_path_hits += 1
            return 200, self._done_body(entry, "submit"), "application/json"
        existing = self.store.get(digest)
        if existing is not None and existing.state != "failed":
            self.dedup_hits += 1
            if existing.state == "done" and self._cacheable(existing):
                self.fast_path_hits += 1
                return 200, self._done_body(self._remember_done(existing), "submit"), "application/json"
            return (
                200,
                {"job": existing.to_dict(include_request=False), "deduplicated": True},
                "application/json",
            )
        # One depth read decides *and* reports: a second read could disagree
        # with the one that triggered the rejection (workers drain the queue
        # between the two), making the body lie about why the client was
        # turned away.
        queue_depth = self.store.queue_depth()
        if queue_depth >= self.max_queue_depth:
            return (
                429,
                {
                    "error": "queue full",
                    "queue_depth": queue_depth,
                    "max_queue_depth": self.max_queue_depth,
                },
                "application/json",
            )
        # Reaching here the job is either new or a failed row being retried
        # — both trigger a fresh execution, so both are 202 and neither is a
        # dedup hit (a retry is requeued work, not a cached answer).
        with span("http.enqueue", digest=digest):
            record, _ = self.store.submit(request, trace_id=current_trace_id())
        self._trace_persist.append(record.digest)
        self._notify_enqueue((record.digest,))
        return (
            202,
            {"job": record.to_dict(include_request=False), "deduplicated": False},
            "application/json",
        )

    def _batch(self, payload: Dict[str, Any]):
        items = payload.get("requests")
        if not isinstance(items, list) or not items:
            return (
                400,
                {"error": 'a batch body needs a non-empty "requests" list'},
                "application/json",
            )
        requests = []
        with span("http.parse", count=len(items)):
            for index, item in enumerate(items):
                if not isinstance(item, dict):
                    return 400, {"error": f"requests[{index}] is not an object"}, "application/json"
                try:
                    # both kinds are accepted: a batch may mix solve and assess
                    requests.append(self._parse(item))
                except ValueError as error:
                    return 400, {"error": f"requests[{index}]: {error}"}, "application/json"

        # One store read per item; dedup is judged per item in order, so a
        # digest repeated *within* the batch counts too, while a failed row
        # being retried does not (it triggers a fresh execution).
        digests = [request.digest() for request in requests]
        plan: List[Tuple[str, Any]] = []  # ("done", entry) | ("dedup", record) | ("fresh", request)
        seen_fresh: Dict[str, int] = {}
        fresh: List[Any] = []
        for request, digest in zip(requests, digests):
            entry = self._done_entry(digest)
            if entry is not None:
                plan.append(("done", entry))
                continue
            if digest in seen_fresh:
                plan.append(("repeat", digest))
                continue
            existing = self.store.get(digest)
            if existing is not None and existing.state != "failed":
                if existing.state == "done" and self._cacheable(existing):
                    plan.append(("done", self._remember_done(existing)))
                else:
                    plan.append(("dedup", existing))
                continue
            seen_fresh[digest] = len(fresh)
            fresh.append(request)
            plan.append(("fresh", digest))
        # Same single-read rule as _submit: the depth that triggers the 429
        # is the depth the body reports.
        queue_depth = self.store.queue_depth()
        if queue_depth + len(fresh) > self.max_queue_depth:
            return (
                429,
                {
                    "error": "queue full",
                    "queue_depth": queue_depth,
                    "admitting": len(fresh),
                    "max_queue_depth": self.max_queue_depth,
                },
                "application/json",
            )
        self.submissions += len(requests)
        # every fresh item lands in one store transaction (one WAL commit
        # for the whole burst), then the fleet gets a single wakeup nudge
        submitted: Dict[str, JobRecord] = {}
        if fresh:
            with span("http.enqueue", count=len(fresh)):
                for record, _ in self.store.submit_many(
                    fresh, trace_id=current_trace_id()
                ):
                    submitted[record.digest] = record
            self._trace_persist.extend(submitted)
            self._notify_enqueue(tuple(submitted))
        jobs = []
        for kind, value in plan:
            if kind == "done":
                self.dedup_hits += 1
                self.fast_path_hits += 1
                record = value["record"]
                jobs.append(
                    {"job": record.to_dict(include_request=False), "deduplicated": True}
                )
            elif kind == "dedup":
                self.dedup_hits += 1
                jobs.append(
                    {"job": value.to_dict(include_request=False), "deduplicated": True}
                )
            elif kind == "repeat":
                self.dedup_hits += 1
                jobs.append(
                    {
                        "job": submitted[value].to_dict(include_request=False),
                        "deduplicated": True,
                    }
                )
            else:
                jobs.append(
                    {
                        "job": submitted[value].to_dict(include_request=False),
                        "deduplicated": False,
                    }
                )
        return 202, {"jobs": jobs}, "application/json"

    def _job(self, digest: str):
        entry = self._done_entry(digest)
        if entry is not None:
            return 200, self._done_body(entry, "job"), "application/json"
        record = self.store.get(digest)
        if record is None:
            return 404, {"error": f"no job with digest {digest!r}"}, "application/json"
        if record.state == "done" and self._cacheable(record):
            return 200, self._done_body(self._remember_done(record), "job"), "application/json"
        return 200, {"job": record.to_dict()}, "application/json"

    def _trace(self, digest: str):
        """The merged cross-process span document for a job digest.

        ``sources`` maps span origin (``frontend``, ``worker``) to the span
        tree that process persisted; a job mid-flight shows whichever
        sources have landed so far.  404 only when the digest itself is
        unknown — a known job with no spans yet returns an empty mapping.
        """
        record = self.store.get(digest)
        if record is None:
            return 404, {"error": f"no job with digest {digest!r}"}, "application/json"
        return (
            200,
            {
                "digest": digest,
                "trace_id": record.trace_id,
                "state": record.state,
                "sources": self.store.load_spans(digest),
            },
            "application/json",
        )

    def _healthz(self) -> Dict[str, Any]:
        counts = self.store.counts()
        alive = self.workers_alive()
        if self.worker_ids is not None:
            expected = set(self.worker_ids())
            ready = len(expected & set(self.store.worker_ids())) if expected else 0
        else:
            ready = alive
        # "degraded" (still HTTP 200: the front end *is* live) flags a dead
        # fleet — accepted jobs would queue with nobody to drain them.
        degraded = self.expected_workers is not None and alive < 1
        return {
            "status": "degraded" if degraded else "ok",
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": counts["queued"],
            "jobs": counts,
            "workers_alive": alive,
            "workers_ready": ready,
            "max_queue_depth": self.max_queue_depth,
            "store": self.store.layout_info(),
        }

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        """The Prometheus text exposition of the daemon's state."""
        counts = self.store.counts()
        workers = self.workers_alive()
        running = counts["running"]
        utilization = (running / workers) if workers else 0.0
        lines: List[str] = []

        def gauge(name: str, value: float, help_text: str, labels: str = "") -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{labels} {value:g}")

        def counter(name: str, value: float, help_text: str) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value:g}")

        def histogram(name: str, samples: Sequence[float], help_text: str) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            remaining = sorted(samples)
            for bound in LATENCY_BUCKETS:
                while remaining and remaining[0] <= bound:
                    remaining.pop(0)
                    cumulative += 1
                lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {len(samples)}')
            lines.append(f"{name}_sum {sum(samples):g}")
            lines.append(f"{name}_count {len(samples)}")

        lines.append("# HELP repro_jobs_total Jobs in the durable store by state.")
        lines.append("# TYPE repro_jobs_total gauge")
        for state in STATES:
            lines.append(f'repro_jobs_total{{state="{state}"}} {counts[state]}')

        gauge("repro_queue_depth", counts["queued"], "Queued jobs awaiting a worker.")
        gauge("repro_workers_alive", workers, "Live worker processes.")
        gauge(
            "repro_worker_utilization",
            utilization,
            "Running jobs over live workers (0..1).",
        )
        gauge(
            "repro_uptime_seconds",
            time.time() - self.started_at,
            "Seconds since the front end started.",
        )
        gauge(
            "repro_store_schema_version",
            self.store.schema_version,
            "Schema version of the job store.",
        )
        gauge(
            "repro_store_shards",
            getattr(self.store, "shards", 1),
            "Shard files behind the job store (1 = single file).",
        )
        gauge(
            "repro_envelope_cache_size",
            len(self._done_cache),
            "Done envelopes held by the fast-path LRU.",
        )

        lines.append("# HELP repro_http_requests_total HTTP requests by endpoint and status.")
        lines.append("# TYPE repro_http_requests_total counter")
        for (endpoint, status), count in sorted(self.http_requests.items()):
            lines.append(
                f'repro_http_requests_total{{endpoint="{endpoint}",status="{status}"}} {count}'
            )

        counter(
            "repro_submissions_total",
            self.submissions,
            "Requests submitted to the front end.",
        )
        counter(
            "repro_dedup_hits_total",
            self.dedup_hits,
            "Submissions answered by an existing digest.",
        )
        counter(
            "repro_fast_path_hits_total",
            self.fast_path_hits,
            "Submissions answered in-process from a stored done envelope.",
        )
        counter(
            "repro_http_connections_total",
            self.connections_total,
            "TCP connections accepted by the front end.",
        )
        counter(
            "repro_keepalive_reuse_total",
            self.keepalive_reuse,
            "Requests served on an already-used keep-alive connection.",
        )
        counter(
            "repro_envelope_cache_hits_total",
            self.envelope_cache_hits,
            "Responses served from the pre-serialized envelope LRU.",
        )
        counter(
            "repro_envelope_cache_misses_total",
            self.envelope_cache_misses,
            "Done envelopes serialized and admitted to the LRU.",
        )

        counter(
            "repro_slow_requests_total",
            self.slow_requests,
            "Requests whose in-server handling exceeded the slow threshold.",
        )
        gauge(
            "repro_slow_request_threshold_seconds",
            self.slow_request_threshold,
            "Handling seconds beyond which a request counts as slow.",
        )

        histogram(
            "repro_solve_latency_seconds",
            self.store.solve_latencies(),
            "Execution time of completed jobs "
            "(claim to first completion; portfolio upgrades do not re-enter).",
        )

        stages = self.store.stage_latency_samples()
        histogram(
            "repro_queue_wait_seconds",
            stages.get("queue_wait", ()),
            "Seconds completed jobs waited in the queue (created to claimed).",
        )
        histogram(
            "repro_serialize_seconds",
            stages.get("serialize", ()),
            "Seconds spent serializing result envelopes at completion.",
        )
        histogram(
            "repro_served_latency_seconds",
            stages.get("served", ()),
            "End-to-end seconds from submission to first stored answer.",
        )

        totals = self.store.worker_stats_totals()
        fleet_metrics = (
            ("jobs_done", "repro_fleet_jobs_done_total", "Jobs completed by the fleet."),
            ("jobs_failed", "repro_fleet_jobs_failed_total", "Jobs failed by the fleet."),
            ("busy_seconds", "repro_fleet_busy_seconds_total", "Fleet seconds spent executing."),
            (
                "claim_batches",
                "repro_claim_batches_total",
                "Batched claim round-trips issued by the fleet.",
            ),
            (
                "claim_batch_jobs",
                "repro_claim_batch_jobs_total",
                "Jobs received through batched claims (jobs / batches = mean size).",
            ),
            (
                "warm_topology_loads",
                "repro_warm_topology_loads_total",
                "Pristine topologies loaded from the shared warm sidecar.",
            ),
            (
                "warm_topology_saves",
                "repro_warm_topology_saves_total",
                "Pristine topologies persisted to the shared warm sidecar.",
            ),
            (
                "topology_cache_hits",
                "repro_topology_cache_hits_total",
                "Pristine-topology LRU hits across worker sessions.",
            ),
            (
                "topology_cache_misses",
                "repro_topology_cache_misses_total",
                "Pristine-topology LRU misses across worker sessions.",
            ),
            ("lp_solves", "repro_solver_lp_solves_total", "LP solves across worker sessions."),
            (
                "milp_solves",
                "repro_solver_milp_solves_total",
                "MILP solves across worker sessions.",
            ),
            (
                "solve_seconds",
                "repro_solver_solve_seconds_total",
                "Solver seconds across worker sessions.",
            ),
            (
                "incumbent_seeds",
                "repro_solver_incumbent_seeds_total",
                "Exact solves seeded with a verified heuristic incumbent.",
            ),
            (
                "bound_reuses",
                "repro_solver_bound_reuses_total",
                "Cached dual bounds / certificates reused across solves.",
            ),
            (
                "portfolio_stage1",
                "repro_portfolio_stage1_total",
                "Jobs answered early with their heuristic envelope.",
            ),
            (
                "portfolio_upgrades",
                "repro_portfolio_upgrades_total",
                "Stored envelopes upgraded in place by a landed exact solve.",
            ),
            (
                "portfolio_proven",
                "repro_portfolio_proven_total",
                "Exact runs that finished with a proven-optimal status.",
            ),
            (
                "portfolio_exact",
                "repro_portfolio_exact_total",
                "Exact runs executed by the fleet (proven / exact = proven fraction).",
            ),
        )
        for key, name, help_text in fleet_metrics:
            counter(name, totals.get(key, 0.0), help_text)
        exact_runs = totals.get("portfolio_exact", 0.0)
        gauge(
            "repro_portfolio_proven_fraction",
            (totals.get("portfolio_proven", 0.0) / exact_runs) if exact_runs else 0.0,
            "Fraction of executed exact runs that carry a proven optimum.",
        )
        return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_ENVELOPE_CACHE_SIZE",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "DEFAULT_SLOW_REQUEST_THRESHOLD",
    "LATENCY_BUCKETS",
    "RecoveryServer",
]
