"""The asyncio HTTP front end of the recovery daemon.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no threads — speaking JSON:

==========================  =====================================================
endpoint                    behaviour
==========================  =====================================================
``POST /v1/solve``          submit a :class:`~repro.api.requests.RecoveryRequest`
``POST /v1/assess``         submit an :class:`~repro.api.requests.AssessmentRequest`
``POST /v1/batch``          submit ``{"requests": [...]}`` in one call
``GET /v1/jobs/{digest}``   job state + result envelope once ``done``
``GET /healthz``            liveness + queue/worker snapshot
``GET /metrics``            Prometheus text format
==========================  =====================================================

Submission is *asynchronous and idempotent*: the response is the durable
job row (HTTP 202 for a newly accepted job, 200 for a digest already
known — the dedup hit), and clients poll ``/v1/jobs/{digest}`` for the
result.  Admission control keeps the daemon responsive under overload: a
new job arriving while the queue holds ``max_queue_depth`` entries is
rejected with 429 (dedup hits are always admitted — they cost nothing),
and malformed payloads get 400 with the schema error message.

Store calls are synchronous SQLite operations of a few hundred
microseconds; at the request rates a single daemon serves they are cheaper
than handing them to a thread pool, so handlers call the store directly.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.requests import AssessmentRequest, RecoveryRequest, request_from_dict
from repro.server.store import JobStore, STATES

#: Largest accepted request body; beyond it the request is a 400.
DEFAULT_MAX_BODY_BYTES = 1_048_576

#: Queued jobs beyond which new (non-dedup) submissions are rejected (429).
DEFAULT_MAX_QUEUE_DEPTH = 256

#: Histogram bucket upper bounds (seconds) for solve latency.
LATENCY_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class RecoveryServer:
    """The HTTP front end, bound to one :class:`JobStore`.

    ``workers_alive`` is a zero-argument callable reporting the live worker
    count (the daemon passes the fleet's prober; tests pass a constant), so
    the front end stays ignorant of process management.
    """

    def __init__(
        self,
        store: JobStore,
        workers_alive: Optional[Callable[[], int]] = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        expected_workers: Optional[int] = None,
    ) -> None:
        self.store = store
        self.workers_alive = workers_alive or (lambda: 0)
        self.max_queue_depth = int(max_queue_depth)
        self.max_body_bytes = int(max_body_bytes)
        self.expected_workers = expected_workers
        self.started_at = time.time()
        self.dedup_hits = 0
        self.submissions = 0
        self.http_requests: Dict[Tuple[str, int], int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks a free port (see .port)."""
        self._server = await asyncio.start_server(self._handle, host=host, port=port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            status, payload, content_type = await self._respond(reader)
        except Exception as error:  # never let a handler kill the server
            status, payload, content_type = (
                500,
                {"error": f"internal error: {type(error).__name__}: {error}"},
                "application/json",
            )
        body = (
            payload.encode("utf-8")
            if isinstance(payload, str)
            else json.dumps(payload, indent=2).encode("utf-8")
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(self, reader: asyncio.StreamReader):
        """Parse one request off the wire (bounded) and route it.

        The *whole* read — request line, headers and body — shares one
        timeout, so a client that stalls mid-headers or mid-body cannot
        pin a connection coroutine (and its file descriptor) forever.
        """
        try:
            parsed = await asyncio.wait_for(self._read_request(reader), timeout=30.0)
        except asyncio.TimeoutError:
            return 400, {"error": "timed out reading the request"}, "application/json"
        except (asyncio.IncompleteReadError, ConnectionError):
            return 400, {"error": "connection closed mid-request"}, "application/json"
        if isinstance(parsed, str):  # a parse error message
            return 400, {"error": parsed}, "application/json"
        method, path, body = parsed

        status, payload, content_type = self._route(method, path, body)
        self._count(path, status)
        return status, payload, content_type

    async def _read_request(self, reader: asyncio.StreamReader):
        """Read one request; returns ``(method, path, body)`` or an error str."""
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return "malformed request line"
        method, path = parts[0].upper(), parts[1]

        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return "malformed Content-Length"

        if content_length > self.max_body_bytes:
            self._count(path, 400)
            return f"request body exceeds {self.max_body_bytes} bytes"
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    def _count(self, path: str, status: int) -> None:
        endpoint = path.split("?")[0]
        if endpoint.startswith("/v1/jobs/"):
            endpoint = "/v1/jobs"
        key = (endpoint, int(status))
        self.http_requests[key] = self.http_requests.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _route(self, method: str, path: str, body: bytes):
        path = path.split("?")[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}, "application/json"
            return 200, self._healthz(), "application/json"
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}, "application/json"
            return 200, self.render_metrics(), "text/plain; version=0.0.4"
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "jobs is GET-only"}, "application/json"
            return self._job(path[len("/v1/jobs/") :])
        if path in ("/v1/solve", "/v1/assess", "/v1/batch"):
            if method != "POST":
                return 405, {"error": f"{path} is POST-only"}, "application/json"
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (ValueError, UnicodeDecodeError) as error:
                return 400, {"error": f"invalid JSON body: {error}"}, "application/json"
            if not isinstance(payload, dict):
                return 400, {"error": "the request body must be a JSON object"}, "application/json"
            if path == "/v1/batch":
                return self._batch(payload)
            expected = RecoveryRequest if path == "/v1/solve" else AssessmentRequest
            return self._submit(payload, expected)
        return 404, {"error": f"unknown path {path!r}"}, "application/json"

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _parse(self, payload: Dict[str, Any], expected: Optional[type] = None):
        """Parse a request payload; ``expected=None`` accepts either kind.

        A payload without an explicit ``kind`` defaults to the expected
        kind (``recovery`` when unconstrained, matching the store default).
        """
        payload = dict(payload)
        payload.setdefault("kind", expected.kind if expected else RecoveryRequest.kind)
        try:
            request = request_from_dict(payload)
        except (KeyError, ValueError, TypeError) as error:
            raise ValueError(str(error.args[0]) if error.args else str(error)) from None
        if expected is not None and not isinstance(request, expected):
            raise ValueError(
                f"expected a {expected.kind!r} request, got kind {request.kind!r}"
            )
        return request

    def _submit(self, payload: Dict[str, Any], expected: type):
        try:
            request = self._parse(payload, expected)
        except ValueError as error:
            return 400, {"error": str(error)}, "application/json"
        self.submissions += 1
        existing = self.store.get(request.digest())
        if existing is not None and existing.state != "failed":
            self.dedup_hits += 1
            return (
                200,
                {"job": existing.to_dict(include_request=False), "deduplicated": True},
                "application/json",
            )
        if self.store.queue_depth() >= self.max_queue_depth:
            return (
                429,
                {
                    "error": "queue full",
                    "queue_depth": self.store.queue_depth(),
                    "max_queue_depth": self.max_queue_depth,
                },
                "application/json",
            )
        # Reaching here the job is either new or a failed row being retried
        # — both trigger a fresh execution, so both are 202 and neither is a
        # dedup hit (a retry is requeued work, not a cached answer).
        record, _ = self.store.submit(request)
        return (
            202,
            {"job": record.to_dict(include_request=False), "deduplicated": False},
            "application/json",
        )

    def _batch(self, payload: Dict[str, Any]):
        items = payload.get("requests")
        if not isinstance(items, list) or not items:
            return (
                400,
                {"error": 'a batch body needs a non-empty "requests" list'},
                "application/json",
            )
        requests = []
        for index, item in enumerate(items):
            if not isinstance(item, dict):
                return 400, {"error": f"requests[{index}] is not an object"}, "application/json"
            try:
                # both kinds are accepted: a batch may mix solve and assess
                requests.append(self._parse(item))
            except ValueError as error:
                return 400, {"error": f"requests[{index}]: {error}"}, "application/json"
        known = {
            request.digest()
            for request in requests
            if (existing := self.store.get(request.digest())) is not None
            and existing.state != "failed"
        }
        fresh = {request.digest() for request in requests} - known
        if self.store.queue_depth() + len(fresh) > self.max_queue_depth:
            return (
                429,
                {
                    "error": "queue full",
                    "queue_depth": self.store.queue_depth(),
                    "admitting": len(fresh),
                    "max_queue_depth": self.max_queue_depth,
                },
                "application/json",
            )
        jobs = []
        self.submissions += len(requests)
        for request in requests:
            # dedup is judged per item at submit time, so a digest repeated
            # *within* the batch counts too, while a failed row being
            # retried does not (it triggers a fresh execution).
            existing = self.store.get(request.digest())
            deduplicated = existing is not None and existing.state != "failed"
            record, _ = self.store.submit(request)
            if deduplicated:
                self.dedup_hits += 1
            jobs.append(
                {"job": record.to_dict(include_request=False), "deduplicated": deduplicated}
            )
        return 202, {"jobs": jobs}, "application/json"

    def _job(self, digest: str):
        record = self.store.get(digest)
        if record is None:
            return 404, {"error": f"no job with digest {digest!r}"}, "application/json"
        return 200, {"job": record.to_dict()}, "application/json"

    def _healthz(self) -> Dict[str, Any]:
        counts = self.store.counts()
        alive = self.workers_alive()
        # "degraded" (still HTTP 200: the front end *is* live) flags a dead
        # fleet — accepted jobs would queue with nobody to drain them.
        degraded = self.expected_workers is not None and alive < 1
        return {
            "status": "degraded" if degraded else "ok",
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": counts["queued"],
            "jobs": counts,
            "workers_alive": alive,
            "max_queue_depth": self.max_queue_depth,
        }

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        """The Prometheus text exposition of the daemon's state."""
        counts = self.store.counts()
        workers = self.workers_alive()
        running = counts["running"]
        utilization = (running / workers) if workers else 0.0
        lines: List[str] = []

        def gauge(name: str, value: float, help_text: str, labels: str = "") -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{labels} {value:g}")

        lines.append("# HELP repro_jobs_total Jobs in the durable store by state.")
        lines.append("# TYPE repro_jobs_total gauge")
        for state in STATES:
            lines.append(f'repro_jobs_total{{state="{state}"}} {counts[state]}')

        gauge("repro_queue_depth", counts["queued"], "Queued jobs awaiting a worker.")
        gauge("repro_workers_alive", workers, "Live worker processes.")
        gauge(
            "repro_worker_utilization",
            utilization,
            "Running jobs over live workers (0..1).",
        )
        gauge(
            "repro_uptime_seconds",
            time.time() - self.started_at,
            "Seconds since the front end started.",
        )
        gauge(
            "repro_store_schema_version",
            self.store.schema_version,
            "Schema version of the job store.",
        )

        lines.append("# HELP repro_http_requests_total HTTP requests by endpoint and status.")
        lines.append("# TYPE repro_http_requests_total counter")
        for (endpoint, status), count in sorted(self.http_requests.items()):
            lines.append(
                f'repro_http_requests_total{{endpoint="{endpoint}",status="{status}"}} {count}'
            )

        lines.append("# HELP repro_submissions_total Requests submitted to the front end.")
        lines.append("# TYPE repro_submissions_total counter")
        lines.append(f"repro_submissions_total {self.submissions}")
        lines.append(
            "# HELP repro_dedup_hits_total Submissions answered by an existing digest."
        )
        lines.append("# TYPE repro_dedup_hits_total counter")
        lines.append(f"repro_dedup_hits_total {self.dedup_hits}")

        latencies = self.store.solve_latencies()
        lines.append(
            "# HELP repro_solve_latency_seconds Execution time of completed jobs "
            "(claim to completion)."
        )
        lines.append("# TYPE repro_solve_latency_seconds histogram")
        cumulative = 0
        remaining = sorted(latencies)
        for bound in LATENCY_BUCKETS:
            while remaining and remaining[0] <= bound:
                remaining.pop(0)
                cumulative += 1
            lines.append(f'repro_solve_latency_seconds_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(
            f'repro_solve_latency_seconds_bucket{{le="+Inf"}} {len(latencies)}'
        )
        lines.append(f"repro_solve_latency_seconds_sum {sum(latencies):g}")
        lines.append(f"repro_solve_latency_seconds_count {len(latencies)}")

        totals = self.store.worker_stats_totals()
        fleet_metrics = (
            ("jobs_done", "repro_fleet_jobs_done_total", "Jobs completed by the fleet."),
            ("jobs_failed", "repro_fleet_jobs_failed_total", "Jobs failed by the fleet."),
            ("busy_seconds", "repro_fleet_busy_seconds_total", "Fleet seconds spent executing."),
            (
                "topology_cache_hits",
                "repro_topology_cache_hits_total",
                "Pristine-topology LRU hits across worker sessions.",
            ),
            (
                "topology_cache_misses",
                "repro_topology_cache_misses_total",
                "Pristine-topology LRU misses across worker sessions.",
            ),
            ("lp_solves", "repro_solver_lp_solves_total", "LP solves across worker sessions."),
            (
                "milp_solves",
                "repro_solver_milp_solves_total",
                "MILP solves across worker sessions.",
            ),
            (
                "solve_seconds",
                "repro_solver_solve_seconds_total",
                "Solver seconds across worker sessions.",
            ),
        )
        for key, name, help_text in fleet_metrics:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {totals.get(key, 0.0):g}")
        return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "LATENCY_BUCKETS",
    "RecoveryServer",
]
