"""The worker fleet: processes that pull jobs and execute them.

Each worker is one OS process owning one
:class:`~repro.api.service.RecoveryService` — the session that accumulates
the warm-start :class:`~repro.flows.solver.SolverContext` and the
pristine-topology LRU across jobs, which is exactly the reuse the service
layer was built for.  The loop is deliberately simple::

    claim batch -> execute each (solve | assess) -> complete | fail -> report counters

Claims are atomic store operations (``UPDATE ... RETURNING``) taking up to
:data:`DEFAULT_CLAIM_BATCH` jobs per round-trip, so any number of workers
share one database with no coordinator: a duplicate submission is a single
row, and a single row is executed exactly once.  A worker crashing mid-batch
leaves every claimed row ``running`` for
:meth:`~repro.server.store.JobStore.requeue_orphans` to recover.

Idle workers do **not** poll-sleep: the daemon passes each fleet worker one
end of a wakeup pipe and writes a byte on every enqueue, so an idle worker
wakes the moment work arrives (the idle timeout is only the fallback for
externally attached workers and missed notifications).  Warm-up is shared:
deterministic pristine topologies built by any worker are serialized into
the store's ``topology_cache`` sidecar table, and every worker loads them
at startup (and per claimed batch), so N workers pay one cold build, not N.

Shutdown is cooperative: SIGTERM (or :meth:`WorkerFleet.drain`) sets a flag
the loop checks *between* batches — the idle wait uses the stop event's
``wait(timeout)``, so a sleeping worker wakes immediately instead of
finishing its interval.  An in-flight batch always finishes and its results
are stored — the daemon's graceful drain loses nothing.  A worker killed
outright (``kill -9``) leaves its jobs ``running`` in the store;
``requeue_orphans`` returns such rows to the queue when the daemon next
starts.

``python -m repro.server.workers --db PATH`` runs a single foreground
worker — useful for scaling a deployment beyond one machine (point workers
anywhere at the shared database file) and for the crash-recovery tests.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import pickle
import signal
import sys
import time
import traceback
from typing import Dict, List, Optional, Sequence

from repro.api.requests import AssessmentRequest, request_from_dict
from repro.obs.logging import configure_from_env, get_logger, warn_rate_limited
from repro.obs.trace import record_timed, span, trace_context
from repro.server.stores import DEFAULT_MAX_ATTEMPTS, JobRecord, JobStore, open_store

_LOG = get_logger(__name__)

#: Seconds a worker waits between claim attempts on an empty queue.  With a
#: wakeup channel attached this is only the fallback for a missed
#: notification; without one it is the poll interval.
DEFAULT_POLL_INTERVAL = 0.2

#: Jobs a worker claims per store round-trip (one ``UPDATE…RETURNING``).
DEFAULT_CLAIM_BATCH = 4

#: Test hook: when set (seconds), a worker holds every claimed job in the
#: ``running`` state for that long before executing it.  This exists so the
#: crash-recovery suite can deterministically observe (and kill) a worker
#: mid-job; production deployments never set it.
HOLD_ENV_VAR = "REPRO_SERVER_TEST_HOLD"

#: Solver-effort keys aggregated from result envelopes into worker counters.
_SOLVER_KEYS = (
    "lp_solves",
    "milp_solves",
    "solve_seconds",
    "build_seconds",
    "incumbent_seeds",
    "bound_reuses",
)


class WakeupReceiver:
    """The worker end of a wakeup pipe: block until notified (or timeout).

    The daemon writes single bytes on enqueue; :meth:`wait` blocks on the
    pipe and drains whatever accumulated, collapsing a burst of
    notifications into one wakeup.
    """

    def __init__(self, connection) -> None:
        self._connection = connection

    def wait(self, timeout: float) -> bool:
        """Wait up to ``timeout`` seconds; True if a notification arrived."""
        try:
            if not self._connection.poll(timeout):
                return False
            while self._connection.poll(0):
                os.read(self._connection.fileno(), 4096)
            return True
        except (OSError, EOFError, BrokenPipeError):
            # the notifier is gone (daemon died); fall back to polling pace
            time.sleep(min(timeout, 0.05))
            return False


class WakeupNotifier:
    """The daemon end: one byte per wakeup, never blocking the event loop.

    Writers can be attached with a *home shard*: a shard-targeted
    :meth:`notify` then nudges only the workers homed on the shards that
    just received work, so on a sharded store an enqueue wakes the workers
    most likely to claim it instead of stampeding the whole fleet.  Any
    worker can still claim any job — targeting is purely a wakeup
    optimisation, and an untargeted notify (or a target no writer is homed
    on) falls back to waking everyone.
    """

    def __init__(self) -> None:
        self._writers: List[object] = []
        self._shards: List[Optional[int]] = []

    def attach(self, writer, shard: Optional[int] = None) -> None:
        os.set_blocking(writer.fileno(), False)
        self._writers.append(writer)
        self._shards.append(shard)

    def notify(self, shards: Optional[Sequence[int]] = None) -> None:
        """Nudge workers; a full pipe means a wakeup is already pending.

        ``shards=None`` wakes everyone.  A shard set wakes the writers
        homed on those shards — unless none is, in which case everyone is
        woken (never strand a job because of a targeting mismatch).
        """
        targets = self._writers
        if shards is not None:
            wanted = set(shards)
            matched = [
                writer
                for writer, home in zip(self._writers, self._shards)
                if home is not None and home in wanted
            ]
            if matched:
                targets = matched
        for writer in targets:
            try:
                os.write(writer.fileno(), b"!")
            except (BlockingIOError, OSError):
                pass

    def close(self) -> None:
        for writer in self._writers:
            try:
                writer.close()
            except OSError:
                pass
        self._writers.clear()
        self._shards.clear()


def _execute(service, record: JobRecord) -> Dict[str, object]:
    """Run one job through the service session, returning the envelope dict."""
    request = request_from_dict(record.request)
    if isinstance(request, AssessmentRequest):
        return service.assess(request).to_dict()
    return service.solve(request).to_dict()


def _execute_portfolio(
    service, store: JobStore, record: JobRecord, worker_id: str, counters: Dict[str, float]
) -> Dict[str, object]:
    """Run one recovery job as a two-stage portfolio race.

    The heuristic envelope *completes* the job row immediately (pollers get
    an answer while the exact solve runs); when the exact stage lands, the
    stored envelope is upgraded in place.  Returns the final envelope.
    """
    from repro.portfolio import solve_two_stage  # deferred like the service

    request = request_from_dict(record.request)

    def publish(envelope: Dict[str, object]) -> bool:
        landed = store.complete(record.digest, envelope, worker=worker_id)
        if landed:
            counters["portfolio_stage1"] += 1
        return landed

    envelope, info = solve_two_stage(service, request, publish=publish)
    if info["published"]:
        if store.upgrade_result(record.digest, envelope, worker=worker_id):
            counters["portfolio_upgrades"] += 1
    else:
        store.complete(record.digest, envelope, worker=worker_id)
    counters["portfolio_proven"] += info["proven"]
    counters["portfolio_exact"] += info["exact"]
    return envelope


def _solver_counters(envelope: Dict[str, object]) -> Dict[str, float]:
    """Sum the per-run solver stats of one recovery envelope."""
    totals = dict.fromkeys(_SOLVER_KEYS, 0.0)
    for run in envelope.get("results", []):
        solver = run.get("solver", {}) if isinstance(run, dict) else {}
        for key in _SOLVER_KEYS:
            totals[key] += float(solver.get(key, 0.0))
    return totals


def _idle_wait(stop, wakeup, timeout: float) -> None:
    """One idle interval: wakeup channel first, stop event second, sleep last.

    Waiting on the stop event (rather than ``time.sleep``) means SIGTERM —
    which sets the event — ends the interval immediately instead of letting
    the worker finish its sleep.
    """
    if wakeup is not None:
        wakeup.wait(timeout)
        return
    if stop is not None and callable(getattr(stop, "wait", None)):
        stop.wait(timeout)
        return
    time.sleep(timeout)


def _refresh_warm_topologies(store: JobStore, service, known: set) -> int:
    """Pull sidecar topologies this worker has not loaded yet; count loads."""
    loaded = 0
    for digest, payload in store.load_topologies(exclude=known).items():
        known.add(digest)
        try:
            supply = pickle.loads(payload)
        except Exception as error:
            # a corrupt row must never take a worker down — but a sidecar
            # that silently stops warming the fleet is a latent perf bug
            warn_rate_limited(
                _LOG,
                "warm-sidecar-load",
                "skipped a corrupt warm-topology sidecar row",
                digest=digest,
                error=f"{type(error).__name__}: {error}",
            )
            continue
        loaded += service.import_topologies({digest: supply})
    return loaded


def _persist_warm_topologies(store: JobStore, service, known: set) -> int:
    """Push this worker's newly built pristine topologies to the sidecar."""
    saved = 0
    for digest, supply in service.export_topologies().items():
        if digest in known:
            continue
        known.add(digest)
        try:
            payload = pickle.dumps(supply, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            # an unpicklable graph stays worker-local; say so (once per
            # interval) instead of letting the sidecar quietly stop growing
            warn_rate_limited(
                _LOG,
                "warm-sidecar-save",
                "could not serialize a warm topology; it stays worker-local",
                digest=digest,
                error=f"{type(error).__name__}: {error}",
            )
            continue
        if store.save_topology(digest, payload):
            saved += 1
    return saved


def worker_loop(
    db_path: str,
    worker_id: str,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    lp_backend: Optional[str] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    stop=None,
    max_jobs: Optional[int] = None,
    wakeup: Optional[WakeupReceiver] = None,
    claim_batch: int = DEFAULT_CLAIM_BATCH,
    portfolio: bool = False,
) -> int:
    """Pull and execute jobs until ``stop`` is set; return the jobs handled.

    ``stop`` is any object with an ``is_set()`` method (a
    ``multiprocessing.Event`` in the fleet, a ``threading.Event`` in
    tests); ``None`` runs until ``max_jobs`` (or forever).  ``wakeup``
    (fleet workers) replaces the idle poll with an event-driven wait on the
    daemon's enqueue notifications.  Counters — jobs done/failed, busy
    seconds, claim batches and their sizes, warm topology loads/saves, the
    session's topology-cache hits and misses, aggregated solver effort —
    are written back to the store after every batch so the daemon's
    ``/metrics`` reflects the fleet live.

    With ``portfolio=True`` recovery jobs mixing heuristics with an exact
    algorithm execute in two stages (see :mod:`repro.portfolio`): the job
    completes with the heuristic envelope as soon as it exists, and the
    stored result is upgraded in place when the exact solve lands.  The
    ``portfolio_stage1`` / ``portfolio_upgrades`` / ``portfolio_proven`` /
    ``portfolio_exact`` counters account the race.
    """
    from repro.api.service import RecoveryService  # deferred: workers import lazily

    # Auto-detect the layout (single file vs sharded fleet) so a worker —
    # fleet-spawned or externally attached — always agrees with the daemon
    # that created the store.
    store = open_store(db_path)
    service = RecoveryService(lp_backend=lp_backend)
    hold = float(os.environ.get(HOLD_ENV_VAR, "0") or "0")
    counters: Dict[str, float] = {
        "jobs_done": 0.0,
        "jobs_failed": 0.0,
        "busy_seconds": 0.0,
        "claim_batches": 0.0,
        "claim_batch_jobs": 0.0,
        "warm_topology_loads": 0.0,
        "warm_topology_saves": 0.0,
        "portfolio_stage1": 0.0,
        "portfolio_upgrades": 0.0,
        "portfolio_proven": 0.0,
        "portfolio_exact": 0.0,
    }
    warm_digests: set = set()
    counters["warm_topology_loads"] += _refresh_warm_topologies(
        store, service, warm_digests
    )
    # The first snapshot doubles as the readiness beacon /healthz counts.
    store.record_worker_stats(worker_id, counters)
    _LOG.info(
        "worker ready",
        extra={
            "worker": worker_id,
            "warm_topologies": int(counters["warm_topology_loads"]),
        },
    )
    handled = 0
    try:
        while not (stop is not None and stop.is_set()):
            limit = int(claim_batch)
            if max_jobs is not None:
                limit = max(1, min(limit, max_jobs - handled))
            claim_started = time.perf_counter()
            batch = store.claim_batch(worker_id, limit=limit, max_attempts=max_attempts)
            claim_seconds = time.perf_counter() - claim_started
            if not batch:
                if max_jobs is not None:
                    break  # drain mode: an empty queue ends the run
                _idle_wait(stop, wakeup, poll_interval)
                continue
            counters["claim_batches"] += 1
            counters["claim_batch_jobs"] += len(batch)
            warm_started = time.perf_counter()
            counters["warm_topology_loads"] += _refresh_warm_topologies(
                store, service, warm_digests
            )
            warm_seconds = time.perf_counter() - warm_started
            for record in batch:
                if hold > 0:
                    time.sleep(hold)
                started = time.perf_counter()
                failed = False
                # The job's trace resumes here: the front end stamped the
                # trace id on the row at submission, so the worker's spans
                # join the same end-to-end trace.  The batch-wide claim and
                # warm-load costs are charged to the first job of the batch
                # (with the batch size attached), not duplicated onto all.
                with trace_context(record.trace_id) as trace:
                    if claim_seconds > 0:
                        record_timed("worker.claim", claim_seconds, jobs=len(batch))
                    if warm_seconds > 0:
                        record_timed("worker.warm_load", warm_seconds)
                    try:
                        with span(
                            "worker.execute",
                            digest=record.digest,
                            kind=record.kind,
                            worker=worker_id,
                        ):
                            if portfolio and record.kind == "recovery":
                                envelope = _execute_portfolio(
                                    service, store, record, worker_id, counters
                                )
                            else:
                                envelope = _execute(service, record)
                                with span("worker.persist"):
                                    store.complete(
                                        record.digest, envelope, worker=worker_id
                                    )
                    except Exception:
                        failed = True
                        counters["jobs_failed"] += 1
                        store.fail(
                            record.digest,
                            traceback.format_exc(limit=20),
                            worker=worker_id,
                        )
                    else:
                        counters["jobs_done"] += 1
                        for key, value in _solver_counters(envelope).items():
                            counters[key] = counters.get(key, 0.0) + value
                handled += 1
                elapsed = time.perf_counter() - started
                counters["busy_seconds"] += elapsed
                try:
                    store.save_spans(
                        record.digest, "worker", trace.to_payload(), trace.trace_id
                    )
                except Exception as error:
                    warn_rate_limited(
                        _LOG,
                        "span-persist",
                        "failed to persist worker spans",
                        digest=record.digest,
                        error=f"{type(error).__name__}: {error}",
                    )
                log_fields = {
                    "trace_id": trace.trace_id,
                    "digest": record.digest,
                    "worker": worker_id,
                    "kind": record.kind,
                    "seconds": round(elapsed, 6),
                }
                if failed:
                    _LOG.warning("job failed", extra=log_fields)
                else:
                    _LOG.info("job done", extra=log_fields)
                claim_seconds = 0.0
                warm_seconds = 0.0
            counters["warm_topology_saves"] += _persist_warm_topologies(
                store, service, warm_digests
            )
            counters.update(
                {key: float(value) for key, value in service.cache_info().items()}
            )
            store.record_worker_stats(worker_id, counters)
            if max_jobs is not None and handled >= max_jobs:
                break
    finally:
        store.close()
    return handled


def _fleet_entry(
    db_path: str,
    worker_id: str,
    poll_interval: float,
    lp_backend: Optional[str],
    max_attempts: int,
    stop_event,
    wakeup_connection,
    claim_batch: int,
    portfolio: bool,
) -> None:
    """Process target for fleet workers: wire SIGTERM to the stop event.

    SIGTERM requests a drain (finish the in-flight batch, then exit); the
    fleet escalates to SIGKILL only if a worker overstays the drain
    timeout.
    """
    configure_from_env()  # spawn gives a fresh interpreter; match the daemon
    signal.signal(signal.SIGTERM, lambda *_: stop_event.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the daemon handles Ctrl-C
    worker_loop(
        db_path,
        worker_id,
        poll_interval=poll_interval,
        lp_backend=lp_backend,
        max_attempts=max_attempts,
        stop=stop_event,
        wakeup=WakeupReceiver(wakeup_connection),
        claim_batch=claim_batch,
        portfolio=portfolio,
    )


class WorkerFleet:
    """N worker processes attached to one job store."""

    def __init__(
        self,
        db_path: str,
        workers: int = 2,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        lp_backend: Optional[str] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        claim_batch: int = DEFAULT_CLAIM_BATCH,
        portfolio: bool = False,
        shards: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("a worker fleet needs at least one worker")
        if claim_batch < 1:
            raise ValueError("a fleet claim batch needs at least one job")
        if shards < 1:
            raise ValueError("a worker fleet needs at least one shard")
        self.db_path = str(db_path)
        self.workers = int(workers)
        self.poll_interval = float(poll_interval)
        self.lp_backend = lp_backend
        self.max_attempts = int(max_attempts)
        self.claim_batch = int(claim_batch)
        self.portfolio = bool(portfolio)
        #: Shard count of the store the fleet pulls from — only used to home
        #: each worker on a shard for targeted wakeups (claims stay global).
        self.shards = int(shards)
        # "spawn" keeps workers independent of the daemon's asyncio state
        # (forking a process with a live event loop inherits it wholesale).
        self._context = multiprocessing.get_context("spawn")
        self._stop = self._context.Event()
        self._processes: List[multiprocessing.Process] = []
        self._notifier = WakeupNotifier()
        self._worker_ids: List[str] = []

    def start(self) -> None:
        if self._processes:
            raise RuntimeError("fleet already started")
        for index in range(self.workers):
            worker_id = f"worker-{os.getpid()}-{index}"
            reader, writer = self._context.Pipe(duplex=False)
            process = self._context.Process(
                target=_fleet_entry,
                args=(
                    self.db_path,
                    worker_id,
                    self.poll_interval,
                    self.lp_backend,
                    self.max_attempts,
                    self._stop,
                    reader,
                    self.claim_batch,
                    self.portfolio,
                ),
                daemon=True,
            )
            process.start()
            reader.close()  # the child owns the read end now
            self._notifier.attach(writer, shard=index % self.shards)
            self._processes.append(process)
            self._worker_ids.append(worker_id)

    def notify(self, shards: Optional[Sequence[int]] = None) -> None:
        """Wake idle workers: the daemon calls this on every enqueue.

        ``shards`` (when the store is sharded) narrows the nudge to the
        workers homed on the shards that just received work.
        """
        self._notifier.notify(shards)

    def alive(self) -> int:
        return sum(1 for process in self._processes if process.is_alive())

    def pids(self) -> List[int]:
        return [process.pid for process in self._processes if process.pid is not None]

    def worker_ids(self) -> List[str]:
        """The ids this fleet's workers report counters under."""
        return list(self._worker_ids)

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: let in-flight jobs finish, then reap.

        The stop flag is paired with a wakeup nudge, so idle workers end
        their wait immediately instead of sleeping out the interval.
        Workers that ignore the drain past ``timeout`` are terminated (their
        job rows stay ``running`` and are requeued on the next startup —
        the same path as a crash, by design).
        """
        self._stop.set()
        self._notifier.notify()
        deadline = time.monotonic() + timeout
        for process in self._processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._notifier.close()
        self._processes.clear()
        self._worker_ids.clear()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run one foreground worker (``python -m repro.server.workers``)."""
    parser = argparse.ArgumentParser(
        prog="repro.server.workers", description="run a single recovery worker"
    )
    parser.add_argument("--db", required=True, help="path to the shared job store")
    parser.add_argument("--worker-id", default=f"worker-{os.getpid()}", help="worker identity")
    parser.add_argument(
        "--poll-interval", type=float, default=DEFAULT_POLL_INTERVAL, help="idle poll seconds"
    )
    parser.add_argument("--lp-backend", default=None, help="LP backend name")
    parser.add_argument(
        "--claim-batch",
        type=int,
        default=DEFAULT_CLAIM_BATCH,
        help="jobs claimed per store round-trip",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="drain mode: handle at most this many jobs, exit when the queue empties",
    )
    parser.add_argument(
        "--portfolio",
        action="store_true",
        help="two-stage portfolio execution: complete jobs with the heuristic "
        "envelope first, upgrade in place when the exact solve lands",
    )
    args = parser.parse_args(argv)
    configure_from_env()  # an externally attached worker logs like the daemon

    # A real threading.Event so the idle wait ends the moment SIGTERM sets
    # it, instead of the worker finishing its sleep interval.
    import threading

    flag = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: flag.set())
    handled = worker_loop(
        args.db,
        args.worker_id,
        poll_interval=args.poll_interval,
        lp_backend=args.lp_backend,
        stop=flag,
        max_jobs=args.max_jobs,
        claim_batch=args.claim_batch,
        portfolio=args.portfolio,
    )
    print(f"{args.worker_id}: handled {handled} job(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
