"""The worker fleet: processes that pull jobs and execute them.

Each worker is one OS process owning one
:class:`~repro.api.service.RecoveryService` — the session that accumulates
the warm-start :class:`~repro.flows.solver.SolverContext` and the
pristine-topology LRU across jobs, which is exactly the reuse the service
layer was built for.  The loop is deliberately simple::

    claim -> execute (solve | assess) -> complete | fail -> report counters

Claims are atomic store operations (``UPDATE ... RETURNING``), so any
number of workers share one database with no coordinator: a duplicate
submission is a single row, and a single row is executed exactly once.

Shutdown is cooperative: SIGTERM (or :meth:`WorkerFleet.drain`) sets a flag
the loop checks *between* jobs, so an in-flight solve always finishes and
its result is stored — the daemon's graceful drain loses nothing.  A worker
killed outright (``kill -9``) leaves its job ``running`` in the store;
:meth:`~repro.server.store.JobStore.requeue_orphans` returns such rows to
the queue when the daemon next starts.

``python -m repro.server.workers --db PATH`` runs a single foreground
worker — useful for scaling a deployment beyond one machine (point workers
anywhere at the shared database file) and for the crash-recovery tests.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import signal
import sys
import time
import traceback
from typing import Dict, List, Optional, Sequence

from repro.api.requests import AssessmentRequest, request_from_dict
from repro.server.store import DEFAULT_MAX_ATTEMPTS, JobRecord, JobStore

#: Seconds a worker sleeps between claim attempts on an empty queue.
DEFAULT_POLL_INTERVAL = 0.2

#: Test hook: when set (seconds), a worker holds every claimed job in the
#: ``running`` state for that long before executing it.  This exists so the
#: crash-recovery suite can deterministically observe (and kill) a worker
#: mid-job; production deployments never set it.
HOLD_ENV_VAR = "REPRO_SERVER_TEST_HOLD"

#: Solver-effort keys aggregated from result envelopes into worker counters.
_SOLVER_KEYS = ("lp_solves", "milp_solves", "solve_seconds", "build_seconds")


def _execute(service, record: JobRecord) -> Dict[str, object]:
    """Run one job through the service session, returning the envelope dict."""
    request = request_from_dict(record.request)
    if isinstance(request, AssessmentRequest):
        return service.assess(request).to_dict()
    return service.solve(request).to_dict()


def _solver_counters(envelope: Dict[str, object]) -> Dict[str, float]:
    """Sum the per-run solver stats of one recovery envelope."""
    totals = dict.fromkeys(_SOLVER_KEYS, 0.0)
    for run in envelope.get("results", []):
        solver = run.get("solver", {}) if isinstance(run, dict) else {}
        for key in _SOLVER_KEYS:
            totals[key] += float(solver.get(key, 0.0))
    return totals


def worker_loop(
    db_path: str,
    worker_id: str,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    lp_backend: Optional[str] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    stop=None,
    max_jobs: Optional[int] = None,
) -> int:
    """Pull and execute jobs until ``stop`` is set; return the jobs handled.

    ``stop`` is any object with an ``is_set()`` method (a
    ``multiprocessing.Event`` in the fleet, a ``threading.Event`` in
    tests); ``None`` runs until ``max_jobs`` (or forever).  Counters —
    jobs done/failed, busy seconds, the session's topology-cache hits and
    misses, aggregated solver effort — are written back to the store after
    every job so the daemon's ``/metrics`` reflects the fleet live.
    """
    from repro.api.service import RecoveryService  # deferred: workers import lazily

    store = JobStore(db_path)
    service = RecoveryService(lp_backend=lp_backend)
    hold = float(os.environ.get(HOLD_ENV_VAR, "0") or "0")
    counters: Dict[str, float] = {
        "jobs_done": 0.0,
        "jobs_failed": 0.0,
        "busy_seconds": 0.0,
    }
    handled = 0
    try:
        while not (stop is not None and stop.is_set()):
            record = store.claim(worker_id, max_attempts=max_attempts)
            if record is None:
                if max_jobs is not None:
                    break  # drain mode: an empty queue ends the run
                time.sleep(poll_interval)
                continue
            if hold > 0:
                time.sleep(hold)
            started = time.perf_counter()
            try:
                envelope = _execute(service, record)
            except Exception:
                counters["jobs_failed"] += 1
                store.fail(record.digest, traceback.format_exc(limit=20), worker=worker_id)
            else:
                counters["jobs_done"] += 1
                for key, value in _solver_counters(envelope).items():
                    counters[key] = counters.get(key, 0.0) + value
                store.complete(record.digest, envelope, worker=worker_id)
            handled += 1
            counters["busy_seconds"] += time.perf_counter() - started
            counters.update(
                {key: float(value) for key, value in service.cache_info().items()}
            )
            store.record_worker_stats(worker_id, counters)
            if max_jobs is not None and handled >= max_jobs:
                break
    finally:
        store.close()
    return handled


def _fleet_entry(
    db_path: str,
    worker_id: str,
    poll_interval: float,
    lp_backend: Optional[str],
    max_attempts: int,
    stop_event,
) -> None:
    """Process target for fleet workers: wire SIGTERM to the stop event.

    SIGTERM requests a drain (finish the in-flight job, then exit); the
    fleet escalates to SIGKILL only if a worker overstays the drain
    timeout.
    """
    signal.signal(signal.SIGTERM, lambda *_: stop_event.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the daemon handles Ctrl-C
    worker_loop(
        db_path,
        worker_id,
        poll_interval=poll_interval,
        lp_backend=lp_backend,
        max_attempts=max_attempts,
        stop=stop_event,
    )


class WorkerFleet:
    """N worker processes attached to one job store."""

    def __init__(
        self,
        db_path: str,
        workers: int = 2,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        lp_backend: Optional[str] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if workers < 1:
            raise ValueError("a worker fleet needs at least one worker")
        self.db_path = str(db_path)
        self.workers = int(workers)
        self.poll_interval = float(poll_interval)
        self.lp_backend = lp_backend
        self.max_attempts = int(max_attempts)
        # "spawn" keeps workers independent of the daemon's asyncio state
        # (forking a process with a live event loop inherits it wholesale).
        self._context = multiprocessing.get_context("spawn")
        self._stop = self._context.Event()
        self._processes: List[multiprocessing.Process] = []

    def start(self) -> None:
        if self._processes:
            raise RuntimeError("fleet already started")
        for index in range(self.workers):
            process = self._context.Process(
                target=_fleet_entry,
                args=(
                    self.db_path,
                    f"worker-{os.getpid()}-{index}",
                    self.poll_interval,
                    self.lp_backend,
                    self.max_attempts,
                    self._stop,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def alive(self) -> int:
        return sum(1 for process in self._processes if process.is_alive())

    def pids(self) -> List[int]:
        return [process.pid for process in self._processes if process.pid is not None]

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: let in-flight jobs finish, then reap.

        Workers that ignore the drain past ``timeout`` are terminated (their
        job rows stay ``running`` and are requeued on the next startup —
        the same path as a crash, by design).
        """
        self._stop.set()
        deadline = time.monotonic() + timeout
        for process in self._processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._processes.clear()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run one foreground worker (``python -m repro.server.workers``)."""
    parser = argparse.ArgumentParser(
        prog="repro.server.workers", description="run a single recovery worker"
    )
    parser.add_argument("--db", required=True, help="path to the shared job store")
    parser.add_argument("--worker-id", default=f"worker-{os.getpid()}", help="worker identity")
    parser.add_argument(
        "--poll-interval", type=float, default=DEFAULT_POLL_INTERVAL, help="idle poll seconds"
    )
    parser.add_argument("--lp-backend", default=None, help="LP backend name")
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="drain mode: handle at most this many jobs, exit when the queue empties",
    )
    args = parser.parse_args(argv)

    class _Flag:
        def __init__(self) -> None:
            self._set = False

        def set(self, *_: object) -> None:
            self._set = True

        def is_set(self) -> bool:
            return self._set

    flag = _Flag()
    signal.signal(signal.SIGTERM, lambda *_: flag.set())
    handled = worker_loop(
        args.db,
        args.worker_id,
        poll_interval=args.poll_interval,
        lp_backend=args.lp_backend,
        stop=flag,
        max_jobs=args.max_jobs,
    )
    print(f"{args.worker_id}: handled {handled} job(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
