"""Observability primitives: tracing, structured logging, telemetry.

``repro.obs`` is the instrument panel of the serving pipeline.  It is
deliberately dependency-free (stdlib only) and import-cheap, so every
layer — the asyncio HTTP front end, spawned worker processes, the solver
substrate — can lean on it without cycles:

:mod:`repro.obs.trace`
    Contextvar-scoped spans with monotonic wall + CPU time, trace ids
    minted at HTTP ingress and carried across processes on the job row,
    and the flame-style renderer behind ``repro.cli trace``.

:mod:`repro.obs.logging`
    Structured JSON (or plain-text) logging with automatic trace-id
    correlation and rate-limited warnings for noisy failure modes.

The hard invariant: **nothing in this package may perturb an answer.**
Trace ids never enter ``config_digest``, span payloads never ride result
envelopes, and with no active trace every hook is a contextvar read that
returns immediately.
"""

from repro.obs.logging import configure_logging, get_logger, warn_rate_limited
from repro.obs.trace import (
    TRACE_HEADER,
    current_trace,
    current_trace_id,
    new_trace_id,
    record_timed,
    span,
    trace_context,
)

__all__ = [
    "TRACE_HEADER",
    "configure_logging",
    "current_trace",
    "current_trace_id",
    "get_logger",
    "new_trace_id",
    "record_timed",
    "span",
    "trace_context",
    "warn_rate_limited",
]
