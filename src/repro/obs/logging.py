"""Structured logging for the serving pipeline, correlated by trace id.

The daemon and every worker process emit one JSON object per line on
stderr (or a human ``text`` format, ``serve --log-format text``)::

    {"ts": 1722980000.123456, "level": "info", "logger": "repro.server.workers",
     "event": "job done", "trace_id": "9f0c...", "worker": "worker-41-0",
     "digest": "ab12...", "seconds": 0.041}

Schema: ``ts`` (unix epoch), ``level``, ``logger``, ``event`` (the
human-stable message — extra context rides separate keys, so log lines are
grep-able *and* parseable), ``trace_id`` (present whenever a trace is
active in the emitting context or the caller passes one explicitly), plus
any keyword fields the call site attached via ``extra``.

Configuration flows one way: ``repro.cli serve --log-level/--log-format``
→ :func:`configure_logging` in the daemon process, which also exports
:data:`LOG_LEVEL_ENV_VAR`/:data:`LOG_FORMAT_ENV_VAR` so spawned worker
processes (a fresh interpreter each — the fleet uses the ``spawn``
context) pick the same settings up through :func:`configure_from_env`.

Unconfigured (library/test) use stays quiet and cheap: loggers exist,
``caplog`` sees records, nothing is printed below WARNING.

:func:`warn_rate_limited` is for failure modes that can fire in a tight
loop (a dead wakeup pipe, a corrupt sidecar row): at most one record per
``key`` per ``interval``, with a ``suppressed`` count on the next emitted
record so bursts are visible without flooding.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO, Tuple

from repro.obs.trace import current_trace_id

#: Environment variables the daemon exports so spawned workers log alike.
LOG_LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"
LOG_FORMAT_ENV_VAR = "REPRO_LOG_FORMAT"

#: Accepted ``--log-level`` values (argparse choices reuse this).
LOG_LEVELS = ("debug", "info", "warning", "error")

#: Accepted ``--log-format`` values.
LOG_FORMATS = ("json", "text")

#: Seconds between emissions of the same rate-limited warning key.
DEFAULT_RATE_LIMIT_INTERVAL = 30.0

#: The root of the library's logger tree; configure_logging binds here.
_ROOT_LOGGER = "repro"

#: LogRecord attributes that are logging machinery, not caller fields.
_RESERVED = frozenset(
    vars(
        logging.LogRecord("", 0, "", 0, "", (), None)
    ).keys()
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per line; caller ``extra`` keys ride at top level."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None) or current_trace_id()
        if trace_id:
            payload["trace_id"] = trace_id
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_") or key == "trace_id":
                continue
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=True)


class TextFormatter(logging.Formatter):
    """Human form of the same record: message first, fields as key=value."""

    def format(self, record: logging.LogRecord) -> str:
        fields = []
        trace_id = getattr(record, "trace_id", None) or current_trace_id()
        if trace_id:
            fields.append(f"trace_id={trace_id}")
        for key, value in sorted(record.__dict__.items()):
            if key in _RESERVED or key.startswith("_") or key == "trace_id":
                continue
            fields.append(f"{key}={value}")
        suffix = (" " + " ".join(fields)) if fields else ""
        line = (
            f"{self.formatTime(record, '%H:%M:%S')} {record.levelname:<7} "
            f"{record.name}: {record.getMessage()}{suffix}"
        )
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + self.formatException(record.exc_info)
        return line


def get_logger(name: str) -> logging.Logger:
    """A logger under the library tree (``repro.*``)."""
    if name != _ROOT_LOGGER and not name.startswith(_ROOT_LOGGER + "."):
        name = f"{_ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: str = "info",
    log_format: str = "json",
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Wire the ``repro`` logger tree to one stderr handler; idempotent.

    Reconfiguring replaces the previous obs handler instead of stacking a
    second one, so tests (and a daemon restarted in-process) can call this
    freely.  Also exports the env vars spawned workers configure from.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; valid: {', '.join(LOG_LEVELS)}")
    if log_format not in LOG_FORMATS:
        raise ValueError(
            f"unknown log format {log_format!r}; valid: {', '.join(LOG_FORMATS)}"
        )
    root = logging.getLogger(_ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if log_format == "json" else TextFormatter())
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False  # the library owns its own sink
    os.environ[LOG_LEVEL_ENV_VAR] = level
    os.environ[LOG_FORMAT_ENV_VAR] = log_format
    return root


def configure_from_env(stream: Optional[TextIO] = None) -> Optional[logging.Logger]:
    """Configure from the daemon-exported env vars (worker processes).

    Returns ``None`` (and configures nothing) when the env carries no
    logging settings — an externally attached worker without a configured
    daemon stays quiet rather than guessing.
    """
    level = os.environ.get(LOG_LEVEL_ENV_VAR)
    log_format = os.environ.get(LOG_FORMAT_ENV_VAR)
    if not level and not log_format:
        return None
    if level not in LOG_LEVELS:
        level = "info"
    if log_format not in LOG_FORMATS:
        log_format = "json"
    return configure_logging(level=level, log_format=log_format, stream=stream)


# --------------------------------------------------------------------- #
# Rate-limited warnings
# --------------------------------------------------------------------- #
_rate_lock = threading.Lock()
_rate_state: Dict[Tuple[str, str], Tuple[float, int]] = {}  # key -> (last_emit, suppressed)


def warn_rate_limited(
    logger: logging.Logger,
    key: str,
    event: str,
    interval: float = DEFAULT_RATE_LIMIT_INTERVAL,
    level: int = logging.WARNING,
    **fields: Any,
) -> bool:
    """Emit ``event`` at most once per ``interval`` seconds per ``key``.

    Suppressed repeats are counted and reported as a ``suppressed`` field
    on the next emitted record.  Returns whether a record was emitted —
    the replacement for ``except Exception: pass`` in paths that must
    never raise but should never be invisible either.
    """
    now = time.monotonic()
    state_key = (logger.name, key)
    with _rate_lock:
        last_emit, suppressed = _rate_state.get(state_key, (None, 0))
        if last_emit is not None and (now - last_emit) < interval:
            _rate_state[state_key] = (last_emit, suppressed + 1)
            return False
        _rate_state[state_key] = (now, 0)
    if suppressed:
        fields = dict(fields, suppressed=suppressed)
    logger.log(level, event, extra=fields)
    return True


def _reset_rate_limits() -> None:
    """Test hook: forget every rate-limit key."""
    with _rate_lock:
        _rate_state.clear()


__all__ = [
    "DEFAULT_RATE_LIMIT_INTERVAL",
    "JsonFormatter",
    "LOG_FORMATS",
    "LOG_FORMAT_ENV_VAR",
    "LOG_LEVELS",
    "LOG_LEVEL_ENV_VAR",
    "TextFormatter",
    "configure_from_env",
    "configure_logging",
    "get_logger",
    "warn_rate_limited",
]
