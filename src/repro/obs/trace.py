"""Trace/span primitives for the serving pipeline.

A **trace** follows one request across processes: minted (or accepted via
the ``X-Repro-Trace-Id`` header) at HTTP ingress, stamped on the durable
job row, picked up by whichever worker claims the job, and finally merged
back into one tree by ``GET /v1/trace/{digest}``.  A **span** is one timed
stage inside a process: a named node capturing monotonic wall time
(``time.perf_counter``) and CPU time (``time.process_time``), nesting
through a contextvar so the structure mirrors the call structure — and
survives ``await`` boundaries, which a ``threading.local`` would not.

Usage::

    with trace_context() as trace:          # activates a trace
        with span("http.request", method="POST"):
            with span("http.parse"):
                ...
        payload = trace.to_payload()        # JSON-safe span tree

Two properties the serving layer depends on:

* **Inactive tracing is free.**  ``span(...)`` and ``record_timed(...)``
  with no active trace are a single contextvar read; the solver-substrate
  hooks next to ``collect_solver_stats`` cost nothing on the library path.
* **Bounded traces.**  A trace records at most
  :data:`MAX_SPANS_PER_TRACE` spans (a pathological solve cannot balloon
  the sidecar row); overflow is counted in ``dropped_spans``, never
  silently lost.

Trace ids and span payloads must never feed ``config_digest`` or result
envelopes — they ride headers, the ``jobs.trace_id`` column and the
``trace_spans`` sidecar table only.
"""

from __future__ import annotations

import contextvars
import os
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: The HTTP header a trace id rides on — echoed on every response and
#: accepted inbound so external callers can stitch our trace into theirs.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Spans recorded per trace before overflow counting starts.
MAX_SPANS_PER_TRACE = 1000

#: Characters accepted in an inbound trace id (anything else is replaced
#: by a freshly minted id rather than rejected — tracing never 400s).
_ID_CHARS = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_")


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def normalize_trace_id(value: Optional[str]) -> Optional[str]:
    """A usable trace id from an inbound header value, or ``None``.

    Accepts 8–128 chars of ``[A-Za-z0-9_-]`` (covers W3C-style hex ids and
    uuids with dashes); anything else — too short, too long, control
    characters — is treated as absent so the caller mints a fresh id.
    """
    if not isinstance(value, str):
        return None
    candidate = value.strip()
    if not (8 <= len(candidate) <= 128):
        return None
    if not all(ch in _ID_CHARS for ch in candidate):
        return None
    return candidate


class Span:
    """One timed, attributed, nestable stage of a trace."""

    __slots__ = (
        "name",
        "attrs",
        "started_at",
        "wall_seconds",
        "cpu_seconds",
        "children",
        "_wall0",
        "_cpu0",
        "_open",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = str(name)
        self.attrs = attrs
        self.started_at = time.time()  # epoch: aligns spans across processes
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.children: List["Span"] = []
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._open = True

    def finish(self) -> None:
        self.wall_seconds = time.perf_counter() - self._wall0
        self.cpu_seconds = time.process_time() - self._cpu0
        self._open = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; an open span reports its elapsed time so far."""
        wall = self.wall_seconds
        cpu = self.cpu_seconds
        if self._open:
            wall = time.perf_counter() - self._wall0
            cpu = time.process_time() - self._cpu0
        payload: Dict[str, Any] = {
            "name": self.name,
            "started_at": self.started_at,
            "wall_seconds": wall,
            "cpu_seconds": cpu,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self._open:
            payload["in_progress"] = True
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload


class Trace:
    """The per-context span collector: one tree per traced request."""

    __slots__ = ("trace_id", "roots", "_stack", "span_count", "dropped_spans")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.span_count = 0
        self.dropped_spans = 0

    def _admit(self) -> bool:
        if self.span_count >= MAX_SPANS_PER_TRACE:
            self.dropped_spans += 1
            return False
        self.span_count += 1
        return True

    def open_span(self, name: str, attrs: Dict[str, Any]) -> Optional[Span]:
        if not self._admit():
            return None
        node = Span(name, attrs)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(node)
        self._stack.append(node)
        return node

    def close_span(self, node: Span) -> None:
        node.finish()
        # tolerate exits out of order (a generator finalized late): pop to
        # the closed node rather than corrupting the stack
        while self._stack:
            top = self._stack.pop()
            if top is node:
                break

    def add_completed(
        self, name: str, wall_seconds: float, cpu_seconds: float, attrs: Dict[str, Any]
    ) -> None:
        """Attach an already-measured stage as a leaf of the open span."""
        if not self._admit():
            return
        node = Span(name, attrs)
        node.started_at = time.time() - max(0.0, float(wall_seconds))
        node.wall_seconds = float(wall_seconds)
        node.cpu_seconds = float(cpu_seconds)
        node._open = False
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(node)

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-safe cross-process slice of this trace (one source)."""
        return {
            "trace_id": self.trace_id,
            "pid": os.getpid(),
            "spans": [node.to_dict() for node in self.roots],
            "dropped_spans": self.dropped_spans,
        }


_ACTIVE: contextvars.ContextVar[Optional[Trace]] = contextvars.ContextVar(
    "repro_active_trace", default=None
)


def current_trace() -> Optional[Trace]:
    """The trace active in this context, if any."""
    return _ACTIVE.get()


def current_trace_id() -> Optional[str]:
    """The id of the active trace, if any (log correlation reads this)."""
    trace = _ACTIVE.get()
    return trace.trace_id if trace is not None else None


@contextmanager
def trace_context(trace_id: Optional[str] = None) -> Iterator[Trace]:
    """Activate a trace for the enclosed block (nesting replaces, scoped).

    ``trace_id=None`` mints a fresh id; the HTTP ingress passes the
    normalized inbound header, workers pass the id stored on the job row.
    The trace object stays readable (``to_payload``) after the block ends,
    which is how callers persist it.
    """
    trace = Trace(trace_id or new_trace_id())
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Time the enclosed block as a span of the active trace.

    With no active trace this is a no-op costing one contextvar read —
    safe to leave in library code unconditionally.
    """
    trace = _ACTIVE.get()
    if trace is None:
        yield None
        return
    node = trace.open_span(name, attrs)
    if node is None:  # over the span budget: time nothing, drop quietly
        yield None
        return
    try:
        yield node
    finally:
        trace.close_span(node)


def record_timed(
    name: str, wall_seconds: float, cpu_seconds: float = 0.0, **attrs: Any
) -> None:
    """Attach an externally measured stage to the active trace (hook form).

    The solver-substrate reporters (``record_solve``/``record_build``…)
    already hold measured durations; this lets them contribute spans
    without restructuring their call sites.  No active trace: no-op.
    """
    trace = _ACTIVE.get()
    if trace is None:
        return
    trace.add_completed(name, wall_seconds, cpu_seconds, attrs)


# --------------------------------------------------------------------- #
# Rendering (the `repro.cli trace` flame-style tree)
# --------------------------------------------------------------------- #
def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.3f}s "
    return f"{seconds * 1000.0:7.2f}ms"


def _render_span(
    node: Dict[str, Any], scale: float, indent: int, lines: List[str]
) -> None:
    wall = float(node.get("wall_seconds", 0.0))
    cpu = float(node.get("cpu_seconds", 0.0))
    bar = "▇" * max(1, int(round((wall / scale) * 24))) if scale > 0 else "▏"
    attrs = node.get("attrs") or {}
    suffix = "".join(f" {key}={value}" for key, value in sorted(attrs.items()))
    if node.get("in_progress"):
        suffix += " [in progress]"
    lines.append(
        f"{'  ' * indent}{node.get('name', '?'):<{max(4, 36 - 2 * indent)}} "
        f"{_format_seconds(wall)} wall {_format_seconds(cpu)} cpu  {bar}{suffix}"
    )
    for child in node.get("children", []):
        _render_span(child, scale, indent + 1, lines)


def render_trace(doc: Dict[str, Any]) -> str:
    """The flame-style text tree of a ``GET /v1/trace/{digest}`` document.

    Bars are scaled per source against that source's longest root span, so
    a microsecond front-end trace and a multi-second worker trace are each
    readable on their own scale.
    """
    lines = [
        f"trace {doc.get('trace_id') or '(none)'} · digest {doc.get('digest', '?')}"
        f" · state {doc.get('state', '?')}"
    ]
    sources = doc.get("sources") or {}
    for source in sorted(sources):
        payload = sources[source] or {}
        spans = payload.get("spans") or []
        pid = payload.get("pid")
        dropped = int(payload.get("dropped_spans", 0) or 0)
        header = f"{source}" + (f" (pid {pid})" if pid is not None else "")
        if dropped:
            header += f" [{dropped} span(s) dropped]"
        lines.append(header)
        scale = max((float(node.get("wall_seconds", 0.0)) for node in spans), default=0.0)
        for node in spans:
            _render_span(node, scale, 1, lines)
        if not spans:
            lines.append("  (no spans recorded)")
    if not sources:
        lines.append("(no spans recorded yet)")
    return "\n".join(lines)


__all__ = [
    "MAX_SPANS_PER_TRACE",
    "Span",
    "TRACE_HEADER",
    "Trace",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "normalize_trace_id",
    "record_timed",
    "render_trace",
    "span",
    "trace_context",
]
