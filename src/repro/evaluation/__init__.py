"""Evaluation harness: metrics, experiment runner and the paper's scenarios.

* :mod:`~repro.evaluation.demand_builder` — construction of demand graphs
  the way the paper does (random far-apart pairs with a given flow);
* :mod:`~repro.evaluation.metrics` — per-plan metrics (repairs, repair cost,
  percentage of satisfied demand, feasibility checks);
* :mod:`~repro.evaluation.runner` — run a set of algorithms on a scenario
  instance and average over repetitions;
* :mod:`~repro.evaluation.scenarios` — one function per paper figure,
  producing the rows/series of that figure;
* :mod:`~repro.evaluation.reporting` — plain-text tables for the benchmark
  output and EXPERIMENTS.md.
"""

from repro.evaluation.demand_builder import (
    explicit_demand,
    far_apart_demand,
    random_demand,
    routable_far_apart_demand,
)
from repro.evaluation.metrics import PlanEvaluation, evaluate_plan
from repro.evaluation.reporting import format_table, rows_to_csv
from repro.evaluation.runner import ComparisonRow, compare_algorithms, run_repetitions

__all__ = [
    "explicit_demand",
    "far_apart_demand",
    "random_demand",
    "routable_far_apart_demand",
    "PlanEvaluation",
    "evaluate_plan",
    "ComparisonRow",
    "compare_algorithms",
    "run_repetitions",
    "format_table",
    "rows_to_csv",
]
