"""The paper's experiments (Section VII), backed by the experiment engine.

Each figure is a declarative :class:`~repro.engine.spec.ExperimentSpec`
registered in :mod:`repro.engine.registry`; the functions here are thin
clients of :class:`~repro.api.service.RecoveryService`: they scale a
registered spec to the caller's parameters and hand it to the service's
``sweep`` entry point, which decomposes the sweep into independent task
cells, runs them serially or across worker processes (``jobs``), optionally
resumes from an on-disk result cache (``cache_dir``), and aggregates the
averaged rows the figure plots.

Every function returns a :class:`~repro.engine.experiment.ScenarioResult`
whose ``rows`` are flat dictionaries — one row per (sweep value, algorithm)
with the averaged metrics — i.e. exactly the series plotted in the
corresponding figure.  The benchmark modules under ``benchmarks/`` call
these functions (with reduced repetition counts so they finish quickly) and
print the resulting tables; EXPERIMENTS.md records a full run.

Scale knobs
-----------
The experiments involving the exact MILP (OPT) or the large CAIDA-like
topology can be expensive.  All scenario functions therefore accept

* ``runs`` — number of random repetitions to average (the paper uses 20),
* ``opt_time_limit`` — wall-clock limit per MILP solve (``None`` = exact),
* explicit sweep ranges, so callers can trade fidelity for speed,
* ``jobs`` — worker processes (1 = in-process; 0 = one per CPU),
* ``cache_dir`` — persist completed cells and resume instead of recomputing.

The defaults are chosen to finish on a laptop in minutes while still showing
the qualitative results; pass the paper's parameters for a full
reproduction.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.api.requests import DemandSpec
from repro.api.service import RecoveryService
from repro.engine.experiment import ScenarioResult
from repro.engine.registry import get_spec
from repro.engine.spec import ExperimentSpec
from repro.topologies.caida_like import caida_like
from repro.utils.rng import SeedLike

__all__ = [
    "ScenarioResult",
    "figure3_multicommodity",
    "figure4_demand_pairs",
    "figure5_demand_intensity",
    "figure6_disruption_extent",
    "figure7_scalability",
    "figure8_topology_report",
    "figure9_caida",
    "zoo_targeted_attack",
    "zoo_cascade",
]

CacheDir = Optional[Union[str, Path]]


def _demand(spec: ExperimentSpec, **changes: object) -> DemandSpec:
    """The spec's demand spec with the given fields replaced."""
    return dataclasses.replace(spec.demand, **changes)


# --------------------------------------------------------------------- #
# Figure 3 — multi-commodity relaxation extremes on Bell-Canada
# --------------------------------------------------------------------- #
def figure3_multicommodity(
    demand_values: Sequence[float] = (2, 6, 10, 14, 18),
    num_pairs: int = 4,
    runs: int = 1,
    seed: SeedLike = 7,
    opt_time_limit: Optional[float] = 60.0,
    algorithm_names: Sequence[str] = ("OPT", "MCW", "MCB", "ALL"),
    jobs: int = 1,
    cache_dir: CacheDir = None,
) -> ScenarioResult:
    """Total repairs of OPT / MCW / MCB / ALL as the demand per pair grows.

    Paper setting: Bell-Canada, 4 far-apart pairs, complete destruction,
    demand per pair swept from 2 to 18 flow units.
    """
    base = get_spec("multicommodity-extremes")
    spec = base.replace(
        sweep_values=demand_values,
        demand=_demand(base, num_pairs=num_pairs),
        algorithms=tuple(algorithm_names),
        runs=runs,
        opt_time_limit=opt_time_limit,
    )
    return RecoveryService().sweep(spec, seed=seed, jobs=jobs, cache_dir=cache_dir)


# --------------------------------------------------------------------- #
# Figure 4 — varying the number of demand pairs on Bell-Canada
# --------------------------------------------------------------------- #
def figure4_demand_pairs(
    pair_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    flow_per_pair: float = 10.0,
    runs: int = 1,
    seed: SeedLike = 11,
    opt_time_limit: Optional[float] = 120.0,
    algorithm_names: Sequence[str] = ("ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL"),
    jobs: int = 1,
    cache_dir: CacheDir = None,
) -> ScenarioResult:
    """Edge/node/total repairs and satisfied demand vs number of demand pairs.

    Paper setting: Bell-Canada, 10 flow units per pair, complete destruction,
    1–7 demand pairs.
    """
    base = get_spec("bellcanada-demand-pairs")
    spec = base.replace(
        sweep_values=pair_counts,
        demand=_demand(base, flow_per_pair=flow_per_pair),
        algorithms=tuple(algorithm_names),
        runs=runs,
        opt_time_limit=opt_time_limit,
    )
    return RecoveryService().sweep(spec, seed=seed, jobs=jobs, cache_dir=cache_dir)


# --------------------------------------------------------------------- #
# Figure 5 — varying the demand intensity on Bell-Canada
# --------------------------------------------------------------------- #
def figure5_demand_intensity(
    demand_values: Sequence[float] = (2, 4, 6, 8, 10, 12, 14, 16, 18),
    num_pairs: int = 4,
    runs: int = 1,
    seed: SeedLike = 13,
    opt_time_limit: Optional[float] = 120.0,
    algorithm_names: Sequence[str] = ("ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL"),
    jobs: int = 1,
    cache_dir: CacheDir = None,
) -> ScenarioResult:
    """Total repairs and satisfied demand vs demand intensity (4 pairs)."""
    base = get_spec("bellcanada-demand-intensity")
    spec = base.replace(
        sweep_values=demand_values,
        demand=_demand(base, num_pairs=num_pairs),
        algorithms=tuple(algorithm_names),
        runs=runs,
        opt_time_limit=opt_time_limit,
    )
    return RecoveryService().sweep(spec, seed=seed, jobs=jobs, cache_dir=cache_dir)


# --------------------------------------------------------------------- #
# Figure 6 — varying the extent of a geographic disruption on Bell-Canada
# --------------------------------------------------------------------- #
def figure6_disruption_extent(
    variances: Sequence[float] = (10, 40, 80, 120, 160),
    num_pairs: int = 4,
    flow_per_pair: float = 10.0,
    runs: int = 2,
    seed: SeedLike = 17,
    opt_time_limit: Optional[float] = 120.0,
    algorithm_names: Sequence[str] = ("ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL"),
    jobs: int = 1,
    cache_dir: CacheDir = None,
) -> ScenarioResult:
    """Total repairs and satisfied demand vs the variance of the disruption.

    Paper setting: Bell-Canada, 4 pairs of 10 units, bi-variate Gaussian
    disruption centred at the barycentre, variance swept to widen the
    destroyed area.  Note: Bell-Canada coordinates are in degrees, so the
    variances that sweep from "local" to "near-total" destruction are in
    squared degrees (the paper's axis is in its own arbitrary units).
    """
    base = get_spec("bellcanada-disruption-extent")
    spec = base.replace(
        sweep_values=variances,
        demand=_demand(base, num_pairs=num_pairs, flow_per_pair=flow_per_pair),
        algorithms=tuple(algorithm_names),
        runs=runs,
        opt_time_limit=opt_time_limit,
    )
    return RecoveryService().sweep(spec, seed=seed, jobs=jobs, cache_dir=cache_dir)


# --------------------------------------------------------------------- #
# Figure 7 — scalability on Erdős–Rényi graphs
# --------------------------------------------------------------------- #
def figure7_scalability(
    edge_probabilities: Sequence[float] = (0.05, 0.1, 0.3, 0.6, 0.9),
    num_nodes: int = 100,
    num_pairs: int = 5,
    flow_per_pair: float = 1.0,
    capacity: float = 1000.0,
    runs: int = 1,
    seed: SeedLike = 19,
    opt_time_limit: Optional[float] = 60.0,
    algorithm_names: Sequence[str] = ("ISP", "SRT", "OPT"),
    jobs: int = 1,
    cache_dir: CacheDir = None,
) -> ScenarioResult:
    """Execution time and total repairs vs the edge probability ``p``.

    Paper setting: Erdős–Rényi with 100 nodes, 5 unit demands, links of
    capacity 1000 (a pure connectivity instance), complete destruction.  The
    execution time of each algorithm is in the ``elapsed_seconds`` column of
    the rows — the paper's Figure 7(a); total repairs is Figure 7(b).
    """
    base = get_spec("erdos-renyi-scalability")
    topology = dataclasses.replace(
        base.topology,
        kwargs={**dict(base.topology.kwargs), "num_nodes": num_nodes, "capacity": capacity},
    )
    spec = base.replace(
        sweep_values=edge_probabilities,
        topology=topology,
        demand=_demand(base, num_pairs=num_pairs, flow_per_pair=flow_per_pair),
        algorithms=tuple(algorithm_names),
        runs=runs,
        opt_time_limit=opt_time_limit,
    )
    return RecoveryService().sweep(spec, seed=seed, jobs=jobs, cache_dir=cache_dir)


# --------------------------------------------------------------------- #
# Figure 8 — the large CAIDA-like topology itself
# --------------------------------------------------------------------- #
def figure8_topology_report(
    num_nodes: int = 825,
    num_edges: int = 1018,
    seed: SeedLike = 23,
) -> Dict[str, object]:
    """Statistics of the CAIDA-like topology (the paper shows it as a picture).

    Not a sweep — this stays outside the engine.  Returns the node/edge
    counts, degree statistics and connectivity flag of the generated graph so
    the substitution can be compared with the original AS28717 figures
    (825 nodes, 1018 edges, heavy-tailed degrees).
    """
    supply = caida_like(num_nodes=num_nodes, num_edges=num_edges, seed=seed)
    stats = supply.stats()
    degrees = sorted((supply.degree(node) for node in supply.nodes), reverse=True)
    stats["top_degrees"] = degrees[:10]
    stats["degree_one_fraction"] = sum(1 for d in degrees if d == 1) / len(degrees)
    return stats


# --------------------------------------------------------------------- #
# Figure 9 — large CAIDA-like topology recovery
# --------------------------------------------------------------------- #
def figure9_caida(
    pair_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    flow_per_pair: float = 22.0,
    num_nodes: int = 825,
    num_edges: int = 1018,
    runs: int = 1,
    seed: SeedLike = 29,
    opt_time_limit: Optional[float] = 300.0,
    algorithm_names: Sequence[str] = ("ISP", "OPT", "SRT"),
    jobs: int = 1,
    cache_dir: CacheDir = None,
) -> ScenarioResult:
    """Total repairs and satisfied demand on the large topology.

    Paper setting: CAIDA AS28717 giant component (825 nodes / 1018 edges),
    22 flow units per pair, 1–7 pairs.  Pass smaller ``num_nodes`` /
    ``num_edges`` to run a scaled-down version quickly (the benchmark does).
    """
    base = get_spec("caida-demand-pairs")
    topology = dataclasses.replace(
        base.topology,
        kwargs={**dict(base.topology.kwargs), "num_nodes": num_nodes, "num_edges": num_edges},
    )
    spec = base.replace(
        sweep_values=pair_counts,
        topology=topology,
        demand=_demand(base, flow_per_pair=flow_per_pair),
        algorithms=tuple(algorithm_names),
        runs=runs,
        opt_time_limit=opt_time_limit,
    )
    return RecoveryService().sweep(spec, seed=seed, jobs=jobs, cache_dir=cache_dir)


# --------------------------------------------------------------------- #
# Scenario-zoo sweeps beyond the paper's evaluation
# --------------------------------------------------------------------- #
def zoo_targeted_attack(
    attack_budgets: Sequence[int] = (2, 4, 6, 8),
    num_pairs: int = 3,
    runs: int = 3,
    seed: SeedLike = 17,
    algorithm_names: Sequence[str] = ("ISP", "SRT", "ALL"),
    jobs: int = 1,
    cache_dir: CacheDir = None,
) -> ScenarioResult:
    """Recovery effort vs degree-targeted attack budget on a scale-free graph.

    Zoo setting: Barabási–Albert topology (40 nodes, attachment 2), the
    adversary destroys the ``budget`` highest-degree hubs, demand between
    far-apart pairs.  Hub attacks disconnect scale-free graphs quickly, so
    the interesting range of budgets is small.
    """
    base = get_spec("scalefree-targeted-attack")
    spec = base.replace(
        sweep_values=tuple(int(value) for value in attack_budgets),
        demand=_demand(base, num_pairs=num_pairs),
        algorithms=tuple(algorithm_names),
        runs=runs,
    )
    return RecoveryService().sweep(spec, seed=seed, jobs=jobs, cache_dir=cache_dir)


def zoo_cascade(
    propagation_factors: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    num_pairs: int = 3,
    runs: int = 3,
    seed: SeedLike = 17,
    algorithm_names: Sequence[str] = ("ISP", "SRT", "ALL"),
    jobs: int = 1,
    cache_dir: CacheDir = None,
) -> ScenarioResult:
    """Recovery effort vs cascade severity on a fat-tree fabric.

    Zoo setting: 4-pod fat-tree, a degree-triggered Motter–Lai cascade
    whose ``propagation_factor`` sweeps from benign to severe; the repairs
    each algorithm schedules grow with the cascade's reach.
    """
    base = get_spec("fattree-cascade")
    spec = base.replace(
        sweep_values=tuple(float(value) for value in propagation_factors),
        demand=_demand(base, num_pairs=num_pairs),
        algorithms=tuple(algorithm_names),
        runs=runs,
    )
    return RecoveryService().sweep(spec, seed=seed, jobs=jobs, cache_dir=cache_dir)
