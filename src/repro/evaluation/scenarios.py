"""The paper's experiments, one function per figure (Section VII).

Every function returns a :class:`ScenarioResult` whose ``rows`` are flat
dictionaries — one row per (sweep value, algorithm) with the averaged
metrics — i.e. exactly the series plotted in the corresponding figure.  The
benchmark modules under ``benchmarks/`` call these functions (with reduced
repetition counts so they finish quickly) and print the resulting tables;
EXPERIMENTS.md records a full run.

Scale knobs
-----------
The experiments involving the exact MILP (OPT) or the large CAIDA-like
topology can be expensive.  All scenario functions therefore accept

* ``runs`` — number of random repetitions to average (the paper uses 20),
* ``opt_time_limit`` — wall-clock limit per MILP solve (``None`` = exact),
* explicit sweep ranges, so callers can trade fidelity for speed.

The defaults are chosen to finish on a laptop in minutes while still showing
the qualitative results; pass the paper's parameters for a full
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.demand_builder import far_apart_demand, routable_far_apart_demand
from repro.evaluation.runner import ComparisonRow, run_repetitions
from repro.failures.complete import CompleteDestruction
from repro.failures.geographic import GaussianDisruption
from repro.heuristics.base import RecoveryAlgorithm
from repro.heuristics.registry import get_algorithm
from repro.network.demand import DemandGraph
from repro.network.supply import SupplyGraph
from repro.topologies.bellcanada import bell_canada
from repro.topologies.caida_like import caida_like
from repro.topologies.random_graphs import erdos_renyi
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class ScenarioResult:
    """Rows of one reproduced figure."""

    name: str
    figure: str
    sweep_parameter: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def series(self, value_key: str = "total_repairs") -> Dict[str, Dict[object, object]]:
        """Pivot the rows into ``{algorithm: {sweep value: metric}}``."""
        series: Dict[str, Dict[object, object]] = {}
        for row in self.rows:
            series.setdefault(str(row["algorithm"]), {})[row[self.sweep_parameter]] = row[
                value_key
            ]
        return series


def _algorithms(names: Sequence[str], opt_time_limit: Optional[float]) -> List[RecoveryAlgorithm]:
    algorithms = []
    for name in names:
        if name.upper() == "OPT" and opt_time_limit is not None:
            algorithms.append(get_algorithm("OPT", time_limit=opt_time_limit))
        else:
            algorithms.append(get_algorithm(name))
    return algorithms


def _sweep(
    name: str,
    figure: str,
    sweep_parameter: str,
    sweep_values: Iterable[object],
    factory_for_value: Callable[[object], Callable[[np.random.Generator], Tuple[SupplyGraph, DemandGraph]]],
    algorithms: List[RecoveryAlgorithm],
    runs: int,
    seed: RandomState,
) -> ScenarioResult:
    """Shared sweep driver: one ``run_repetitions`` call per sweep value."""
    rng = ensure_rng(seed)
    result = ScenarioResult(name=name, figure=figure, sweep_parameter=sweep_parameter)
    for value in sweep_values:
        rows = run_repetitions(
            factory_for_value(value),
            algorithms,
            runs=runs,
            seed=int(rng.integers(0, 2**63 - 1)),
        )
        for row in rows:
            flat = {sweep_parameter: value}
            flat.update(row.as_dict())
            result.rows.append(flat)
    return result


# --------------------------------------------------------------------- #
# Figure 3 — multi-commodity relaxation extremes on Bell-Canada
# --------------------------------------------------------------------- #
def figure3_multicommodity(
    demand_values: Sequence[float] = (2, 6, 10, 14, 18),
    num_pairs: int = 4,
    runs: int = 1,
    seed: RandomState = 7,
    opt_time_limit: Optional[float] = 60.0,
    algorithm_names: Sequence[str] = ("OPT", "MCW", "MCB", "ALL"),
) -> ScenarioResult:
    """Total repairs of OPT / MCW / MCB / ALL as the demand per pair grows.

    Paper setting: Bell-Canada, 4 far-apart pairs, complete destruction,
    demand per pair swept from 2 to 18 flow units.
    """
    algorithms = _algorithms(algorithm_names, opt_time_limit)

    def factory_for(flow: object):
        def factory(rng: np.random.Generator) -> Tuple[SupplyGraph, DemandGraph]:
            supply = bell_canada()
            CompleteDestruction().apply(supply)
            demand = routable_far_apart_demand(supply, num_pairs, float(flow), seed=rng)
            return supply, demand

        return factory

    return _sweep(
        name="multicommodity-extremes",
        figure="Figure 3",
        sweep_parameter="demand_per_pair",
        sweep_values=demand_values,
        factory_for_value=factory_for,
        algorithms=algorithms,
        runs=runs,
        seed=seed,
    )


# --------------------------------------------------------------------- #
# Figure 4 — varying the number of demand pairs on Bell-Canada
# --------------------------------------------------------------------- #
def figure4_demand_pairs(
    pair_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    flow_per_pair: float = 10.0,
    runs: int = 1,
    seed: RandomState = 11,
    opt_time_limit: Optional[float] = 120.0,
    algorithm_names: Sequence[str] = ("ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL"),
) -> ScenarioResult:
    """Edge/node/total repairs and satisfied demand vs number of demand pairs.

    Paper setting: Bell-Canada, 10 flow units per pair, complete destruction,
    1–7 demand pairs.
    """
    algorithms = _algorithms(algorithm_names, opt_time_limit)

    def factory_for(count: object):
        def factory(rng: np.random.Generator) -> Tuple[SupplyGraph, DemandGraph]:
            supply = bell_canada()
            CompleteDestruction().apply(supply)
            demand = routable_far_apart_demand(supply, int(count), flow_per_pair, seed=rng)
            return supply, demand

        return factory

    return _sweep(
        name="bellcanada-demand-pairs",
        figure="Figure 4",
        sweep_parameter="num_pairs",
        sweep_values=pair_counts,
        factory_for_value=factory_for,
        algorithms=algorithms,
        runs=runs,
        seed=seed,
    )


# --------------------------------------------------------------------- #
# Figure 5 — varying the demand intensity on Bell-Canada
# --------------------------------------------------------------------- #
def figure5_demand_intensity(
    demand_values: Sequence[float] = (2, 4, 6, 8, 10, 12, 14, 16, 18),
    num_pairs: int = 4,
    runs: int = 1,
    seed: RandomState = 13,
    opt_time_limit: Optional[float] = 120.0,
    algorithm_names: Sequence[str] = ("ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL"),
) -> ScenarioResult:
    """Total repairs and satisfied demand vs demand intensity (4 pairs)."""
    algorithms = _algorithms(algorithm_names, opt_time_limit)

    def factory_for(flow: object):
        def factory(rng: np.random.Generator) -> Tuple[SupplyGraph, DemandGraph]:
            supply = bell_canada()
            CompleteDestruction().apply(supply)
            demand = routable_far_apart_demand(supply, num_pairs, float(flow), seed=rng)
            return supply, demand

        return factory

    return _sweep(
        name="bellcanada-demand-intensity",
        figure="Figure 5",
        sweep_parameter="demand_per_pair",
        sweep_values=demand_values,
        factory_for_value=factory_for,
        algorithms=algorithms,
        runs=runs,
        seed=seed,
    )


# --------------------------------------------------------------------- #
# Figure 6 — varying the extent of a geographic disruption on Bell-Canada
# --------------------------------------------------------------------- #
def figure6_disruption_extent(
    variances: Sequence[float] = (10, 40, 80, 120, 160),
    num_pairs: int = 4,
    flow_per_pair: float = 10.0,
    runs: int = 2,
    seed: RandomState = 17,
    opt_time_limit: Optional[float] = 120.0,
    algorithm_names: Sequence[str] = ("ISP", "OPT", "SRT", "GRD-COM", "GRD-NC", "ALL"),
) -> ScenarioResult:
    """Total repairs and satisfied demand vs the variance of the disruption.

    Paper setting: Bell-Canada, 4 pairs of 10 units, bi-variate Gaussian
    disruption centred at the barycentre, variance swept to widen the
    destroyed area.  Note: Bell-Canada coordinates are in degrees, so the
    variances that sweep from "local" to "near-total" destruction are in
    squared degrees (the paper's axis is in its own arbitrary units).
    """
    algorithms = _algorithms(algorithm_names, opt_time_limit)

    def factory_for(variance: object):
        def factory(rng: np.random.Generator) -> Tuple[SupplyGraph, DemandGraph]:
            supply = bell_canada()
            GaussianDisruption(variance=float(variance)).apply(supply, seed=rng)
            demand = routable_far_apart_demand(supply, num_pairs, flow_per_pair, seed=rng)
            return supply, demand

        return factory

    return _sweep(
        name="bellcanada-disruption-extent",
        figure="Figure 6",
        sweep_parameter="variance",
        sweep_values=variances,
        factory_for_value=factory_for,
        algorithms=algorithms,
        runs=runs,
        seed=seed,
    )


# --------------------------------------------------------------------- #
# Figure 7 — scalability on Erdős–Rényi graphs
# --------------------------------------------------------------------- #
def figure7_scalability(
    edge_probabilities: Sequence[float] = (0.05, 0.1, 0.3, 0.6, 0.9),
    num_nodes: int = 100,
    num_pairs: int = 5,
    flow_per_pair: float = 1.0,
    capacity: float = 1000.0,
    runs: int = 1,
    seed: RandomState = 19,
    opt_time_limit: Optional[float] = 60.0,
    algorithm_names: Sequence[str] = ("ISP", "SRT", "OPT"),
) -> ScenarioResult:
    """Execution time and total repairs vs the edge probability ``p``.

    Paper setting: Erdős–Rényi with 100 nodes, 5 unit demands, links of
    capacity 1000 (a pure connectivity instance), complete destruction.  The
    execution time of each algorithm is in the ``elapsed_seconds`` column of
    the rows — the paper's Figure 7(a); total repairs is Figure 7(b).
    """
    algorithms = _algorithms(algorithm_names, opt_time_limit)

    def factory_for(probability: object):
        def factory(rng: np.random.Generator) -> Tuple[SupplyGraph, DemandGraph]:
            supply = erdos_renyi(
                num_nodes=num_nodes,
                edge_probability=float(probability),
                capacity=capacity,
                seed=rng,
            )
            CompleteDestruction().apply(supply)
            demand = far_apart_demand(
                supply, num_pairs, flow_per_pair, min_fraction_of_diameter=0.5, seed=rng
            )
            return supply, demand

        return factory

    return _sweep(
        name="erdos-renyi-scalability",
        figure="Figure 7",
        sweep_parameter="edge_probability",
        sweep_values=edge_probabilities,
        factory_for_value=factory_for,
        algorithms=algorithms,
        runs=runs,
        seed=seed,
    )


# --------------------------------------------------------------------- #
# Figure 8 — the large CAIDA-like topology itself
# --------------------------------------------------------------------- #
def figure8_topology_report(
    num_nodes: int = 825,
    num_edges: int = 1018,
    seed: RandomState = 23,
) -> Dict[str, object]:
    """Statistics of the CAIDA-like topology (the paper shows it as a picture).

    Returns the node/edge counts, degree statistics and connectivity flag of
    the generated graph so the substitution can be compared with the
    original AS28717 figures (825 nodes, 1018 edges, heavy-tailed degrees).
    """
    supply = caida_like(num_nodes=num_nodes, num_edges=num_edges, seed=seed)
    stats = supply.stats()
    degrees = sorted((supply.degree(node) for node in supply.nodes), reverse=True)
    stats["top_degrees"] = degrees[:10]
    stats["degree_one_fraction"] = sum(1 for d in degrees if d == 1) / len(degrees)
    return stats


# --------------------------------------------------------------------- #
# Figure 9 — large CAIDA-like topology recovery
# --------------------------------------------------------------------- #
def figure9_caida(
    pair_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    flow_per_pair: float = 22.0,
    num_nodes: int = 825,
    num_edges: int = 1018,
    runs: int = 1,
    seed: RandomState = 29,
    opt_time_limit: Optional[float] = 300.0,
    algorithm_names: Sequence[str] = ("ISP", "OPT", "SRT"),
) -> ScenarioResult:
    """Total repairs and satisfied demand on the large topology.

    Paper setting: CAIDA AS28717 giant component (825 nodes / 1018 edges),
    22 flow units per pair, 1–7 pairs.  Pass smaller ``num_nodes`` /
    ``num_edges`` to run a scaled-down version quickly (the benchmark does).
    """
    algorithms = _algorithms(algorithm_names, opt_time_limit)

    def factory_for(count: object):
        def factory(rng: np.random.Generator) -> Tuple[SupplyGraph, DemandGraph]:
            supply = caida_like(num_nodes=num_nodes, num_edges=num_edges, seed=rng)
            CompleteDestruction().apply(supply)
            demand = routable_far_apart_demand(supply, int(count), flow_per_pair, seed=rng)
            return supply, demand

        return factory

    return _sweep(
        name="caida-demand-pairs",
        figure="Figure 9",
        sweep_parameter="num_pairs",
        sweep_values=pair_counts,
        factory_for_value=factory_for,
        algorithms=algorithms,
        runs=runs,
        seed=seed,
    )
