"""Run several recovery algorithms on the same instances and aggregate.

The paper's figures plot, for every x-axis value (number of demand pairs,
demand intensity, disruption variance, edge probability), the metrics of
each algorithm averaged over 20 random runs.  :func:`compare_algorithms`
handles one instance; :func:`run_repetitions` builds ``runs`` independent
instances with a scenario-provided factory, runs every algorithm on each and
averages the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.metrics import PlanEvaluation, evaluate_plan
from repro.heuristics.base import RecoveryAlgorithm
from repro.network.demand import DemandGraph
from repro.network.supply import SupplyGraph
from repro.utils.rng import RandomState, ensure_seed_sequence

#: A factory producing one experiment instance: (supply with failures, demand).
InstanceFactory = Callable[[np.random.Generator], Tuple[SupplyGraph, DemandGraph]]


@dataclass
class ComparisonRow:
    """Averaged metrics of one algorithm over the repetitions of one setting."""

    algorithm: str
    runs: int
    node_repairs: float
    edge_repairs: float
    total_repairs: float
    repair_cost: float
    satisfied_pct: float
    elapsed_seconds: float
    extras: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat row with *raw* metric values.

        No rounding happens here — aggregation consumers (series pivots,
        caching, assertions) need full precision; display rounding is the
        job of :func:`repro.evaluation.reporting.format_table`.
        """
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "runs": self.runs,
            "node_repairs": self.node_repairs,
            "edge_repairs": self.edge_repairs,
            "total_repairs": self.total_repairs,
            "repair_cost": self.repair_cost,
            "satisfied_pct": self.satisfied_pct,
            "elapsed_seconds": self.elapsed_seconds,
        }
        row.update(self.extras)
        return row


def compare_algorithms(
    supply: SupplyGraph,
    demand: DemandGraph,
    algorithms: Sequence[RecoveryAlgorithm],
) -> List[PlanEvaluation]:
    """Run every algorithm on one instance and evaluate the plans."""
    evaluations: List[PlanEvaluation] = []
    for algorithm in algorithms:
        plan = algorithm.solve(supply, demand)
        evaluations.append(evaluate_plan(supply, demand, plan))
    return evaluations


def run_repetitions(
    instance_factory: InstanceFactory,
    algorithms: Sequence[RecoveryAlgorithm],
    runs: int = 1,
    seed: RandomState = None,
) -> List[ComparisonRow]:
    """Average every algorithm's metrics over ``runs`` independent instances.

    Also reports, under the key ``broken_elements`` of each row's extras, the
    average number of destroyed elements of the generated instances — the
    paper's ``ALL`` reference line.
    """
    if runs < 1:
        raise ValueError("runs must be at least 1")
    # Child seeds come from SeedSequence.spawn, not from integers drawn off a
    # parent generator: spawned streams are statistically independent,
    # platform-stable, and adding runs never perturbs earlier ones.
    children = ensure_seed_sequence(seed).spawn(runs)

    per_algorithm: Dict[str, List[PlanEvaluation]] = {a.name: [] for a in algorithms}
    broken_counts: List[int] = []
    for child in children:
        run_rng = np.random.default_rng(child)
        supply, demand = instance_factory(run_rng)
        broken_counts.append(len(supply.broken_nodes) + len(supply.broken_edges))
        for algorithm, evaluation in zip(
            algorithms, compare_algorithms(supply, demand, algorithms)
        ):
            per_algorithm[algorithm.name].append(evaluation)

    rows: List[ComparisonRow] = []
    mean_broken = float(np.mean(broken_counts)) if broken_counts else 0.0
    for algorithm in algorithms:
        evaluations = per_algorithm[algorithm.name]
        rows.append(
            ComparisonRow(
                algorithm=algorithm.name,
                runs=len(evaluations),
                node_repairs=float(np.mean([e.node_repairs for e in evaluations])),
                edge_repairs=float(np.mean([e.edge_repairs for e in evaluations])),
                total_repairs=float(np.mean([e.total_repairs for e in evaluations])),
                repair_cost=float(np.mean([e.repair_cost for e in evaluations])),
                satisfied_pct=float(np.mean([e.satisfied_percentage for e in evaluations])),
                elapsed_seconds=float(np.mean([e.elapsed_seconds for e in evaluations])),
                extras={"broken_elements": mean_broken},
            )
        )
    return rows
