"""Construction of demand graphs for the experiments.

The paper builds the demand graph by selecting pairs of nodes that are far
apart in the supply graph: "we randomly select the demand pairs among those
which have a hop distance greater than or equal to half the diameter of the
network" (Section VII-A).  :func:`far_apart_demand` implements exactly that;
:func:`random_demand` is an unconstrained variant used by tests and
examples.
"""

from __future__ import annotations

import itertools
from typing import Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.network.demand import DemandGraph
from repro.network.supply import SupplyGraph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive

Node = Hashable
Pair = Tuple[Node, Node]


def _eligible_far_pairs(supply: SupplyGraph, min_fraction_of_diameter: float) -> List[Pair]:
    """All node pairs whose hop distance is >= the given fraction of the diameter."""
    graph = supply.full_graph(use_residual=False)
    if not nx.is_connected(graph):
        largest = max(nx.connected_components(graph), key=len)
        graph = graph.subgraph(largest)
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    diameter = max(max(row.values()) for row in lengths.values())
    threshold = min_fraction_of_diameter * diameter
    eligible: List[Pair] = []
    for u, v in itertools.combinations(sorted(graph.nodes, key=repr), 2):
        if lengths[u].get(v, 0) >= threshold:
            eligible.append((u, v))
    return eligible


def far_apart_demand(
    supply: SupplyGraph,
    num_pairs: int,
    flow_per_pair: float,
    min_fraction_of_diameter: float = 0.5,
    seed: RandomState = None,
    distinct_endpoints: bool = True,
) -> DemandGraph:
    """Build a demand graph of ``num_pairs`` far-apart pairs.

    Parameters
    ----------
    supply:
        Supply graph (its *undamaged* structure is used to measure hop
        distances, matching the paper where demand exists regardless of the
        disruption).
    num_pairs:
        Number of demand pairs to select.
    flow_per_pair:
        Demand flow assigned to every pair.
    min_fraction_of_diameter:
        Minimum hop distance as a fraction of the network diameter (the
        paper uses one half).
    seed:
        Deterministic seed or generator.
    distinct_endpoints:
        When true, prefer pairs whose endpoints were not used yet so the
        demand spreads over the network (falls back to reusing endpoints
        when not enough disjoint pairs exist).

    Raises
    ------
    ValueError
        If the supply graph has no eligible pair at all.
    """
    check_positive(flow_per_pair, "flow_per_pair")
    if num_pairs < 1:
        raise ValueError("num_pairs must be at least 1")
    rng = ensure_rng(seed)

    eligible = _eligible_far_pairs(supply, min_fraction_of_diameter)
    if not eligible:
        raise ValueError("no node pair satisfies the distance requirement")

    order = list(rng.permutation(len(eligible)))
    demand = DemandGraph()
    used_endpoints: Set[Node] = set()

    # First pass: endpoint-disjoint pairs; second pass: anything still needed.
    for enforce_disjoint in (distinct_endpoints, False):
        for index in order:
            if len(demand) >= num_pairs:
                break
            u, v = eligible[index]
            if demand.has_pair(u, v):
                continue
            if enforce_disjoint and (u in used_endpoints or v in used_endpoints):
                continue
            demand.add(u, v, flow_per_pair)
            used_endpoints.update((u, v))
        if len(demand) >= num_pairs:
            break

    if len(demand) < num_pairs:
        raise ValueError(
            f"only {len(demand)} eligible demand pairs exist, {num_pairs} requested"
        )
    return demand


def routable_far_apart_demand(
    supply: SupplyGraph,
    num_pairs: int,
    flow_per_pair: float,
    min_fraction_of_diameter: float = 0.5,
    seed: RandomState = None,
    attempts: int = 25,
) -> DemandGraph:
    """Like :func:`far_apart_demand`, but keep resampling until the demand is
    routable on the *undamaged* supply network.

    The paper's experiments always report results for the optimal solution,
    which implies the generated instances are feasible (the intact network
    could carry the demand).  With high per-pair intensities a random
    selection of far-apart pairs can overload a bottleneck link; this helper
    mirrors the paper by drawing new pairs until the intact network can route
    them simultaneously.  If no routable selection is found within
    ``attempts`` draws, the last draw is returned (callers can still detect
    the infeasibility through the OPT status).
    """
    from repro.flows.routability import is_routable  # local import to avoid a cycle

    rng = ensure_rng(seed)
    graph = supply.full_graph(use_residual=False)
    demand: Optional[DemandGraph] = None
    for _ in range(max(1, attempts)):
        demand = far_apart_demand(
            supply,
            num_pairs,
            flow_per_pair,
            min_fraction_of_diameter=min_fraction_of_diameter,
            seed=rng,
        )
        if is_routable(graph, demand):
            return demand
    return demand


def random_demand(
    supply: SupplyGraph,
    num_pairs: int,
    flow_per_pair: float,
    seed: RandomState = None,
) -> DemandGraph:
    """Build a demand graph of uniformly random distinct pairs."""
    check_positive(flow_per_pair, "flow_per_pair")
    if num_pairs < 1:
        raise ValueError("num_pairs must be at least 1")
    rng = ensure_rng(seed)
    nodes = sorted(supply.nodes, key=repr)
    if len(nodes) < 2:
        raise ValueError("the supply graph needs at least two nodes")
    demand = DemandGraph()
    attempts = 0
    max_attempts = 1000 * num_pairs
    while len(demand) < num_pairs and attempts < max_attempts:
        attempts += 1
        u, v = (nodes[int(i)] for i in rng.integers(0, len(nodes), size=2))
        if u == v or demand.has_pair(u, v):
            continue
        demand.add(u, v, flow_per_pair)
    if len(demand) < num_pairs:
        raise ValueError("could not sample enough distinct demand pairs")
    return demand


def explicit_demand(
    supply: SupplyGraph,
    num_pairs: int = 0,
    flow_per_pair: float = 0.0,
    seed: RandomState = None,
    pairs: Tuple = (),
) -> DemandGraph:
    """Build a demand graph from explicitly listed pairs.

    ``pairs`` is a sequence of ``(source, target)`` tuples (each assigned
    ``flow_per_pair`` units) or ``(source, target, amount)`` triples.  This
    is the builder service clients use when the mission-critical pairs are
    known up front rather than drawn at random; ``num_pairs`` and ``seed``
    exist only for signature compatibility with the other builders and are
    ignored.

    Raises
    ------
    ValueError
        If ``pairs`` is empty, an entry is malformed, or an endpoint is not
        a node of the supply graph.
    """
    if not pairs:
        raise ValueError("explicit demand needs at least one (source, target[, amount]) pair")
    demand = DemandGraph()
    for entry in pairs:
        entry = tuple(entry)
        if len(entry) == 2:
            source, target = entry
            amount = flow_per_pair
        elif len(entry) == 3:
            source, target, amount = entry
        else:
            raise ValueError(
                f"demand pair must be (source, target) or (source, target, amount), got {entry!r}"
            )
        for endpoint in (source, target):
            if endpoint not in supply:
                raise ValueError(f"demand endpoint {endpoint!r} is not a supply node")
        demand.add(source, target, float(amount))
    return demand
