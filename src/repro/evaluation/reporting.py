"""Plain-text reporting of experiment results.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers render lists of dictionaries as aligned text tables and as CSV
so the output can be eyeballed in the terminal or diffed across runs.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` (dictionaries) as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {column: len(column) for column in columns}
    rendered: List[List[str]] = []
    for row in rows:
        line = [cell(row.get(column, "")) for column in columns]
        rendered.append(line)
        for column, text in zip(columns, line):
            widths[column] = max(widths[column], len(text))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for line in rendered:
        out.write("  ".join(text.ljust(widths[column]) for column, text in zip(columns, line)) + "\n")
    return out.getvalue()


def rows_to_csv(
    rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None
) -> str:
    """Render ``rows`` as CSV text (no quoting of commas inside values)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(column, "")) for column in columns))
    return "\n".join(lines) + "\n"


def pivot_series(
    rows: Sequence[Mapping[str, object]],
    x_key: str,
    series_key: str,
    value_key: str,
) -> Dict[object, Dict[object, object]]:
    """Pivot flat rows into ``{series: {x: value}}`` for figure-style output.

    Useful to turn the runner's flat result rows into one series per
    algorithm, mirroring the lines of the paper's figures.
    """
    series: Dict[object, Dict[object, object]] = {}
    for row in rows:
        series.setdefault(row[series_key], {})[row[x_key]] = row[value_key]
    return series
