"""Metrics extracted from a recovery plan.

The paper's figures report, per algorithm:

* the number of repaired edges, nodes and their sum ("total repairs"),
* the percentage of satisfied demand after the repairs are applied, and
* (Figure 7a) the execution time.

:func:`evaluate_plan` computes all of them uniformly: the satisfied demand is
*not* taken from the algorithm's own claims but recomputed with the
concurrent-flow LP of :mod:`repro.flows.demand_satisfaction` on the network
obtained by applying the plan's repairs — exactly how one would audit a plan
in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.flows.demand_satisfaction import max_satisfiable_flow
from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph

Node = Hashable
Pair = Tuple[Node, Node]


@dataclass
class PlanEvaluation:
    """All figure metrics for one (algorithm, instance) pair.

    ``solver_stats`` carries the per-solve effort the *algorithm* reported
    in its plan metadata (LP/MILP solve counts, build vs solve wall time,
    warm-start hits) — empty for algorithms that never touch the solver
    substrate.
    """

    algorithm: str
    node_repairs: int
    edge_repairs: int
    total_repairs: int
    repair_cost: float
    satisfied_fraction: float
    satisfied_units: float
    total_demand: float
    elapsed_seconds: float
    iterations: int = 0
    routing_violations: int = 0
    per_pair_satisfaction: Dict[Pair, float] = field(default_factory=dict)
    solver_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def satisfied_percentage(self) -> float:
        """Percentage of satisfied demand (0–100), as plotted in the paper."""
        return 100.0 * self.satisfied_fraction

    @property
    def demand_loss_percentage(self) -> float:
        return 100.0 - self.satisfied_percentage

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary used by the reporting helpers."""
        return {
            "algorithm": self.algorithm,
            "node_repairs": self.node_repairs,
            "edge_repairs": self.edge_repairs,
            "total_repairs": self.total_repairs,
            "repair_cost": round(self.repair_cost, 4),
            "satisfied_pct": round(self.satisfied_percentage, 2),
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }


def recovered_graph(supply: SupplyGraph, plan: RecoveryPlan):
    """The working graph obtained by applying ``plan``'s repairs to ``supply``.

    Nominal (not residual) capacities are used: the question answered by the
    evaluation is "once these elements are rebuilt, how much demand fits?".
    """
    return supply.working_graph(
        extra_nodes=set(plan.repaired_nodes),
        extra_edges=set(plan.repaired_edges),
        use_residual=False,
    )


def evaluate_plan(
    supply: SupplyGraph,
    demand: DemandGraph,
    plan: RecoveryPlan,
    check_routing: bool = True,
    context=None,
) -> PlanEvaluation:
    """Compute every figure metric for ``plan`` on the given instance.

    ``context`` is an optional :class:`~repro.flows.solver.SolverContext`;
    a long-lived session passes its own so repeated audit LPs on the same
    topology are warm-started.
    """
    satisfaction = max_satisfiable_flow(recovered_graph(supply, plan), demand, context=context)
    violations: List[str] = []
    if check_routing and plan.routes:
        violations = plan.validate_routing(supply, demand)
    solver_stats = plan.metadata.get("solver", {})
    return PlanEvaluation(
        algorithm=plan.algorithm,
        node_repairs=plan.num_node_repairs,
        edge_repairs=plan.num_edge_repairs,
        total_repairs=plan.total_repairs,
        repair_cost=plan.repair_cost(supply),
        satisfied_fraction=satisfaction.fraction,
        satisfied_units=satisfaction.total_satisfied,
        total_demand=satisfaction.total_demand,
        elapsed_seconds=plan.elapsed_seconds,
        iterations=plan.iterations,
        routing_violations=len(violations),
        per_pair_satisfaction=dict(satisfaction.satisfied),
        solver_stats=dict(solver_stats) if isinstance(solver_stats, dict) else {},
    )
