"""Damage assessment before recovery.

After a disaster, and before committing to any repair plan, an operator
needs a situational picture: how much of the network is gone, which
mission-critical services are cut off entirely, and how much of the demand
the *surviving* infrastructure can still carry.  :func:`assess_damage`
computes exactly that from a disrupted :class:`SupplyGraph` and a
:class:`DemandGraph`, using the same LP machinery the evaluation harness
uses, so the numbers are consistent with the post-recovery reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.flows.demand_satisfaction import max_satisfiable_flow
from repro.network.demand import DemandGraph
from repro.network.supply import SupplyGraph

Node = Hashable
Pair = Tuple[Node, Node]


@dataclass
class DamageAssessment:
    """Situational picture of a disrupted network."""

    total_nodes: int
    total_edges: int
    broken_nodes: int
    broken_edges: int
    working_components: int
    largest_working_component: int
    disconnected_pairs: List[Pair] = field(default_factory=list)
    pre_recovery_satisfied_fraction: float = 0.0
    per_pair_satisfiable: Dict[Pair, float] = field(default_factory=dict)

    @property
    def broken_fraction(self) -> float:
        """Fraction (0-1) of all elements destroyed by the disruption."""
        total = self.total_nodes + self.total_edges
        if total == 0:
            return 0.0
        return (self.broken_nodes + self.broken_edges) / total

    @property
    def fully_cut_off(self) -> bool:
        """True when no demand at all can be carried before repairs."""
        return self.pre_recovery_satisfied_fraction <= 0.0

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for reports and logs."""
        return {
            "broken_nodes": self.broken_nodes,
            "broken_edges": self.broken_edges,
            "broken_fraction": round(self.broken_fraction, 4),
            "working_components": self.working_components,
            "largest_working_component": self.largest_working_component,
            "disconnected_pairs": len(self.disconnected_pairs),
            "pre_recovery_satisfied_pct": round(100.0 * self.pre_recovery_satisfied_fraction, 2),
        }


def assess_damage(
    supply: SupplyGraph, demand: DemandGraph, context=None
) -> DamageAssessment:
    """Compute a :class:`DamageAssessment` for a disrupted instance.

    The assessment only looks at the surviving network (no hypothetical
    repairs): disconnected pairs are demand pairs whose endpoints cannot
    reach each other on working elements, and the pre-recovery satisfied
    fraction is the share of the demand the surviving capacity can carry
    simultaneously.  ``context`` optionally warm-starts the satisfaction LP
    from a session's :class:`~repro.flows.solver.SolverContext`.
    """
    working = supply.working_graph(use_residual=False)

    if working.number_of_nodes() > 0:
        components = list(nx.connected_components(working))
        largest = max((len(component) for component in components), default=0)
    else:
        components = []
        largest = 0

    disconnected: List[Pair] = []
    for pair in demand.pairs():
        if (
            pair.source not in working
            or pair.target not in working
            or not nx.has_path(working, pair.source, pair.target)
        ):
            disconnected.append(pair.pair)

    satisfaction = max_satisfiable_flow(working, demand, context=context)

    return DamageAssessment(
        total_nodes=supply.number_of_nodes,
        total_edges=supply.number_of_edges,
        broken_nodes=len(supply.broken_nodes),
        broken_edges=len(supply.broken_edges),
        working_components=len(components),
        largest_working_component=largest,
        disconnected_pairs=disconnected,
        pre_recovery_satisfied_fraction=satisfaction.fraction,
        per_pair_satisfiable=dict(satisfaction.satisfied),
    )
