"""Extensions beyond the paper's core contribution.

* :mod:`~repro.extensions.progressive` — progressive (staged) recovery
  scheduling under a per-stage repair budget, in the spirit of the related
  work the paper discusses (Wang, Qiao and Yu, INFOCOM 2011): given the
  repair set chosen by any recovery algorithm, decide the *order* in which
  to rebuild it so that the mission-critical demand comes back as early as
  possible.
* :mod:`~repro.extensions.assessment` — damage-assessment reports computed
  before any recovery decision: what broke, which demands are cut off, how
  much demand the surviving network can still carry.
"""

from repro.extensions.assessment import DamageAssessment, assess_damage
from repro.extensions.progressive import ProgressiveSchedule, schedule_progressive_recovery

__all__ = [
    "DamageAssessment",
    "assess_damage",
    "ProgressiveSchedule",
    "schedule_progressive_recovery",
]
