"""Progressive (staged) recovery scheduling.

The paper computes *which* elements to repair; in practice repairs happen
over days with limited crews, so the *order* matters too.  The related work
the paper cites (Wang, Qiao and Yu, "On progressive network recovery after a
major disruption", INFOCOM 2011) optimises exactly that ordering.  This
extension provides a pragmatic version of it on top of any
:class:`~repro.network.plan.RecoveryPlan`:

* the elements selected by the plan are partitioned into stages of at most
  ``budget_per_stage`` repairs each;
* stages are filled greedily: at every step the element with the largest
  marginal gain in satisfiable demand (measured with the concurrent-flow LP
  of :mod:`repro.flows.demand_satisfaction`) is repaired next; ties are
  broken in favour of elements that reconnect demand endpoints sooner;
* the result records the satisfied demand after every stage, i.e. the
  restoration curve an operator would report.

The scheduler never adds or removes repairs — it only orders what the
recovery algorithm decided — so the final satisfied demand equals that of
the input plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

from repro.flows.demand_satisfaction import max_satisfiable_flow
from repro.network.demand import DemandGraph
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph, canonical_edge

Node = Hashable
Edge = Tuple[Node, Node]
#: A repair item is either a node or a ("edge", (u, v)) record.
RepairItem = Tuple[str, Union[Node, Edge]]


@dataclass
class RecoveryStage:
    """One stage of the schedule: the elements repaired and the demand restored."""

    index: int
    repaired_nodes: List[Node] = field(default_factory=list)
    repaired_edges: List[Edge] = field(default_factory=list)
    satisfied_fraction: float = 0.0

    @property
    def num_repairs(self) -> int:
        return len(self.repaired_nodes) + len(self.repaired_edges)


@dataclass
class ProgressiveSchedule:
    """A staged ordering of a recovery plan's repairs."""

    algorithm: str
    budget_per_stage: int
    stages: List[RecoveryStage] = field(default_factory=list)
    initial_satisfied_fraction: float = 0.0

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def total_repairs(self) -> int:
        return sum(stage.num_repairs for stage in self.stages)

    def restoration_curve(self) -> List[float]:
        """Satisfied-demand fraction before recovery and after every stage."""
        return [self.initial_satisfied_fraction] + [s.satisfied_fraction for s in self.stages]

    def stage_of(self, item: Union[Node, Edge]) -> Optional[int]:
        """Stage index (1-based) in which ``item`` is repaired, or ``None``."""
        for stage in self.stages:
            if item in stage.repaired_nodes:
                return stage.index
            if isinstance(item, tuple) and len(item) == 2:
                if canonical_edge(*item) in stage.repaired_edges:
                    return stage.index
        return None


def _satisfied_fraction(
    supply: SupplyGraph,
    demand: DemandGraph,
    repaired_nodes: Set[Node],
    repaired_edges: Set[Edge],
) -> float:
    graph = supply.working_graph(
        extra_nodes=repaired_nodes, extra_edges=repaired_edges, use_residual=False
    )
    return max_satisfiable_flow(graph, demand).fraction


def schedule_progressive_recovery(
    supply: SupplyGraph,
    demand: DemandGraph,
    plan: RecoveryPlan,
    budget_per_stage: int,
) -> ProgressiveSchedule:
    """Order the repairs of ``plan`` into stages of ``budget_per_stage`` elements.

    Parameters
    ----------
    supply, demand:
        The disrupted instance the plan was computed for.
    plan:
        Any recovery plan (ISP, OPT, a baseline, or a hand-written one).
    budget_per_stage:
        Maximum number of elements (nodes + edges) repaired per stage.

    Returns
    -------
    ProgressiveSchedule
        Stages in execution order with the cumulative satisfied-demand
        fraction after each stage.
    """
    if budget_per_stage < 1:
        raise ValueError("budget_per_stage must be at least 1")

    pending: List[RepairItem] = [("node", node) for node in sorted(plan.repaired_nodes, key=repr)]
    pending += [("edge", edge) for edge in sorted(plan.repaired_edges, key=repr)]

    repaired_nodes: Set[Node] = set()
    repaired_edges: Set[Edge] = set()
    schedule = ProgressiveSchedule(algorithm=plan.algorithm, budget_per_stage=budget_per_stage)
    schedule.initial_satisfied_fraction = _satisfied_fraction(
        supply, demand, repaired_nodes, repaired_edges
    )

    stage_index = 0
    while pending:
        stage_index += 1
        stage = RecoveryStage(index=stage_index)
        while pending and stage.num_repairs < budget_per_stage:
            best_item: Optional[RepairItem] = None
            best_gain = -1.0
            base = _satisfied_fraction(supply, demand, repaired_nodes, repaired_edges)
            for item in pending:
                kind, payload = item
                trial_nodes = set(repaired_nodes)
                trial_edges = set(repaired_edges)
                if kind == "node":
                    trial_nodes.add(payload)
                else:
                    trial_edges.add(canonical_edge(*payload))
                    # An edge is only usable when its endpoints work; bring
                    # scheduled endpoint repairs forward together with it for
                    # the purpose of measuring the gain.
                    for endpoint in payload:
                        if endpoint in plan.repaired_nodes:
                            trial_nodes.add(endpoint)
                gain = (
                    _satisfied_fraction(supply, demand, trial_nodes, trial_edges) - base
                )
                if gain > best_gain:
                    best_gain = gain
                    best_item = item
            assert best_item is not None  # pending is non-empty
            kind, payload = best_item
            pending.remove(best_item)
            if kind == "node":
                repaired_nodes.add(payload)
                stage.repaired_nodes.append(payload)
            else:
                repaired_edges.add(canonical_edge(*payload))
                stage.repaired_edges.append(canonical_edge(*payload))
        stage.satisfied_fraction = _satisfied_fraction(
            supply, demand, repaired_nodes, repaired_edges
        )
        schedule.stages.append(stage)
    return schedule
