"""Scenario sampling: declarative distributions over recovery requests.

The generator (:class:`ScenarioGenerator`) turns a declarative
:class:`ScenarioSpace` — which topologies with which parameter choices,
which disruptions, which demand sizes — into a seeded stream of valid
:class:`~repro.api.requests.RecoveryRequest` objects, and
:func:`run_fuzz` fans a budget of them through
:meth:`~repro.api.service.RecoveryService.solve_batch` with the invariant
checker of :mod:`repro.verification` auditing every plan.
"""

from repro.scenarios.generator import (
    DEFAULT_SPACE,
    FuzzReport,
    ScenarioGenerator,
    ScenarioSpace,
    run_fuzz,
)

__all__ = [
    "DEFAULT_SPACE",
    "FuzzReport",
    "ScenarioGenerator",
    "ScenarioSpace",
    "run_fuzz",
]
