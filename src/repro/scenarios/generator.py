"""Seeded scenario generation and the fuzz harness built on it.

A :class:`ScenarioSpace` is pure data: a tuple of topology choices, a tuple
of disruption choices and discrete demand distributions, where every
builder keyword maps either to a fixed scalar or to a tuple of candidate
values.  :class:`ScenarioGenerator` samples that space with one seeded
generator — same seed, same request stream, on every machine — and only
emits requests whose instance actually materialises (topology builds,
disruption applies, demand is drawable), resampling the rare invalid
combination.

:func:`run_fuzz` is the harness the CLI's ``fuzz`` sub-command and the CI
leg call: sample ``budget`` requests, fan them through
:meth:`RecoveryService.solve_batch` (process pool + resumable cache, exactly
like a production batch), and — with ``verify`` — audit every returned plan
with :func:`repro.verification.audit_result`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.requests import (
    DemandSpec,
    DisruptionSpec,
    RecoveryRequest,
    TopologySpec,
    materialise_instance,
)
from repro.api.results import RecoveryResult
from repro.api.service import RecoveryService
from repro.engine.tasks import cell_seed_sequence, root_entropy
from repro.heuristics.registry import available_algorithms
from repro.utils.rng import RandomState, ensure_rng
from repro.verification import InvariantReport, Violation, audit_result

#: One scenario choice: a registry name plus per-kwarg candidate values.
Choice = Tuple[str, Mapping[str, Any]]


@dataclass(frozen=True)
class ScenarioSpace:
    """Declarative distributions a :class:`ScenarioGenerator` samples from.

    Every kwarg value that is a tuple/list is a discrete uniform choice;
    scalars are passed through unchanged.  The default space deliberately
    stays *small* — every instance must be solvable by the exact MILP in
    well under a second, because the differential cost-dominance invariant
    is only as good as the optimum it compares against.
    """

    topologies: Tuple[Choice, ...] = (
        ("grid", {"rows": (3, 4), "cols": (3, 4), "capacity": (10.0, 20.0)}),
        ("ring", {"num_nodes": (6, 8, 10)}),
        ("erdos-renyi", {"num_nodes": (12, 16), "edge_probability": (0.25, 0.35), "capacity": (50.0,)}),
        ("barabasi-albert", {"num_nodes": (14, 18), "attachment": (2,), "capacity": (30.0,)}),
        ("watts-strogatz", {"num_nodes": (12, 16), "nearest_neighbors": (4,), "rewire_probability": (0.1, 0.3)}),
        ("fat-tree", {"pods": (4,), "access_capacity": (10.0,), "core_capacity": (20.0,)}),
    )
    disruptions: Tuple[Choice, ...] = (
        ("complete", {}),
        ("random", {"node_probability": (0.2, 0.4), "edge_probability": (0.3, 0.5)}),
        ("gaussian", {"variance": (2.0, 30.0), "intensity": (0.9,)}),
        ("cascading", {"num_triggers": (1, 2), "propagation_factor": (1.0, 1.5), "tolerance": (0.1, 0.3)}),
        ("multi-gaussian", {"variance": (2.0, 20.0), "num_epicenters": (2, 3)}),
        ("targeted", {"node_budget": (2, 4), "edge_budget": (0, 3), "metric": ("degree", "betweenness")}),
    )
    algorithms: Tuple[str, ...] = ()
    num_pairs: Tuple[int, ...] = (1, 2, 3)
    flow_per_pair: Tuple[float, ...] = (2.0, 4.0, 6.0)
    demand_builder: str = "routable-far-apart"
    opt_time_limit: float = 30.0

    def resolved_algorithms(self) -> Tuple[str, ...]:
        """The algorithm list, defaulting to every registered algorithm."""
        return self.algorithms or tuple(available_algorithms())


DEFAULT_SPACE = ScenarioSpace()


def _sample_kwargs(options: Mapping[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    """Resolve each kwarg: tuples/lists are discrete choices, scalars pass."""
    kwargs: Dict[str, Any] = {}
    for key in sorted(options):
        candidates = options[key]
        if isinstance(candidates, (tuple, list)):
            kwargs[key] = candidates[int(rng.integers(0, len(candidates)))]
        else:
            kwargs[key] = candidates
    return kwargs


class ScenarioGenerator:
    """A seeded stream of valid recovery requests drawn from a space.

    Parameters
    ----------
    space:
        The declarative distributions; defaults to :data:`DEFAULT_SPACE`.
    seed:
        Seed of the sampling stream.  The per-request instance seeds are
        drawn from the same stream, so one integer reproduces an entire
        fuzz campaign.
    max_attempts:
        Resampling budget per emitted request; a draw whose instance fails
        to materialise (e.g. a disruption leaving too few demand-eligible
        nodes) is discarded and redrawn.
    """

    def __init__(
        self,
        space: Optional[ScenarioSpace] = None,
        seed: RandomState = 0,
        max_attempts: int = 25,
    ) -> None:
        self.space = space or DEFAULT_SPACE
        self._rng = ensure_rng(seed)
        self.max_attempts = int(max_attempts)
        self.discarded = 0

    # ------------------------------------------------------------------ #
    def _draw(self) -> RecoveryRequest:
        rng = self._rng
        topologies = self.space.topologies
        name, options = topologies[int(rng.integers(0, len(topologies)))]
        topology = TopologySpec(name, kwargs=_sample_kwargs(options, rng))

        disruptions = self.space.disruptions
        kind, options = disruptions[int(rng.integers(0, len(disruptions)))]
        disruption = DisruptionSpec(kind, kwargs=_sample_kwargs(options, rng))

        demand = DemandSpec(
            self.space.demand_builder,
            num_pairs=self.space.num_pairs[int(rng.integers(0, len(self.space.num_pairs)))],
            flow_per_pair=self.space.flow_per_pair[
                int(rng.integers(0, len(self.space.flow_per_pair)))
            ],
        )
        return RecoveryRequest(
            topology=topology,
            disruption=disruption,
            demand=demand,
            algorithms=self.space.resolved_algorithms(),
            seed=int(rng.integers(0, 2**31 - 1)),
            opt_time_limit=self.space.opt_time_limit,
        )

    @staticmethod
    def _materialises(request: RecoveryRequest) -> bool:
        """Whether the request's instance builds — the validity criterion.

        Uses the canonical cell RNG derivation, so the probe constructs
        exactly the instance the engine worker will construct later.
        """
        rng = np.random.default_rng(cell_seed_sequence(root_entropy(request.seed), 0, 0))
        try:
            materialise_instance(request.topology, request.disruption, request.demand, rng)
        except (KeyError, ValueError):
            return False
        return True

    def sample_request(self) -> RecoveryRequest:
        """Draw the next valid request (resampling invalid combinations)."""
        for _ in range(self.max_attempts):
            request = self._draw()
            if self._materialises(request):
                return request
            self.discarded += 1
        raise RuntimeError(
            f"no valid scenario found in {self.max_attempts} attempts; "
            "the scenario space is likely over-constrained"
        )

    def requests(self, budget: int) -> List[RecoveryRequest]:
        """The next ``budget`` valid requests."""
        if budget < 1:
            raise ValueError("the fuzz budget must be at least 1")
        return [self.sample_request() for _ in range(budget)]

    def sample_online_spec(
        self,
        algorithm: str = "ISP",
        epochs: int = 4,
        events_menu: Optional[Sequence[Mapping[str, Any]]] = None,
    ):
        """Draw one valid :class:`~repro.online.spec.OnlineScenarioSpec`.

        Reuses :meth:`sample_request` for the instance sections (so online
        sampling inherits the space's validity guarantee and stays on the
        same stream discipline), then draws the temporal layer — one
        mid-recovery event from a small menu, a fog level and a crew count —
        from the same generator.  The differential suite feeds these specs
        to :func:`repro.online.run_episode` and asserts non-negative regret.
        """
        from repro.online import CrewSpec, EventSpec, FogSpec, OnlineScenarioSpec

        request = self.sample_request()
        rng = self._rng
        menu: Sequence[Mapping[str, Any]] = events_menu or (
            {"kind": "aftershock", "kwargs": {"variance": 4.0, "num_epicenters": 1}, "at_epochs": (1,)},
            {"kind": "attack", "kwargs": {"node_budget": 1}, "every": 2},
            {"kind": "cascade", "probability": 0.5},
        )
        event = EventSpec.from_dict(dict(menu[int(rng.integers(0, len(menu)))]))
        fog = FogSpec(
            hidden_fraction=float(rng.choice((0.0, 0.2, 0.35))),
            reveal_per_epoch=2,
        )
        crews = CrewSpec(count=int(rng.integers(2, 5)))
        return OnlineScenarioSpec(
            topology=request.topology,
            disruption=request.disruption,
            demand=request.demand,
            algorithm=algorithm,
            seed=request.seed,
            epochs=int(epochs),
            epoch_hours=12.0,
            crews=crews,
            fog=fog,
            events=(event,),
            opt_time_limit=self.space.opt_time_limit,
        )


# --------------------------------------------------------------------- #
# The fuzz harness
# --------------------------------------------------------------------- #
@dataclass
class FuzzReport:
    """Everything one fuzz campaign produced, ready for CLI/JSON output."""

    budget: int
    seed: int
    verified: bool
    requests: List[RecoveryRequest] = field(default_factory=list)
    envelopes: List[RecoveryResult] = field(default_factory=list)
    audit: InvariantReport = field(default_factory=InvariantReport)
    discarded: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.audit.ok

    @property
    def violations(self) -> List[Violation]:
        return self.audit.violations

    def rows(self) -> List[Dict[str, object]]:
        """One table row per request for the CLI report."""
        rows: List[Dict[str, object]] = []
        for request, envelope in zip(self.requests, self.envelopes):
            digest = request.digest()[:12]
            related = [v for v in self.audit.violations if v.request == digest]
            rows.append(
                {
                    "request": digest,
                    "topology": request.topology.name,
                    "disruption": request.disruption.kind,
                    "pairs": request.demand.num_pairs,
                    "broken": envelope.broken_elements,
                    "algorithms": len(envelope.results),
                    "violations": len(related),
                }
            )
        return rows

    def to_dict(self) -> Dict[str, object]:
        """JSON envelope mirroring the service results' conventions."""
        return {
            "schema_version": 1,
            "kind": "fuzz-report",
            "budget": self.budget,
            "seed": self.seed,
            "verified": self.verified,
            "discarded_draws": self.discarded,
            "plans_checked": self.audit.checked,
            "unproven_baselines": self.audit.unproven_baselines,
            "opt_gaps": self.audit.gap_summary(),
            "wall_seconds": self.wall_seconds,
            "ok": self.ok,
            "violations": [
                {
                    "request": violation.request,
                    "algorithm": violation.algorithm,
                    "invariant": violation.invariant,
                    "detail": violation.detail,
                }
                for violation in self.audit.violations
            ],
            "requests": [request.to_dict() for request in self.requests],
        }


def run_fuzz(
    budget: int,
    seed: int = 0,
    space: Optional[ScenarioSpace] = None,
    service: Optional[RecoveryService] = None,
    jobs: int = 1,
    verify: bool = True,
    cache_dir: Optional[str] = None,
    progress=None,
) -> FuzzReport:
    """Sample ``budget`` scenarios, solve them as a batch, audit the plans.

    ``progress`` is forwarded to :meth:`RecoveryService.solve_batch` (the
    engine's per-cell callback).  With ``verify`` disabled the harness is a
    pure load generator — useful for benchmarking the batch path itself.
    """
    started = time.perf_counter()
    service = service or RecoveryService()
    generator = ScenarioGenerator(space=space, seed=seed)
    requests = generator.requests(budget)
    envelopes = service.solve_batch(requests, jobs=jobs, cache_dir=cache_dir, progress=progress)

    report = FuzzReport(
        budget=budget,
        seed=int(seed),
        verified=bool(verify),
        requests=requests,
        envelopes=envelopes,
        discarded=generator.discarded,
    )
    if verify:
        for request, envelope in zip(requests, envelopes):
            audited = audit_result(service, request, envelope, context=service.context)
            report.audit.checked += audited.checked
            report.audit.unproven_baselines += audited.unproven_baselines
            report.audit.opt_gaps.extend(audited.opt_gaps)
            report.audit.extend(audited.violations)
    report.wall_seconds = time.perf_counter() - started
    return report


__all__ = [
    "DEFAULT_SPACE",
    "FuzzReport",
    "ScenarioGenerator",
    "ScenarioSpace",
    "run_fuzz",
]
