"""The Iterative Split and Prune (ISP) recovery algorithm (Section IV).

ISP decides which broken elements to repair so that all demand flows can be
routed, while trying to keep the number of repairs as low as possible.  Each
iteration of the main loop performs, in this order:

1. **Termination test** — is the current demand routable on the working
   graph (non-broken elements plus everything already listed for repair)?
   This is the LP routability test of Section IV-A.
2. **Pruning** — every demand that can be routed inside a working *bubble*
   is routed there and removed from the instance, consuming residual
   capacity (Section IV-F, Theorem 3).
3. **Direct repairs** — a broken supply edge that directly connects the two
   endpoints of an unsatisfiable demand is listed for repair
   (Section IV-E).
4. **Split** — otherwise the node with the highest demand-based centrality
   is (virtually) repaired and the most constrained demand contributing to
   that centrality is split through it; the split amount is the maximum
   value that keeps the instance routable (Section IV-B/IV-C).

The algorithm returns a :class:`~repro.network.plan.RecoveryPlan` containing
both the repair list and the routing produced by prune actions and by the
final routability test, as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Literal, Optional, Set, Tuple

import networkx as nx

from repro.core.centrality import CentralityResult, demand_based_centrality
from repro.core.prune import PruneAction, find_prunable_routing
from repro.core.split import select_demand_to_split
from repro.flows.maxflow import max_flow_value
from repro.flows.routability import routability_test
from repro.flows.splitting_lp import maximum_splittable_amount
from repro.flows.decomposition import decompose_flows
from repro.flows.solver.incremental import SolverContext
from repro.flows.solver.stats import collect_solver_stats
from repro.flows.solver.tolerances import EPSILON
from repro.network.demand import DemandGraph
from repro.network.paths import (
    DEFAULT_LENGTH_CONSTANT,
    attach_dynamic_lengths,
    path_broken_elements,
    shortest_path_cover,
)
from repro.network.plan import RecoveryPlan
from repro.network.supply import SupplyGraph, canonical_edge
from repro.utils.timing import Timer

Node = Hashable
Pair = Tuple[Node, Node]


@dataclass
class ISPConfig:
    """Tunable parameters of the ISP algorithm.

    Attributes
    ----------
    length_const:
        Constant term of the dynamic path metric (Section IV-D).
    metric:
        ``"dynamic"`` for the paper's repair-cost/capacity path metric,
        ``"hop"`` for plain hop counts (ablation study).
    require_bubble:
        Restrict pruning to bubble paths (the paper's safe behaviour).  The
        ablation benches set this to ``False`` to measure the effect.
    split_amount_mode:
        How the split amount ``dx`` is computed:

        * ``"lp"`` — the exact LP of Decision 2 (paper behaviour);
        * ``"bottleneck"`` — a fast approximation using the capacity of the
          covering paths through the split node;
        * ``"auto"`` — LP on small graphs, bottleneck on graphs with more
          than ``lp_edge_threshold`` edges.
    lp_edge_threshold:
        Edge-count threshold for ``"auto"`` mode.
    max_iterations:
        Hard cap on main-loop iterations; ``None`` derives a generous bound
        from the instance size.  If the cap is hit, the remaining demand is
        handled by the shortest-path fallback so the algorithm always
        terminates with a plan.
    """

    length_const: float = DEFAULT_LENGTH_CONSTANT
    metric: str = "dynamic"
    require_bubble: bool = True
    split_amount_mode: Literal["lp", "bottleneck", "auto"] = "auto"
    lp_edge_threshold: int = 400
    max_iterations: Optional[int] = None


class _ISPState:
    """Mutable state of one ISP run (kept separate from the public plan)."""

    def __init__(self, supply: SupplyGraph, demand: DemandGraph, config: ISPConfig) -> None:
        self.supply = supply.copy()
        self.supply.reset_residuals()
        self.demand = demand.copy()
        self.config = config
        self.repaired_nodes: Set[Node] = set()
        self.repaired_edges: Set[Tuple[Node, Node]] = set()
        self.plan = RecoveryPlan(algorithm="ISP")
        self.splits = 0
        self.prunes = 0
        self.direct_repairs = 0
        self.fallback_used = False
        self.unsatisfiable_pairs: List[Pair] = []
        #: Warm-start store shared by the run's routability and split solves.
        self.solver_context = SolverContext()

    # ------------------------------------------------------------------ #
    def working_graph(self) -> nx.Graph:
        return self.supply.working_graph(
            extra_nodes=self.repaired_nodes,
            extra_edges=self.repaired_edges,
            use_residual=True,
        )

    def repair_node(self, node: Node) -> None:
        if self.supply.is_broken_node(node) and node not in self.repaired_nodes:
            self.repaired_nodes.add(node)
            self.plan.add_node_repair(node)

    def repair_edge(self, u: Node, v: Node) -> None:
        key = canonical_edge(u, v)
        if self.supply.is_broken_edge(u, v) and key not in self.repaired_edges:
            self.repaired_edges.add(key)
            self.plan.add_edge_repair(u, v)
        # Using an edge requires working endpoints (constraint 1(c)).
        self.repair_node(u)
        self.repair_node(v)

    def apply_prune(self, action: PruneAction) -> None:
        source, target = action.pair
        self.demand.reduce(source, target, action.amount)
        for path, flow in action.routes:
            self.plan.add_route(action.pair, path, flow)
            for i in range(len(path) - 1):
                self.supply.consume_capacity(path[i], path[i + 1], flow)
        self.prunes += 1


def iterative_split_prune(
    supply: SupplyGraph,
    demand: DemandGraph,
    config: Optional[ISPConfig] = None,
) -> RecoveryPlan:
    """Run ISP on ``supply`` / ``demand`` and return the recovery plan.

    The inputs are not modified; ISP operates on internal copies.

    Examples
    --------
    >>> from repro.topologies import grid_topology
    >>> from repro.failures import CompleteDestruction
    >>> from repro.network import DemandGraph
    >>> supply = grid_topology(3, 3, capacity=10.0)
    >>> CompleteDestruction().apply(supply)           # doctest: +ELLIPSIS
    FailureReport(...)
    >>> demand = DemandGraph()
    >>> demand.add((0, 0), (2, 2), 5.0)
    >>> plan = iterative_split_prune(supply, demand)
    >>> plan.total_repairs >= 7   # at least the 5 nodes and 4 edges of a path, minus nothing
    True
    """
    config = config or ISPConfig()
    state = _ISPState(supply, demand, config)

    with Timer() as timer, collect_solver_stats() as solver_stats:
        _initialise(state)
        iterations = _main_loop(state)
        _finalise_routing(state)

    plan = state.plan
    plan.iterations = iterations
    plan.elapsed_seconds = timer.elapsed
    plan.metadata.update(
        {
            "splits": state.splits,
            "prunes": state.prunes,
            "direct_edge_repairs": state.direct_repairs,
            "fallback_used": state.fallback_used,
            "unsatisfiable_pairs": list(state.unsatisfiable_pairs),
            "solver": solver_stats.as_dict(),
        }
    )
    return plan


# ---------------------------------------------------------------------- #
# Phases of the algorithm
# ---------------------------------------------------------------------- #
def _initialise(state: _ISPState) -> None:
    """Repair broken demand endpoints and drop structurally impossible pairs.

    Any feasible solution must repair a broken endpoint of a positive demand
    (flow has to enter/leave it), so listing them upfront loses nothing.
    Pairs whose endpoints are disconnected even in the full supply graph can
    never be satisfied and are removed so the LPs stay feasible.
    """
    full = state.supply.full_graph(use_residual=False)
    for pair in state.demand.pairs():
        if (
            pair.source not in full
            or pair.target not in full
            or not nx.has_path(full, pair.source, pair.target)
        ):
            state.unsatisfiable_pairs.append(pair.pair)
            state.demand.remove_pair(pair.source, pair.target)
            continue
        for endpoint in (pair.source, pair.target):
            state.repair_node(endpoint)


def _main_loop(state: _ISPState) -> int:
    config = state.config
    supply = state.supply
    if config.max_iterations is not None:
        max_iterations = config.max_iterations
    else:
        max_iterations = 20 * (supply.number_of_nodes + supply.number_of_edges) + 100

    iterations = 0
    while iterations < max_iterations:
        iterations += 1

        if state.demand.is_empty:
            return iterations
        working = state.working_graph()
        if routability_test(working, state.demand, context=state.solver_context).routable:
            return iterations

        if _prune_phase(state, working):
            continue
        if _direct_repair_phase(state):
            continue
        if _split_phase(state):
            continue

        # Nothing applicable: resolve the rest with the shortest-path fallback.
        _fallback(state)
        return iterations

    _fallback(state)
    return iterations


def _prune_phase(state: _ISPState, working: nx.Graph) -> bool:
    """Prune every demand that admits a bubble routing.  Returns True if any pruned."""
    pruned_any = False
    progress = True
    while progress:
        progress = False
        for pair in state.demand.pairs():
            action = find_prunable_routing(
                working,
                state.demand,
                pair.pair,
                require_bubble=state.config.require_bubble,
            )
            if action is None:
                continue
            state.apply_prune(action)
            pruned_any = True
            progress = True
            working = state.working_graph()
            break
    return pruned_any


def _direct_repair_phase(state: _ISPState) -> bool:
    """Repair broken edges that directly connect unsatisfiable demand pairs."""
    repaired_any = False
    working = state.working_graph()
    for pair in state.demand.pairs():
        source, target = pair.source, pair.target
        if not state.supply.has_edge(source, target):
            continue
        if not state.supply.is_broken_edge(source, target):
            continue
        if canonical_edge(source, target) in state.repaired_edges:
            continue
        satisfiable = max_flow_value(working, source, target)
        if satisfiable + EPSILON >= pair.demand:
            continue
        state.repair_edge(source, target)
        state.direct_repairs += 1
        repaired_any = True
        working = state.working_graph()
    return repaired_any


def _split_phase(state: _ISPState) -> bool:
    """Perform one split action.  Returns True when a split was executed."""
    config = state.config
    centrality = demand_based_centrality(
        state.supply,
        state.demand,
        repaired_nodes=state.repaired_nodes,
        repaired_edges=state.repaired_edges,
        length_const=config.length_const,
        metric=config.metric,
    )
    full_graph = centrality.graph
    if full_graph is None:
        return False

    for candidate in centrality.ranked_nodes():
        if centrality.scores.get(candidate, 0.0) <= 0:
            break
        choice = select_demand_to_split(centrality, state.demand, candidate, full_graph)
        if choice is None:
            continue
        amount = _split_amount(state, full_graph, choice.pair, candidate, choice)
        if amount <= EPSILON:
            continue

        state.repair_node(candidate)
        source, target = choice.pair
        state.demand.split(source, target, candidate, amount)
        state.splits += 1
        return True
    return False


def _split_amount(
    state: _ISPState,
    full_graph: nx.Graph,
    pair: Pair,
    via: Node,
    choice,
) -> float:
    """Compute the split amount ``dx`` according to the configured mode."""
    config = state.config
    mode = config.split_amount_mode
    if mode == "auto":
        mode = "lp" if state.supply.number_of_edges <= config.lp_edge_threshold else "bottleneck"
    if mode == "lp":
        return maximum_splittable_amount(
            full_graph, state.demand, pair, via, context=state.solver_context
        )
    # Bottleneck approximation: what the covering paths through the node can
    # carry, capped by the pair's residual demand.
    source, target = pair
    requested = state.demand.demand(source, target)
    return min(requested, choice.routable_through_node)


def _fallback(state: _ISPState) -> None:
    """Shortest-path fallback guaranteeing termination.

    For every remaining demand, repair all broken elements on the shortest
    path cover (dynamic metric) of the full supply graph.  This mirrors the
    SRT baseline but is only reached when the split machinery can make no
    further progress (e.g. degenerate instances); the event is recorded in
    the plan metadata.
    """
    if state.demand.is_empty:
        return
    state.fallback_used = True
    full = state.supply.full_graph(use_residual=True)
    if state.config.metric == "dynamic":
        attach_dynamic_lengths(
            state.supply,
            full,
            repaired_nodes=state.repaired_nodes,
            repaired_edges=state.repaired_edges,
            const=state.config.length_const,
        )
    else:
        for u, v in full.edges:
            full.edges[u, v]["length"] = 1.0
    for pair in state.demand.pairs():
        cover = shortest_path_cover(full, pair.source, pair.target, pair.demand, weight="length")
        for path, _ in cover:
            nodes, edges = path_broken_elements(state.supply, path)
            for node in nodes:
                state.repair_node(node)
            for u, v in edges:
                state.repair_edge(u, v)


def _finalise_routing(state: _ISPState) -> None:
    """Route whatever demand is still pending on the final working graph.

    When the main loop terminates because the routability test succeeded,
    the remaining (non-pruned) demand still needs an explicit routing in the
    plan; we take it from the feasible LP solution of the final test.
    """
    if state.demand.is_empty:
        return
    working = state.working_graph()
    outcome = routability_test(
        working, state.demand, want_flows=True, context=state.solver_context
    )
    if not outcome.routable:
        return
    for commodity, arc_flows in zip(outcome.commodities, outcome.flows):
        for path, flow in decompose_flows(arc_flows, commodity.source, commodity.target):
            if flow > EPSILON:
                state.plan.add_route((commodity.source, commodity.target), path, flow)
