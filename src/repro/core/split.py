"""Selection of the demand to split on the most central node (Decision 1).

Once ISP has chosen the node ``v_BC`` with the highest demand-based
centrality, it must pick which of the demands contributing to that
centrality should be split through it.  The paper selects the demand that is
*least likely to be routable elsewhere*, estimated as the one maximising

``min{ d_ij, sum_{p in P*_ij | v_BC} c(p) } / f*(i, j)``

where the numerator is the amount of the demand that the covering paths
through ``v_BC`` could carry (ignoring conflicts) and the denominator
``f*(i, j)`` is the maximum flow between the endpoints on the complete supply
graph with the current residual capacities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import networkx as nx

from repro.core.centrality import CentralityResult
from repro.flows.maxflow import max_flow_value
from repro.flows.solver.tolerances import EPSILON
from repro.network.demand import DemandGraph

Node = Hashable
Pair = Tuple[Node, Node]


@dataclass(frozen=True)
class SplitChoice:
    """The demand pair chosen for a split and its selection score."""

    pair: Pair
    score: float
    routable_through_node: float
    max_flow: float


def select_demand_to_split(
    centrality: CentralityResult,
    demand: DemandGraph,
    node: Node,
    full_graph: Optional[nx.Graph] = None,
) -> Optional[SplitChoice]:
    """Pick the demand pair to split through ``node`` (Decision 1).

    Pairs for which ``node`` is an endpoint are excluded — splitting a demand
    on one of its own endpoints is a no-op.  Returns ``None`` when no
    eligible demand contributes to the node's centrality.

    Parameters
    ----------
    centrality:
        Result of the centrality computation of the current iteration; its
        covers provide ``P*_ij | v`` and its annotated graph is reused for
        the max-flow computation unless ``full_graph`` is supplied.
    demand:
        Current demand graph.
    node:
        The split candidate ``v_BC``.
    full_graph:
        Complete supply graph with residual capacities, used for ``f*(i, j)``.
    """
    graph = full_graph if full_graph is not None else centrality.graph
    if graph is None:
        raise ValueError("a supply graph is required to evaluate split candidates")

    best: Optional[SplitChoice] = None
    for pair in centrality.contributions.get(node, set()):
        source, target = pair
        if node in (source, target):
            continue
        current_demand = demand.demand(source, target)
        if current_demand <= EPSILON:
            continue
        through_node = centrality.cover_capacity_through(pair, node)
        if through_node <= EPSILON:
            continue
        flow_limit = max_flow_value(graph, source, target)
        if flow_limit <= EPSILON:
            continue
        routable = min(current_demand, through_node)
        score = routable / flow_limit
        if best is None or score > best.score or (
            score == best.score and repr(pair) < repr(best.pair)
        ):
            best = SplitChoice(
                pair=pair,
                score=score,
                routable_through_node=routable,
                max_flow=flow_limit,
            )
    return best
