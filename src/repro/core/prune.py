"""Pruning of demand over working "bubble" paths (Section IV-F, Theorem 3).

A demand ``(s_h, t_h)`` can be safely removed (pruned) from the instance when
it can be routed over working paths whose internal vertices form a *bubble*:
a set of vertices that no other demand endpoint can reach without traversing
``s_h`` or ``t_h``.  Routing inside a bubble can never steal capacity that a
conflicting demand strictly needs (Theorem 3), so pruning preserves
routability and never increases the number of repairs of the final solution.

The bubble is found with the modified breadth-first search the paper
describes: explore the working graph from the demand endpoints while
discarding every vertex reachable from another demand endpoint without
passing through ``s_h`` / ``t_h``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.flows.decomposition import decompose_flows
from repro.flows.solver.tolerances import PRUNE_EPSILON
from repro.network.demand import DemandGraph, DemandPair
from repro.network.supply import canonical_edge

Node = Hashable
Pair = Tuple[Node, Node]
Path = Tuple[Node, ...]


@dataclass
class PruneAction:
    """A prune decision: route ``amount`` units of ``pair`` over ``routes``."""

    pair: Pair
    amount: float
    routes: List[Tuple[Path, float]] = field(default_factory=list)

    @property
    def edges_used(self) -> Set[Tuple[Node, Node]]:
        used: Set[Tuple[Node, Node]] = set()
        for path, _ in self.routes:
            for i in range(len(path) - 1):
                used.add(canonical_edge(path[i], path[i + 1]))
        return used


def find_bubble(
    working_graph: nx.Graph,
    demand: DemandGraph,
    pair: Pair,
) -> Set[Node]:
    """Return a bubble ``S_h`` for ``pair`` on the working graph.

    The returned set always contains the two endpoints.  A vertex ``v`` other
    than the endpoints belongs to the bubble iff it cannot be reached from
    any *other* demand endpoint in the working graph with ``s_h`` and ``t_h``
    removed.  By construction every edge leaving the bubble is incident to
    ``s_h`` or ``t_h``, which is exactly Definition 2 of the paper.
    """
    source, target = pair
    bubble: Set[Node] = {source, target}
    if source not in working_graph or target not in working_graph:
        return bubble

    other_endpoints = {
        node for node in demand.endpoints if node not in (source, target)
    }

    # Vertices reachable from another demand endpoint without crossing s_h/t_h.
    stripped = working_graph.copy()
    stripped.remove_nodes_from([source, target])
    contaminated: Set[Node] = set()
    for endpoint in other_endpoints:
        if endpoint in stripped:
            contaminated |= nx.node_connected_component(stripped, endpoint)
        else:
            contaminated.add(endpoint)

    for node in working_graph.nodes:
        if node in (source, target):
            continue
        if node not in contaminated:
            bubble.add(node)
    return bubble


def find_prunable_routing(
    working_graph: nx.Graph,
    demand: DemandGraph,
    pair: Pair,
    require_bubble: bool = True,
) -> Optional[PruneAction]:
    """Compute the largest prune action available for ``pair``.

    Parameters
    ----------
    working_graph:
        Current working supply graph (residual capacities on ``capacity``).
    demand:
        Current demand graph.
    pair:
        Demand pair to prune.
    require_bubble:
        When true (default, the paper's behaviour) the routing is restricted
        to the pair's bubble so that Theorem 3 guarantees the prune is safe.
        When false the whole working graph is used — a more aggressive
        variant exercised by the ablation benches.

    Returns
    -------
    PruneAction or None
        ``None`` when nothing can be pruned (no working path, or zero
        capacity available inside the bubble).
    """
    source, target = pair
    requested = demand.demand(source, target)
    if requested <= PRUNE_EPSILON:
        return None
    if source not in working_graph or target not in working_graph:
        return None

    if require_bubble:
        region = find_bubble(working_graph, demand, pair)
        candidate_graph = working_graph.subgraph(region)
    else:
        candidate_graph = working_graph

    if source not in candidate_graph or target not in candidate_graph:
        return None
    if not nx.has_path(candidate_graph, source, target):
        return None

    flow_value, flow_dict = nx.maximum_flow(
        candidate_graph, source, target, capacity="capacity"
    )
    prunable = min(flow_value, requested)
    if prunable <= PRUNE_EPSILON:
        return None

    # Convert the max-flow dictionary into directed arc flows and decompose
    # them into explicit paths, trimming the total to the prunable amount.
    arc_flows: Dict[Tuple[Node, Node], float] = {}
    for u, neighbours in flow_dict.items():
        for v, value in neighbours.items():
            if value > PRUNE_EPSILON:
                arc_flows[(u, v)] = arc_flows.get((u, v), 0.0) + value
    decomposition = decompose_flows(arc_flows, source, target)

    routes: List[Tuple[Path, float]] = []
    remaining = prunable
    for path, flow in decomposition:
        if remaining <= PRUNE_EPSILON:
            break
        used = min(flow, remaining)
        routes.append((path, used))
        remaining -= used

    routed = sum(flow for _, flow in routes)
    if routed <= PRUNE_EPSILON:
        return None
    return PruneAction(pair=pair, amount=routed, routes=routes)
