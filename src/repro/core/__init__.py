"""The paper's primary contribution: Iterative Split and Prune (ISP).

The package is organised around the four activities of the algorithm
(Section IV of the paper):

* :mod:`~repro.core.centrality` — the demand-based centrality metric (Eq. 3)
  and its runtime shortest-path-cover estimate;
* :mod:`~repro.core.prune` — bubble detection and the prune action
  (Section IV-F, Theorem 3);
* :mod:`~repro.core.split` — demand selection for the split action
  (Decision 1 of Section IV-C);
* :mod:`~repro.core.isp` — the main loop tying everything together, the
  repair list and the termination test.
"""

from repro.core.centrality import CentralityResult, demand_based_centrality
from repro.core.isp import ISPConfig, iterative_split_prune
from repro.core.prune import PruneAction, find_bubble, find_prunable_routing
from repro.core.split import SplitChoice, select_demand_to_split

__all__ = [
    "CentralityResult",
    "demand_based_centrality",
    "ISPConfig",
    "iterative_split_prune",
    "PruneAction",
    "find_bubble",
    "find_prunable_routing",
    "SplitChoice",
    "select_demand_to_split",
]
